"""Nsight-Compute-like profiling layer.

Runs a workload's launch stream on the GPU simulator, aggregates the
per-launch metrics into per-kernel profiles (``Ti = sum r_i * t_i``),
and assembles an :class:`~repro.profiler.records.ApplicationProfile` —
the object every analysis in the paper consumes.
"""

from repro.profiler.diffing import KernelDelta, ProfileDiff, diff_profiles
from repro.profiler.profiler import Profiler
from repro.profiler.records import ApplicationProfile, KernelProfile
from repro.profiler.steady_state import select_steady_state
from repro.profiler.trace_export import export_trace, load_trace

__all__ = [
    "KernelDelta",
    "ProfileDiff",
    "diff_profiles",
    "Profiler",
    "ApplicationProfile",
    "KernelProfile",
    "select_steady_state",
    "export_trace",
    "load_trace",
]
