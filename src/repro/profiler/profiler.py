"""The profiler: workload -> launch stream -> application profile.

Mirrors the paper's measurement flow: run the workload, optionally crop
to a steady-state region (the paper profiles a steady-state window for
the repetitive molecular and ML workloads and the full run for graph
workloads), then aggregate per-launch metrics by kernel name.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.gpu.kernel import KernelLaunch
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simulator import GPUSimulator
from repro.profiler.records import ApplicationProfile, aggregate_launches
from repro.profiler.steady_state import select_steady_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import Workload


class Profiler:
    """Profiles workloads on a :class:`GPUSimulator`."""

    def __init__(
        self,
        simulator: Optional[GPUSimulator] = None,
        steady_state: bool = True,
    ) -> None:
        self.simulator = simulator or GPUSimulator()
        self.steady_state = steady_state

    # ------------------------------------------------------------------
    def prepare_stream(self, workload: "Workload") -> List[KernelLaunch]:
        """*workload*'s launch stream after steady-state cropping.

        This is exactly the launch sequence :meth:`profile` aggregates;
        the characterization engine hashes it to build content-addressed
        cache keys, so it must stay the single source of truth for what
        gets measured.
        """
        stream = list(workload.launch_stream())
        if not stream:
            raise ValueError(
                f"workload {workload.name!r} produced an empty launch stream"
            )
        if self.steady_state and workload.repetitive:
            stream = select_steady_state(stream)
        return stream

    # ------------------------------------------------------------------
    def profile(self, workload: "Workload") -> ApplicationProfile:
        """Run *workload* and return its aggregated profile."""
        return self.profile_launches(
            self.prepare_stream(workload),
            workload=workload.name,
            suite=workload.suite,
            domain=workload.domain,
        )

    # ------------------------------------------------------------------
    def profile_launches(
        self,
        launches: Iterable[KernelLaunch],
        workload: str,
        suite: str = "",
        domain: str = "",
    ) -> ApplicationProfile:
        """Aggregate an explicit launch sequence into a profile."""
        launch_list = list(launches)
        metrics = self.simulator.run_stream(launch_list)
        return self.profile_metrics(
            launch_list, metrics, workload, suite=suite, domain=domain
        )

    # ------------------------------------------------------------------
    def profile_metrics(
        self,
        launches: Iterable[KernelLaunch],
        metrics: Iterable[KernelMetrics],
        workload: str,
        suite: str = "",
        domain: str = "",
    ) -> ApplicationProfile:
        """Aggregate precomputed per-launch metrics into a profile.

        The device-sweep path simulates one stream across many devices
        in a single batched pass (:func:`repro.gpu.batched.simulate_devices`)
        and then aggregates each device's metric sequence here — the
        exact aggregation :meth:`profile_launches` performs, so a
        batched profile compares equal to a scalar one.  ``metrics``
        must parallel ``launches`` (one record per launch, repeated
        launches sharing one record, as both simulators guarantee).
        """
        by_name: Dict[str, List[KernelMetrics]] = defaultdict(list)
        for launch, record in zip(launches, metrics):
            by_name[launch.name].append(record)
        kernels = [
            aggregate_launches(name, records)
            for name, records in by_name.items()
        ]
        return ApplicationProfile(
            workload=workload, suite=suite, domain=domain, kernels=kernels
        )
