"""Steady-state region selection.

The paper limits profiling of the long repetitive workloads (molecular
dynamics steps, ML training iterations) to a steady-state region found
with a fast tracing pre-pass.  We reproduce that: find the periodic part
of the launch stream by detecting the recurring kernel-name cycle after
warm-up, and keep a window of whole periods.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.gpu.kernel import KernelLaunch


def _find_period(names: Sequence[str], start: int, max_period: int) -> int:
    """Smallest period p such that names[start:] repeats with period p.

    Returns 0 when no period is found.
    """
    n = len(names) - start
    for period in range(1, min(max_period, n // 2) + 1):
        repeats = n // period
        if repeats < 2:
            break
        ok = True
        # Compare the first cycle with every subsequent whole cycle; a
        # partial check can be fooled by locally-constant prefixes
        # (e.g. a run of identical kernel names inside a longer cycle).
        for rep in range(1, repeats):
            base = start
            off = start + rep * period
            if names[base : base + period] != names[off : off + period]:
                ok = False
                break
        if ok:
            return period
    return 0


def select_steady_state(
    launches: Sequence[KernelLaunch],
    warmup_fraction: float = 0.2,
    max_period: int = 2048,
    min_periods: int = 2,
) -> List[KernelLaunch]:
    """Crop a launch stream to a steady-state window of whole periods.

    Skips the first ``warmup_fraction`` of launches (initialization,
    allocator warm-up, autotuning), detects the repeating kernel cycle,
    and returns every whole period from there to the end.  Falls back to
    the full stream when no periodicity is detected — matching the
    paper's treatment of the (non-repetitive) graph workloads.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    launches = list(launches)
    if len(launches) < 4:
        return launches

    start = int(len(launches) * warmup_fraction)
    names = [launch.name for launch in launches]
    period = _find_period(names, start, max_period)
    if period == 0:
        return launches

    available = (len(launches) - start) // period
    if available < min_periods:
        return launches
    end = start + available * period
    return launches[start:end]
