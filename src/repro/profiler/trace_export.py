"""Kernel-trace export (the paper's stated future work).

The Cactus paper's conclusion announces "Cactus instruction traces that
are compatible with state-of-the-art GPU simulators".  This module
implements that extension for our substrate: a launch stream serializes
to a line-oriented JSON trace that records, per launch, the geometry,
instruction counts, mix, and memory footprint — enough for a trace-driven
simulator to replay the workload without re-running the application
model.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    KernelLaunch,
    MemoryFootprint,
)

TRACE_VERSION = 1


def _launch_to_record(launch: KernelLaunch) -> dict:
    kernel = launch.kernel
    return {
        "name": kernel.name,
        "grid_blocks": kernel.grid_blocks,
        "threads_per_block": kernel.threads_per_block,
        "warp_insts": kernel.warp_insts,
        "ilp": kernel.ilp,
        "mlp": kernel.mlp,
        "tags": list(kernel.tags),
        "mix": {
            "fp32": kernel.mix.fp32,
            "ld_st": kernel.mix.ld_st,
            "branch": kernel.mix.branch,
            "sync": kernel.mix.sync,
        },
        "memory": {
            "bytes_read": kernel.memory.bytes_read,
            "bytes_written": kernel.memory.bytes_written,
            "reuse_factor": kernel.memory.reuse_factor,
            "l1_locality": kernel.memory.l1_locality,
            "coalescence": kernel.memory.coalescence,
            "l2_carry_in": kernel.memory.l2_carry_in,
            "working_set_bytes": kernel.memory.working_set_bytes,
        },
        "stream_id": launch.stream_id,
        "phase": launch.phase,
    }


def _record_to_launch(record: dict) -> KernelLaunch:
    mix = InstructionMix(**record["mix"])
    memory = MemoryFootprint(**record["memory"])
    kernel = KernelCharacteristics(
        name=record["name"],
        grid_blocks=record["grid_blocks"],
        threads_per_block=record["threads_per_block"],
        warp_insts=record["warp_insts"],
        mix=mix,
        memory=memory,
        ilp=record["ilp"],
        mlp=record.get("mlp", 4.0),
        tags=tuple(record["tags"]),
    )
    return KernelLaunch(
        kernel=kernel,
        stream_id=record.get("stream_id", 0),
        phase=record.get("phase", ""),
    )


def export_trace(
    launches: Iterable[KernelLaunch], path: Union[str, Path]
) -> int:
    """Write launches to *path* as a versioned JSONL trace.

    Returns the number of launches written.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"trace_version": TRACE_VERSION}) + "\n")
        for launch in launches:
            handle.write(json.dumps(_launch_to_record(launch)) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[KernelLaunch]:
    """Load a JSONL trace written by :func:`export_trace`."""
    path = Path(path)
    launches: List[KernelLaunch] = []
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        version = header.get("trace_version")
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version!r} in {path}"
            )
        for line in handle:
            line = line.strip()
            if line:
                launches.append(_record_to_launch(json.loads(line)))
    return launches
