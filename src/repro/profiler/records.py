"""Profile records: per-kernel aggregates and per-application profiles.

The paper aggregates invocations of the same kernel: kernel *i* invoked
``r_i`` times at ``t_i`` seconds each accumulates ``T_i = r_i * t_i``
GPU time, and the kernel with the highest ``T_i`` is the *dominant*
kernel (Section IV, "Dominant Kernels").  :class:`KernelProfile` holds
that aggregate; :class:`ApplicationProfile` holds the full per-workload
result with the Table I statistics as properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.metrics import SECONDARY_METRICS, KernelMetrics


@dataclass
class KernelProfile:
    """Time-weighted aggregate of all invocations of one kernel."""

    name: str
    invocations: int
    total_time_s: float
    total_warp_insts: float
    total_dram_transactions: float
    metrics: KernelMetrics
    tags: Tuple[str, ...] = ()

    @property
    def gips(self) -> float:
        return self.total_warp_insts / self.total_time_s / 1e9

    @property
    def instruction_intensity(self) -> float:
        return self.total_warp_insts / max(1.0, self.total_dram_transactions)

    @property
    def avg_time_per_invocation_s(self) -> float:
        return self.total_time_s / self.invocations


def _weighted_mean(pairs: Iterable[Tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0 when total weight is 0."""
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        total += value * weight
        weight_sum += weight
    return total / weight_sum if weight_sum > 0 else 0.0


#: Duration-weighted ratio metrics — exactly the Table IV columns.
_RATIO_METRICS: Tuple[str, ...] = SECONDARY_METRICS


def aggregate_launches(
    name: str, records: Sequence[KernelMetrics]
) -> KernelProfile:
    """Fold per-launch metrics of one kernel into a profile.

    Counters add; ratio metrics are weighted by each launch's duration,
    which matches how a profiler averages per-invocation samples.

    The fold is batched: the simulator memoizes metrics per distinct
    kernel, so a stream's record sequence is mostly repeats of the same
    objects.  Grouping by object identity first and weighting by
    multiplicity turns fourteen Python passes over every launch into
    one matrix reduction over the distinct records.
    """
    if not records:
        raise ValueError(f"no launch records for kernel {name!r}")
    index: Dict[int, int] = {}
    unique: List[KernelMetrics] = []
    multiplicity: List[int] = []
    for record in records:
        slot = index.get(id(record))
        if slot is None:
            index[id(record)] = len(unique)
            unique.append(record)
            multiplicity.append(1)
        else:
            multiplicity[slot] += 1

    rows = np.array(
        [
            (r.duration_s, r.warp_insts, r.dram_transactions)
            + tuple(getattr(r, m) for m in _RATIO_METRICS)
            for r in unique
        ],
        dtype=np.float64,
    )
    counts = np.asarray(multiplicity, dtype=np.float64)
    durations = rows[:, 0]
    weights = durations * counts
    total_time = float(weights.sum())
    total_insts = float((rows[:, 1] * counts).sum())
    total_txn = float((rows[:, 2] * counts).sum())
    if total_time > 0:
        averages = (rows[:, 3:] * weights[:, None]).sum(axis=0) / total_time
    else:
        averages = np.zeros(len(_RATIO_METRICS))
    ratio_values = dict(zip(_RATIO_METRICS, map(float, averages)))

    merged = KernelMetrics(
        name=name,
        duration_s=total_time,
        warp_insts=total_insts,
        dram_transactions=total_txn,
        invocations=len(records),
        tags=records[0].tags,
        **ratio_values,
    )
    return KernelProfile(
        name=name,
        invocations=len(records),
        total_time_s=total_time,
        total_warp_insts=total_insts,
        total_dram_transactions=total_txn,
        metrics=merged,
        tags=records[0].tags,
    )


@dataclass
class ApplicationProfile:
    """Full profiling result for one workload.

    Provides the paper's Table I statistics and the dominant-kernel
    selections used throughout Section V.
    """

    workload: str
    suite: str
    domain: str
    kernels: List[KernelProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.kernels.sort(key=lambda k: k.total_time_s, reverse=True)

    # -- basic totals ---------------------------------------------------
    @property
    def total_time_s(self) -> float:
        return sum(k.total_time_s for k in self.kernels)

    @property
    def total_warp_insts(self) -> float:
        return sum(k.total_warp_insts for k in self.kernels)

    @property
    def total_dram_transactions(self) -> float:
        return sum(k.total_dram_transactions for k in self.kernels)

    @property
    def num_kernels(self) -> int:
        """Number of distinct kernels — Table I's '100% execution time'."""
        return len(self.kernels)

    # -- aggregate roofline coordinates (Fig. 5) ------------------------
    @property
    def gips(self) -> float:
        return self.total_warp_insts / self.total_time_s / 1e9

    @property
    def instruction_intensity(self) -> float:
        return self.total_warp_insts / max(1.0, self.total_dram_transactions)

    # -- Table I statistics ----------------------------------------------
    @property
    def total_invocations(self) -> int:
        return sum(k.invocations for k in self.kernels)

    @property
    def weighted_avg_insts_per_kernel(self) -> float:
        """Time-weighted average warp instructions per kernel.

        Table I's 'weighted average no. warp instructions per kernel':
        each kernel's instruction count weighted by its share of GPU
        time.
        """
        total_time = self.total_time_s
        if total_time <= 0:
            return 0.0
        return sum(
            (k.total_warp_insts / k.invocations) * (k.total_time_s / total_time)
            for k in self.kernels
        )

    # -- dominance -------------------------------------------------------
    def kernels_for_time_fraction(self, fraction: float) -> List[KernelProfile]:
        """Smallest prefix of time-ranked kernels covering *fraction*.

        ``fraction=0.7`` yields the paper's dominant-kernel set.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        target = fraction * self.total_time_s
        covered = 0.0
        selected: List[KernelProfile] = []
        for kernel in self.kernels:
            selected.append(kernel)
            covered += kernel.total_time_s
            if covered >= target - 1e-12:
                break
        return selected

    def num_kernels_for_fraction(self, fraction: float) -> int:
        return len(self.kernels_for_time_fraction(fraction))

    @property
    def dominant_kernels(self) -> List[KernelProfile]:
        """Kernels collectively covering >= 70 % of GPU time."""
        return self.kernels_for_time_fraction(0.70)

    @property
    def dominant_kernel(self) -> KernelProfile:
        """The single highest ``r_i x t_i`` kernel."""
        return self.kernels[0]

    def cumulative_time_fractions(self, max_kernels: Optional[int] = None) -> List[float]:
        """Cumulative GPU-time fractions of time-ranked kernels (Fig. 3)."""
        total = self.total_time_s
        fractions: List[float] = []
        covered = 0.0
        for kernel in self.kernels[: max_kernels or len(self.kernels)]:
            covered += kernel.total_time_s
            fractions.append(covered / total)
        return fractions

    def time_shares(self) -> Dict[str, float]:
        """Per-kernel share of total GPU time, keyed by kernel name."""
        total = self.total_time_s
        return {k.name: k.total_time_s / total for k in self.kernels}
