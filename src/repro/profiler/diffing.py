"""Profile diffing: compare two runs of (nominally) the same workload.

The tool a performance engineer reaches for after any change — a new
device, a model revision, a different input: which kernels appeared or
disappeared, and how did the shared ones move?  Used by the device
sweep and by regression tests between model versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.profiler.records import ApplicationProfile


@dataclass(frozen=True)
class KernelDelta:
    """Per-kernel change between a baseline and a candidate profile."""

    name: str
    baseline_time_s: float
    candidate_time_s: float
    baseline_share: float
    candidate_share: float

    @property
    def speedup(self) -> float:
        """baseline / candidate durations (>1 means the candidate is
        faster)."""
        return self.baseline_time_s / self.candidate_time_s


@dataclass
class ProfileDiff:
    """Structured diff of two application profiles."""

    baseline: str
    candidate: str
    shared: List[KernelDelta]
    only_in_baseline: Tuple[str, ...]
    only_in_candidate: Tuple[str, ...]
    total_speedup: float

    def regressions(self, threshold: float = 0.95) -> List[KernelDelta]:
        """Shared kernels that got slower than *threshold* speedup."""
        return [d for d in self.shared if d.speedup < threshold]

    def render(self, top: int = 10) -> str:
        lines = [
            f"{self.baseline} -> {self.candidate}: "
            f"total speedup {self.total_speedup:.2f}x"
        ]
        ordered = sorted(
            self.shared, key=lambda d: d.baseline_time_s, reverse=True
        )
        for delta in ordered[:top]:
            lines.append(
                f"  {delta.name:<44} {delta.speedup:6.2f}x "
                f"(share {delta.baseline_share:5.1%} -> "
                f"{delta.candidate_share:5.1%})"
            )
        if self.only_in_baseline:
            lines.append(
                f"  only in baseline: {', '.join(self.only_in_baseline)}"
            )
        if self.only_in_candidate:
            lines.append(
                f"  only in candidate: {', '.join(self.only_in_candidate)}"
            )
        return "\n".join(lines)


def diff_profiles(
    baseline: ApplicationProfile, candidate: ApplicationProfile
) -> ProfileDiff:
    """Diff two profiles by kernel name."""
    base_by_name: Dict[str, float] = {
        k.name: k.total_time_s for k in baseline.kernels
    }
    cand_by_name: Dict[str, float] = {
        k.name: k.total_time_s for k in candidate.kernels
    }
    shared_names = sorted(base_by_name.keys() & cand_by_name.keys())
    shared = [
        KernelDelta(
            name=name,
            baseline_time_s=base_by_name[name],
            candidate_time_s=cand_by_name[name],
            baseline_share=base_by_name[name] / baseline.total_time_s,
            candidate_share=cand_by_name[name] / candidate.total_time_s,
        )
        for name in shared_names
    ]
    return ProfileDiff(
        baseline=baseline.workload,
        candidate=candidate.workload,
        shared=shared,
        only_in_baseline=tuple(
            sorted(base_by_name.keys() - cand_by_name.keys())
        ),
        only_in_candidate=tuple(
            sorted(cand_by_name.keys() - base_by_name.keys())
        ),
        total_speedup=baseline.total_time_s / candidate.total_time_s,
    )
