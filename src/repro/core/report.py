"""Markdown characterization-report generator.

Produces a self-contained Markdown report for a suite run — the whole
Section-V treatment as a document: Table I, the dominance histogram,
aggregate roofline table, the correlation matrix, the dendrogram, and
(when a PRT run is supplied) the Observation 1-12 scoreboard.  Used by
the CLI (``python -m repro report``) and handy for regression diffing
between model versions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.analysis.correlation import correlation_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import CacheStats
from repro.analysis.distribution import dominance_histogram
from repro.analysis.roofline import render_roofline_ascii
from repro.core.compare import check_observations, cluster_dominant_kernels
from repro.core.suite import SuiteResult
from repro.gpu.device import RTX_3080


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n{body}\n"


def _code(text: str) -> str:
    return f"```\n{text}\n```"


def _table1(result: SuiteResult, suite: str) -> str:
    lines = [
        "| workload | total warp insts | w-avg insts/kernel "
        "| kernels (100%) | kernels (70%) |",
        "|---|---:|---:|---:|---:|",
    ]
    for characterization in result.suite(suite):
        row = characterization.table1
        lines.append(
            f"| {row.abbr} | {row.total_warp_insts:.3e} "
            f"| {row.weighted_avg_insts_per_kernel:.3e} "
            f"| {row.kernels_100} | {row.kernels_70} |"
        )
    return "\n".join(lines)


def _roofline_table(result: SuiteResult, suite: str) -> str:
    elbow = RTX_3080.roofline_elbow
    lines = [
        f"Roofline elbow: {elbow:.2f} warp insts / 32B transaction; "
        f"peak {RTX_3080.peak_gips:.1f} GIPS.",
        "",
        "| workload | intensity | GIPS | class |",
        "|---|---:|---:|---|",
    ]
    for characterization in result.suite(suite):
        point = characterization.aggregate_point
        lines.append(
            f"| {characterization.abbr} | {point.intensity:.2f} "
            f"| {point.gips:.2f} | {point.intensity_class} |"
        )
    return "\n".join(lines)


def _run_profile_section(run) -> Optional[str]:
    """Render one run's :class:`~repro.obs.metrics.RunProfile`.

    Returns ``None`` when the run carries no profile (plain
    :class:`SuiteResult`, e.g. deserialized from an old report).
    """
    from repro.obs.metrics import PHASE_ORDER

    profile = getattr(run, "run_profile", None)
    if profile is None:
        return None

    lines = ["| phase | total | share | spans |", "|---|---:|---:|---:|"]
    phase_totals = {p: profile.phase_seconds(p) for p in PHASE_ORDER}
    grand_total = sum(phase_totals.values())
    for phase in PHASE_ORDER:
        total = phase_totals[phase]
        stat = profile.histograms.get(f"span.{phase}_s", {})
        share = total / grand_total if grand_total else 0.0
        lines.append(
            f"| {phase} | {total:.3f}s | {share:.1%} "
            f"| {int(stat.get('count', 0))} |"
        )

    by_workload = profile.workload_phases()
    if by_workload:
        lines += [
            "",
            "Per-workload wall clock (all attempts):",
            "",
            "| workload | " + " | ".join(PHASE_ORDER) + " |",
            "|---|" + "---:|" * len(PHASE_ORDER),
        ]
        for abbr in sorted(by_workload):
            phases = by_workload[abbr]
            cells = " | ".join(
                f"{phases.get(p, 0.0):.3f}s" for p in PHASE_ORDER
            )
            lines.append(f"| {abbr} | {cells} |")

    counters = [
        f"workloads completed: {int(profile.counter('engine.workloads_completed'))}",
        f"failed: {int(profile.counter('engine.workloads_failed'))}",
        f"resumed: {int(profile.counter('engine.workloads_resumed'))}",
        f"retries: {profile.retries}",
        f"timeouts: {profile.timeouts}",
        f"pool rebuilds: {profile.pool_rebuilds}",
        f"journal checkpoints: {profile.journal_checkpoints}",
    ]
    if profile.cache_lookups:
        counters.append(
            f"cache hit rate: {profile.cache_hit_rate:.1%} over "
            f"{int(profile.cache_lookups)} lookups"
        )
    queue = profile.histograms.get("queue.wait_s")
    if queue and queue.get("count"):
        mean = queue["total"] / queue["count"]
        counters.append(
            f"pool queue wait: mean {mean * 1e3:.1f}ms, "
            f"max {queue['max'] * 1e3:.1f}ms over {int(queue['count'])} tasks"
        )
    lines += ["", "Engine counters: " + "; ".join(counters) + "."]

    proxy_hits = profile.counter("proxy.hits")
    proxy_misses = profile.counter("proxy.misses")
    if proxy_hits or proxy_misses:
        lookups = proxy_hits + proxy_misses
        hit_dist = profile.histograms.get("proxy.hit_distance", {})
        summary = (
            f"Similarity proxy: {int(proxy_hits)}/{int(lookups)} lookups "
            f"served from near-duplicates "
            f"({proxy_hits / lookups:.1%} proxy hit rate), "
            f"{int(profile.counter('proxy.audits'))} audited"
        )
        if hit_dist.get("count"):
            summary += (
                f"; hit distance max {hit_dist['max']:.4f}, "
                f"mean {hit_dist['total'] / hit_dist['count']:.4f}"
            )
        lines += ["", summary + "."]
        # Per-metric audit error bounds: the observed worst relative
        # error of a proxied metric against its ground-truth simulation.
        errs = sorted(
            (name[len("proxy.err."):], stat)
            for name, stat in profile.histograms.items()
            if name.startswith("proxy.err.") and stat.get("count")
        )
        if errs:
            lines += [
                "",
                "| audited metric | max rel. error | mean | samples |",
                "|---|---:|---:|---:|",
            ]
            for name, stat in errs:
                mean = stat["total"] / stat["count"]
                lines.append(
                    f"| {name} | {stat['max']:.2e} | {mean:.2e} "
                    f"| {int(stat['count'])} |"
                )

    trace_dir = getattr(run, "trace_dir", None)
    if trace_dir:
        lines += [
            "",
            f"Trace artifacts (events.jsonl, trace.json): `{trace_dir}`.",
        ]
    return "\n".join(lines)


def generate_report(
    cactus: SuiteResult,
    prt: Optional[SuiteResult] = None,
    title: str = "Cactus characterization report",
    cache_stats: Optional["CacheStats"] = None,
) -> str:
    """Render a Markdown report for a Cactus run (and optional PRT run).

    Pass the engine's ``cache_stats`` to append a result-cache summary
    section (hit rates tell you whether the run was served warm).
    """
    parts: List[str] = [f"# {title}\n"]
    parts.append(
        f"Device: {cactus.device.name}; scale preset: "
        f"{cactus.preset.name}.\n"
    )

    failures = list(getattr(cactus, "failures", []) or [])
    if prt is not None:
        failures += list(getattr(prt, "failures", []) or [])
    if failures:
        lines = [
            "The following workloads failed and are excluded from every "
            "aggregate below (suite statistics are computed over the "
            "survivors):",
            "",
            "| workload | phase | error | attempts | elapsed |",
            "|---|---|---|---:|---:|",
        ]
        for failure in failures:
            message = failure.message.replace("|", "\\|").replace("\n", " ")
            lines.append(
                f"| {failure.abbr} | {failure.phase} "
                f"| `{failure.error_type}: {message}` "
                f"| {failure.attempts} | {failure.elapsed_s:.1f}s |"
            )
        for run in (cactus, prt):
            reason = getattr(run, "fallback_reason", None) if run else None
            if reason:
                lines += ["", f"Engine degraded to serial execution: {reason}"]
                break
        parts.append(_section("Failed workloads", "\n".join(lines)))

    parts.append(_section("Table I — suite statistics",
                          _table1(cactus, "Cactus")))
    parts.append(
        _section("Aggregate roofline (Fig. 5)",
                 _roofline_table(cactus, "Cactus"))
    )

    points = [
        p
        for characterization in cactus.suite("Cactus")
        for p in characterization.kernel_points
    ]
    parts.append(
        _section(
            "Per-kernel roofline (Figs. 6-7)",
            _code(render_roofline_ascii(points, height=16)),
        )
    )

    matrix = correlation_matrix(cactus.profiles("Cactus"))
    parts.append(
        _section("Correlation analysis (Fig. 8)", _code(matrix.render()))
    )

    if prt is not None:
        histogram = dominance_histogram(
            [
                c.profile
                for s in ("Parboil", "Rodinia", "Tango")
                for c in prt.suite(s)
            ]
        )
        parts.append(
            _section(
                "PRT dominance (Fig. 2)",
                f"Kernels needed for 70% of GPU time → workload count: "
                f"`{histogram}`",
            )
        )
        from repro.analysis.clustering import render_dendrogram

        # Clustering and the observation scoreboard index specific
        # workloads; with a partial run they degrade to an explicit
        # "skipped" note instead of aborting the whole report.
        try:
            *_rest, tree = cluster_dominant_kernels(cactus, prt)
            parts.append(
                _section(
                    "Clustering (Fig. 9)",
                    _code(render_dendrogram(tree, n_clusters=6, max_members=6)),
                )
            )
        except (KeyError, ValueError) as exc:
            parts.append(
                _section(
                    "Clustering (Fig. 9)",
                    f"Skipped: requires the full workload set "
                    f"({type(exc).__name__}: {exc}).",
                )
            )
        try:
            report = check_observations(cactus, prt)
            parts.append(
                _section("Observations 1-12", _code(report.render()))
            )
        except (KeyError, ValueError) as exc:
            parts.append(
                _section(
                    "Observations 1-12",
                    f"Skipped: requires the full workload set "
                    f"({type(exc).__name__}: {exc}).",
                )
            )

    profile_section = _run_profile_section(cactus)
    if profile_section is not None:
        parts.append(_section("Run profile", profile_section))
    if prt is not None:
        prt_section = _run_profile_section(prt)
        if prt_section is not None:
            parts.append(_section("Run profile (PRT)", prt_section))

    if cache_stats is not None:
        parts.append(
            _section("Engine cache", f"Result cache: {cache_stats.render()}.")
        )

    return "\n".join(parts)
