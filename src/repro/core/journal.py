"""Resumable run checkpoints: a per-run journal of completed workloads.

A suite run interrupted after N workloads (crash, SIGTERM, power loss)
should restart and re-run only the remaining ones — *even with the
result cache disabled*.  The journal makes that possible by recording
each completed characterization as it lands:

``<journal_dir>/run.json``
    Run metadata: journal schema version, the run key (a content
    digest of device + simulation options + preset + workload
    selection), and the selected workload list.  A journal whose run
    key does not match the current run is stale and is wiped before
    the run starts — resuming is only ever offered for *identical*
    runs.
``<journal_dir>/done/<ABBR>.json``
    One completion marker per finished workload, holding the full
    serialized :class:`~repro.core.characterize.Characterization`
    (lossless — see :mod:`repro.core.serialize`) plus the run key and
    attempt count.

All writes are atomic (temp file + ``os.replace``, like
:mod:`repro.core.cache`), so a marker is either complete or absent;
a corrupt or foreign marker is treated as "not done" and the workload
simply re-runs.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro.core.characterize import Characterization
from repro.core.serialize import (
    characterization_from_dict,
    characterization_to_dict,
)

JOURNAL_SCHEMA_VERSION = 1


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Publish *payload* at *path* atomically (temp file + replace)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class RunJournal:
    """Checkpoint store for one suite run identity.

    The optional *tracer* (see :mod:`repro.obs`) emits a
    ``journal.checkpoint`` event per completion marker plus
    begin/finish lifecycle events, and counts checkpoints into the run
    metrics — observation only, the on-disk format is untouched.
    """

    def __init__(self, journal_dir, run_key: str, tracer=None) -> None:
        self.journal_dir = Path(journal_dir)
        self.run_key = run_key
        if tracer is None:
            from repro.obs import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer

    # -- paths ---------------------------------------------------------
    @property
    def run_path(self) -> Path:
        return self.journal_dir / "run.json"

    @property
    def done_dir(self) -> Path:
        return self.journal_dir / "done"

    def marker_path(self, abbr: str) -> Path:
        return self.done_dir / f"{abbr.upper()}.json"

    # -- lifecycle -----------------------------------------------------
    def _read_meta(self) -> Optional[Dict[str, Any]]:
        try:
            with open(self.run_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def begin(self, selected: Iterable[str]) -> Dict[str, Characterization]:
        """Start (or resume) a run; return already-completed results.

        If an existing journal matches this run key, the completed
        characterizations are loaded and returned so the engine can
        skip them.  Otherwise any stale journal is wiped and a fresh
        ``run.json`` is written.
        """
        selected = [abbr.upper() for abbr in selected]
        meta = self._read_meta()
        if (
            meta is not None
            and meta.get("schema") == JOURNAL_SCHEMA_VERSION
            and meta.get("run_key") == self.run_key
        ):
            completed = self._load_completed(selected)
            self.tracer.event(
                "journal.resume",
                category="journal",
                run_key=self.run_key[:16],
                resumed=len(completed),
            )
            self.tracer.incr(
                "engine.workloads_resumed", float(len(completed))
            )
            return completed
        # Stale or absent journal: start fresh.
        if self.done_dir.is_dir():
            shutil.rmtree(self.done_dir, ignore_errors=True)
        _atomic_write_json(
            self.run_path,
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "run_key": self.run_key,
                "selected": selected,
                "status": "running",
            },
        )
        self.tracer.event(
            "journal.begin",
            category="journal",
            run_key=self.run_key[:16],
            selected=len(selected),
        )
        return {}

    def _load_completed(
        self, selected: Iterable[str]
    ) -> Dict[str, Characterization]:
        completed: Dict[str, Characterization] = {}
        for abbr in selected:
            path = self.marker_path(abbr)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    marker = json.load(handle)
                if marker.get("run_key") != self.run_key:
                    continue  # marker from a different run identity
                completed[abbr] = characterization_from_dict(
                    marker["characterization"]
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue  # absent or corrupt marker → just re-run it
        return completed

    def mark_done(
        self, abbr: str, result: Characterization, attempts: int = 1
    ) -> None:
        """Atomically record *abbr* as completed with its full result."""
        _atomic_write_json(
            self.marker_path(abbr),
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "run_key": self.run_key,
                "abbr": abbr.upper(),
                "attempts": attempts,
                "characterization": characterization_to_dict(result),
            },
        )
        self.tracer.event(
            "journal.checkpoint",
            category="journal",
            workload=abbr.upper(),
            attempts=attempts,
        )
        self.tracer.incr("engine.journal_checkpoints")

    def completed_workloads(self) -> list:
        """Abbreviations with a completion marker on disk (sorted)."""
        if not self.done_dir.is_dir():
            return []
        return sorted(p.stem for p in self.done_dir.glob("*.json"))

    @classmethod
    def peek(cls, journal_dir) -> Dict[str, Any]:
        """Read-only snapshot of a journal directory's progress.

        Returns ``{"run_key", "status", "selected", "done"}`` without
        constructing an engine or loading any characterization payloads
        — the service layer uses this to report a running job's
        checkpoint progress cheaply.  An absent or unreadable journal
        yields an empty snapshot (``run_key=None, done=[]``).
        """
        root = Path(journal_dir)
        meta: Dict[str, Any] = {}
        try:
            with open(root / "run.json", "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                meta = loaded
        except (OSError, ValueError):
            meta = {}
        done_dir = root / "done"
        done = (
            sorted(p.stem for p in done_dir.glob("*.json"))
            if done_dir.is_dir()
            else []
        )
        return {
            "run_key": meta.get("run_key"),
            "status": meta.get("status"),
            "selected": list(meta.get("selected", [])),
            "done": done,
        }

    def finish(self, ok: bool = True) -> None:
        """Mark the run's terminal status in ``run.json``."""
        meta = self._read_meta() or {
            "schema": JOURNAL_SCHEMA_VERSION,
            "run_key": self.run_key,
        }
        meta["status"] = "complete" if ok else "failed"
        _atomic_write_json(self.run_path, meta)
        self.tracer.event(
            "journal.finish", category="journal", status=meta["status"]
        )


class SweepJournal(RunJournal):
    """Checkpoint store for one device-sweep run identity.

    Same on-disk layout and lifecycle as :class:`RunJournal`, but each
    completion marker holds the workload's *whole device axis* —
    ``{"devices": {device_name: characterization_dict}}`` — because the
    sweep's unit of work is one workload across all devices, and a
    resumed sweep must skip exactly the workloads whose full device set
    already landed.  The run key (built by
    :meth:`~repro.core.engine.CharacterizationEngine.sweep_run_key`)
    digests the device list, so adding a device starts a fresh journal
    rather than resuming against incomplete markers.
    """

    def _load_completed(
        self, selected: Iterable[str]
    ) -> Dict[str, Dict[str, Characterization]]:
        completed: Dict[str, Dict[str, Characterization]] = {}
        for abbr in selected:
            path = self.marker_path(abbr)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    marker = json.load(handle)
                if marker.get("run_key") != self.run_key:
                    continue  # marker from a different run identity
                completed[abbr] = {
                    name: characterization_from_dict(payload)
                    for name, payload in marker["devices"].items()
                }
            except (OSError, ValueError, KeyError, TypeError, AttributeError):
                continue  # absent or corrupt marker → just re-run it
        return completed

    def mark_done(
        self,
        abbr: str,
        result: Dict[str, Characterization],
        attempts: int = 1,
    ) -> None:
        """Atomically record *abbr* with its full per-device result map."""
        _atomic_write_json(
            self.marker_path(abbr),
            {
                "schema": JOURNAL_SCHEMA_VERSION,
                "run_key": self.run_key,
                "abbr": abbr.upper(),
                "attempts": attempts,
                "devices": {
                    name: characterization_to_dict(entry)
                    for name, entry in result.items()
                },
            },
        )
        self.tracer.event(
            "journal.checkpoint",
            category="journal",
            workload=abbr.upper(),
            attempts=attempts,
        )
        self.tracer.incr("engine.journal_checkpoints")
