"""Similarity-proxy tier for the simulate path.

The result cache only reuses metrics for a *bit-identical* kernel key.
Real suites are full of near-duplicates — a BFS level whose frontier
grew by a few vertices, an MD step with a handful more pairs — that
miss the exact-key cache and pay a full timing-model evaluation each.
:class:`ProxyTier` sits in front of the timing model: every computed
(or exact-cache-hit) kernel is recorded into a
:class:`~repro.analysis.similarity.KernelIndex` over its structural
feature vector, and a new kernel whose nearest recorded neighbor lies
within an explicit standardized-space **tolerance** reuses the stored
metrics instead of simulating.

Contract
--------

* **Default off, bit-exact when off.**  No tier is constructed unless a
  tolerance is supplied (``--proxy-tol`` / ``REPRO_PROXY_TOL``); the
  pinned golden digests guard this.
* **Exact at tolerance 0.**  A hit requires the *raw* feature vectors
  to be exactly equal (``Neighbor.exact``), not merely distance 0 in
  the standardized space (a zero-variance column standardizes away raw
  differences).  The structural vector covers every timing-model input,
  so an exact hit substitutes bit-identical numbers — only ``name`` and
  ``tags`` are taken from the querying kernel.
* **Work-rescaled within tolerance.**  A near (non-exact) hit adapts
  the donor's metrics to the query's magnitude: ``duration_s`` scales
  with the warp-instruction ratio, ``dram_transactions`` with the
  access-byte ratio; rates, utilizations, and stall ratios — intensive
  quantities — carry over unchanged; the instruction-mix fractions come
  from the query's own mix (that is how the timing model defines them).
* **Audited.**  A deterministic sample of would-be hits (selected by
  kernel digest, so runs are reproducible) is simulated anyway and the
  per-metric relative error between proxy and truth is recorded as
  ``proxy.err.<metric>`` histograms — the report's error-bound table.
* **Never poisons the cache.**  Proxied metrics are memoized for the
  run but never written to the exact-key result cache.

Proxy corpora are in-memory and scoped to a tier's lifetime (one
engine run, or one worker process under the pool) — reuse across runs
still flows through the persistent exact-key cache, which seeds each
tier as its entries are replayed through ``record``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.analysis.similarity import KernelIndex, kernel_features
from repro.gpu.device import DeviceSpec
from repro.gpu.digest import kernel_digest
from repro.gpu.kernel import KernelCharacteristics
from repro.gpu.metrics import KernelMetrics

__all__ = ["ProxyConfig", "ProxyStats", "ProxyTier", "ProxyBank"]

#: Metrics compared between a proxied record and ground truth when a
#: hit is audited (all numeric KernelMetrics fields plus the roofline
#: coordinates).
AUDITED_METRICS: Tuple[str, ...] = (
    "duration_s",
    "warp_insts",
    "dram_transactions",
    "warp_occupancy",
    "sm_efficiency",
    "l1_hit_rate",
    "l2_hit_rate",
    "dram_read_throughput_gbs",
    "ld_st_utilization",
    "sp_utilization",
    "fraction_branches",
    "fraction_ld_st",
    "execution_stall",
    "pipe_stall",
    "sync_stall",
    "memory_stall",
    "gips",
    "instruction_intensity",
)


@dataclass(frozen=True)
class ProxyConfig:
    """Configuration of the similarity-proxy tier.

    ``tolerance`` is a distance in the standardized structural feature
    space (unitless; each feature is measured in corpus standard
    deviations).  0 demands exact structural equality; values around
    0.01-0.1 accept near-duplicates.
    """

    tolerance: float
    #: Fraction of would-be proxy hits that are simulated anyway to
    #: measure the substitution error (deterministic, digest-sampled).
    audit_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not self.tolerance >= 0.0:
            raise ValueError(
                f"tolerance must be >= 0, got {self.tolerance!r}"
            )
        if not 0.0 <= self.audit_fraction <= 1.0:
            raise ValueError(
                f"audit_fraction must be in [0, 1], got {self.audit_fraction!r}"
            )


@dataclass
class ProxyStats:
    """Hit/miss accounting for one tier (mergeable across workers)."""

    hits: int = 0
    misses: int = 0
    audits: int = 0
    #: Worst observed relative error per audited metric.
    error_max: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "ProxyStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.audits += other.audits
        for name, value in other.error_max.items():
            if value > self.error_max.get(name, 0.0):
                self.error_max[name] = value

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "audits": self.audits,
            "error_max": dict(self.error_max),
        }


def _relative_error(approx: float, truth: float) -> float:
    if truth == approx:
        return 0.0
    scale = max(abs(truth), abs(approx), 1e-30)
    return abs(approx - truth) / scale


class ProxyTier:
    """Similarity-proxy corpus for one ``(device, options)`` context."""

    def __init__(self, config: ProxyConfig, tracer: Any = None) -> None:
        self.config = config
        if tracer is None:
            from repro.obs import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        self.index = KernelIndex()
        self.stats = ProxyStats()
        # Kernels whose would-be hit was sampled for audit: digest ->
        # the metrics the proxy *would* have returned.  Resolved (and
        # scored) when record() later sees the ground truth.
        self._pending_audits: Dict[str, KernelMetrics] = {}
        self._recorded: set = set()

    def __len__(self) -> int:
        return len(self.index)

    # -- query ---------------------------------------------------------
    def lookup(self, kernel: KernelCharacteristics) -> Optional[KernelMetrics]:
        """Proxy metrics for *kernel*, or ``None`` (simulate it)."""
        if len(self.index) == 0:
            self.stats.misses += 1
            self.tracer.incr("proxy.misses")
            return None
        neighbor = self.index.nearest(kernel_features(kernel))
        if neighbor is None or neighbor.distance > self.config.tolerance:
            self.stats.misses += 1
            self.tracer.incr("proxy.misses")
            return None
        if not neighbor.exact and self.config.tolerance == 0.0:
            # Distance 0 through a degenerate (zero-variance) column is
            # not raw equality; tolerance 0 promises bit-exactness.
            self.stats.misses += 1
            self.tracer.incr("proxy.misses")
            return None
        donor_kernel, donor_metrics = neighbor.payload
        adapted = self._adapt(kernel, donor_kernel, donor_metrics, neighbor.exact)
        if self._sample_audit(kernel):
            digest = kernel_digest(kernel)
            self._pending_audits[digest] = adapted
            self.stats.audits += 1
            self.stats.misses += 1
            self.tracer.incr("proxy.audits")
            self.tracer.incr("proxy.misses")
            return None
        self.stats.hits += 1
        self.tracer.incr("proxy.hits")
        self.tracer.observe("proxy.hit_distance", neighbor.distance)
        return adapted

    def _sample_audit(self, kernel: KernelCharacteristics) -> bool:
        fraction = self.config.audit_fraction
        if fraction <= 0.0:
            return False
        if fraction >= 1.0:
            return True
        # Deterministic per-kernel coin flip from the content digest.
        draw = int(kernel_digest(kernel)[:8], 16) / float(0xFFFFFFFF + 1)
        return draw < fraction

    def _adapt(
        self,
        kernel: KernelCharacteristics,
        donor_kernel: KernelCharacteristics,
        donor: KernelMetrics,
        exact: bool,
    ) -> KernelMetrics:
        if exact:
            # Identical timing-model inputs: the donor's numbers *are*
            # this kernel's numbers.  Only identity fields differ.
            return replace(
                donor, name=kernel.name, tags=kernel.tags, invocations=1
            )
        work_ratio = kernel.warp_insts / donor.warp_insts
        donor_bytes = donor_kernel.memory.total_access_bytes
        byte_ratio = (
            kernel.memory.total_access_bytes / donor_bytes
            if donor_bytes > 0
            else 1.0
        )
        return replace(
            donor,
            name=kernel.name,
            tags=kernel.tags,
            invocations=1,
            duration_s=donor.duration_s * work_ratio,
            warp_insts=float(kernel.warp_insts),
            dram_transactions=donor.dram_transactions * byte_ratio,
            fraction_branches=kernel.mix.branch,
            fraction_ld_st=kernel.mix.ld_st,
        )

    # -- corpus growth -------------------------------------------------
    def record(
        self, kernel: KernelCharacteristics, metrics: KernelMetrics
    ) -> None:
        """Feed ground-truth *metrics* (computed or exact-cache-hit)."""
        digest = kernel_digest(kernel)
        pending = self._pending_audits.pop(digest, None)
        if pending is not None:
            self._score_audit(pending, metrics)
        if digest in self._recorded:
            return
        self._recorded.add(digest)
        self.index.add(digest, kernel_features(kernel), (kernel, metrics))

    def _score_audit(self, approx: KernelMetrics, truth: KernelMetrics) -> None:
        for name in AUDITED_METRICS:
            error = _relative_error(approx.metric(name), truth.metric(name))
            self.tracer.observe(f"proxy.err.{name}", error)
            if error > self.stats.error_max.get(name, 0.0):
                self.stats.error_max[name] = error


@dataclass
class ProxyBank:
    """Per-device :class:`ProxyTier` factory for sweep/multi-device runs.

    Tiers are keyed by device name: metrics are only comparable within
    one device model, so each device gets its own corpus.  Simulation
    options are fixed per bank (one engine run has one options object).
    """

    config: ProxyConfig
    tracer: Any = None
    _tiers: Dict[str, ProxyTier] = field(default_factory=dict)

    def tier(self, device: DeviceSpec) -> ProxyTier:
        tier = self._tiers.get(device.name)
        if tier is None:
            tier = ProxyTier(self.config, tracer=self.tracer)
            self._tiers[device.name] = tier
        return tier

    def stats(self) -> ProxyStats:
        total = ProxyStats()
        for tier in self._tiers.values():
            total.merge(tier.stats)
        return total


def _audited_metric_names() -> Tuple[str, ...]:
    """Sanity helper: AUDITED_METRICS must cover all numeric fields."""
    names = [
        item.name
        for item in fields(KernelMetrics)
        if item.name not in ("name", "tags", "invocations")
    ]
    return tuple(names) + ("gips", "instruction_intensity")
