"""Stream-level cache: launch streams keyed on workload identity alone.

The result cache (:mod:`repro.core.cache`) memoizes *characterizations*
under ``(device, options, workload, stream-digest)`` keys — one entry
per (workload, device) pair.  Stream **generation**, however, is
completely device-independent and dominates a cold run's wall clock, so
a device sweep that misses the result cache for a new device would
regenerate every stream even though nothing about the stream changed.

:class:`StreamCache` fills that gap: it persists the steady-state
launch stream itself, keyed on the workload identity (name/abbr/suite/
domain), its scale/seed, and the steady-state flag — **no device, no
simulation options** — so any sweep or suite run over the same workload
preset reuses the stream no matter which devices it targets.  Keys are
deliberately disjoint from :func:`repro.core.cache.characterization_key`
material (different tag, own schema version), so result-cache keys stay
backward-compatible.

Staleness contract: the key does not hash the stream *content* (that
would require generating it, defeating the point).  A change to a
workload model that alters its stream MUST bump
:data:`STREAM_CACHE_SCHEMA_VERSION` (or the global
:data:`~repro.gpu.digest.CACHE_SCHEMA_VERSION`, which is folded in
too).  The golden digest suite (``tests/golden``) regenerates streams
from source and pins their digests, so a forgotten bump cannot slip
through CI unnoticed.

Serialization is lossless: floats survive the JSON round trip
bit-for-bit (repr-based encoding), kernels are stored once in a
first-appearance table, and launches as ``(kernel_index, stream_id,
phase)`` triples — so a deserialized stream has the same content digest
and at least the same kernel-object sharing as the generated one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.cache import ResultCache
from repro.gpu.digest import CACHE_SCHEMA_VERSION, stable_digest
from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    KernelLaunch,
    MemoryFootprint,
)

#: Bump when the stream payload schema — or any workload model whose
#: streams may be cached — changes incompatibly.
STREAM_CACHE_SCHEMA_VERSION = 1

__all__ = [
    "STREAM_CACHE_SCHEMA_VERSION",
    "StreamCache",
    "launches_from_payload",
    "launches_to_payload",
    "stream_key",
]


def stream_key(
    workload_identity: Dict[str, Any],
    scale: float,
    seed: int,
    steady_state: bool = True,
) -> str:
    """Cache key for one workload's (cropped) launch stream.

    Device-free by design: the same entry serves every device of a
    sweep.  ``steady_state`` is part of the key because the profiler's
    cropping changes which launches are measured.
    """
    return stable_digest(
        [
            "launch-stream",
            CACHE_SCHEMA_VERSION,
            STREAM_CACHE_SCHEMA_VERSION,
            workload_identity,
            scale,
            seed,
            steady_state,
        ]
    )


def _kernel_to_dict(kernel: KernelCharacteristics) -> Dict[str, Any]:
    mix = kernel.mix
    memory = kernel.memory
    return {
        "name": kernel.name,
        "grid_blocks": kernel.grid_blocks,
        "threads_per_block": kernel.threads_per_block,
        "warp_insts": kernel.warp_insts,
        "mix": {
            "fp32": mix.fp32,
            "ld_st": mix.ld_st,
            "branch": mix.branch,
            "sync": mix.sync,
        },
        "memory": {
            "bytes_read": memory.bytes_read,
            "bytes_written": memory.bytes_written,
            "reuse_factor": memory.reuse_factor,
            "l1_locality": memory.l1_locality,
            "coalescence": memory.coalescence,
            "l2_carry_in": memory.l2_carry_in,
            "working_set_bytes": memory.working_set_bytes,
        },
        "ilp": kernel.ilp,
        "mlp": kernel.mlp,
        "tags": list(kernel.tags),
    }


def _kernel_from_dict(payload: Dict[str, Any]) -> KernelCharacteristics:
    return KernelCharacteristics(
        name=payload["name"],
        grid_blocks=payload["grid_blocks"],
        threads_per_block=payload["threads_per_block"],
        warp_insts=payload["warp_insts"],
        mix=InstructionMix(**payload["mix"]),
        memory=MemoryFootprint(**payload["memory"]),
        ilp=payload["ilp"],
        mlp=payload["mlp"],
        tags=tuple(payload["tags"]),
    )


def launches_to_payload(launches: Iterable[KernelLaunch]) -> Dict[str, Any]:
    """Serialize a launch stream: kernel table + per-launch triples.

    Kernels are deduplicated by *equality* (like the simulator's memo),
    so the payload stores each distinct kernel once regardless of how
    many launch objects share (or merely equal) it.
    """
    index_of: Dict[KernelCharacteristics, int] = {}
    kernels: List[Dict[str, Any]] = []
    triples: List[List[Any]] = []
    for launch in launches:
        kernel = launch.kernel
        idx = index_of.get(kernel)
        if idx is None:
            idx = len(kernels)
            index_of[kernel] = idx
            kernels.append(_kernel_to_dict(kernel))
        triples.append([idx, launch.stream_id, launch.phase])
    return {
        "schema": STREAM_CACHE_SCHEMA_VERSION,
        "kernels": kernels,
        "launches": triples,
    }


def launches_from_payload(payload: Dict[str, Any]) -> List[KernelLaunch]:
    """Rebuild the stream written by :func:`launches_to_payload`.

    Raises ``KeyError``/``TypeError``/``ValueError`` on any schema
    mismatch (including dataclass validation), which callers treat as a
    cache miss.
    """
    if payload.get("schema") != STREAM_CACHE_SCHEMA_VERSION:
        raise ValueError(
            f"stream payload schema {payload.get('schema')!r} != "
            f"{STREAM_CACHE_SCHEMA_VERSION}"
        )
    kernels = [_kernel_from_dict(item) for item in payload["kernels"]]
    launches: List[KernelLaunch] = []
    for idx, stream_id, phase in payload["launches"]:
        launches.append(
            KernelLaunch(
                kernel=kernels[idx], stream_id=stream_id, phase=phase
            )
        )
    return launches


@dataclass
class StreamCache:
    """Persistent launch-stream store (a thin :class:`ResultCache` skin).

    Lives under its own directory (conventionally
    ``<cache_dir>/streams``) so stream entries and characterization
    entries never share a namespace, and reuses the result cache's
    two-tier LRU + atomic-write + quarantine machinery wholesale.
    """

    cache_dir: Optional[Union[str, Any]] = None
    backend: ResultCache = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.backend = ResultCache(cache_dir=self.cache_dir)

    @property
    def stats(self) -> Any:
        return self.backend.stats

    @property
    def tracer(self) -> Optional[Any]:
        return self.backend.tracer

    @tracer.setter
    def tracer(self, value: Optional[Any]) -> None:
        self.backend.tracer = value

    def get(self, key: str) -> Optional[List[KernelLaunch]]:
        """The cached stream under *key*, or ``None`` on a miss.

        A payload that fails validation is reported as a miss (the
        caller regenerates and overwrites it).
        """
        payload = self.backend.get(key)
        if payload is None:
            return None
        try:
            return launches_from_payload(payload)
        except (KeyError, TypeError, ValueError, IndexError):
            return None

    def put(self, key: str, launches: Sequence[KernelLaunch]) -> None:
        """Store *launches* under *key* (atomic, crash-safe)."""
        self.backend.put(key, launches_to_payload(launches))
