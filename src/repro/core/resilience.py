"""Failure semantics for suite runs: retry policy and failure records.

The paper's exhibits are suite-wide aggregates, so a single misbehaving
workload must not discard every finished characterization.  This module
defines the vocabulary the engine uses to make failure a first-class,
inspectable input:

* :class:`WorkloadFailure` — a structured record of one workload's
  terminal failure (exception type/message/full traceback, phase,
  attempt count, elapsed wall-clock), safe to carry across process
  boundaries and into reports.
* :class:`RetryPolicy` — max attempts, per-workload wall-clock timeout,
  and exponential backoff with *deterministic seeded jitter* (two runs
  with the same seed sleep the same schedule), plus the
  transient-vs-permanent error classification that decides what is
  worth retrying at all.
* :class:`SuiteRunError` — raised in strict mode when any workload
  fails terminally; carries the partial report so completed work is
  never silently discarded.

Classification table (see DESIGN.md §9):

==========================  ===========  ==============================
exception                   class        rationale
==========================  ===========  ==============================
``OSError`` (+subclasses)   transient    I/O, pipes, fork pressure
``EOFError``                transient    torn IPC stream from a worker
``TimeoutError``            transient    per-workload timeout expiry
``BrokenExecutor`` family   transient    pool death is not the
                                         workload's fault
``MemoryError``             transient    other workloads may have
                                         released memory by retry time
anything else               permanent    deterministic model errors
                                         (``ValueError`` etc.) will
                                         fail identically on retry
==========================  ===========  ==============================
"""

from __future__ import annotations

import hashlib
import math
import os
import traceback as traceback_module
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Exception types worth retrying: environmental, not model-determined.
#: ``TimeoutError`` is an ``OSError`` subclass; ``FuturesTimeout`` only
#: aliases it from Python 3.11 on, so both are listed explicitly.
TRANSIENT_EXCEPTIONS: Tuple[type, ...] = (
    OSError,
    EOFError,
    TimeoutError,
    FuturesTimeout,
    BrokenExecutor,
    MemoryError,
)

TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_exception(exc: BaseException) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"`` (won't heal)."""
    return TRANSIENT if isinstance(exc, TRANSIENT_EXCEPTIONS) else PERMANENT


@dataclass
class WorkloadFailure:
    """Terminal failure of one workload inside a suite run.

    Captured *as data* (not as a live exception) so it can cross
    process boundaries, be listed in reports, and be serialized into
    run journals without losing the traceback.
    """

    abbr: str
    phase: str  # "characterize" | "timeout" | "pool"
    error_type: str
    message: str
    traceback: str
    classification: str
    attempts: int
    elapsed_s: float

    @classmethod
    def from_exception(
        cls,
        abbr: str,
        exc: BaseException,
        phase: str = "characterize",
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> "WorkloadFailure":
        tb = "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
        return cls(
            abbr=abbr,
            phase=phase,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback=tb,
            classification=classify_exception(exc),
            attempts=attempts,
            elapsed_s=elapsed_s,
        )

    def render(self) -> str:
        return (
            f"{self.abbr}: {self.error_type}: {self.message} "
            f"[{self.classification}, phase={self.phase}, "
            f"attempts={self.attempts}, {self.elapsed_s:.1f}s]"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "abbr": self.abbr,
            "phase": self.phase,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "classification": self.classification,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkloadFailure":
        """Exact inverse of :meth:`as_dict` (JSON round-trip safe)."""
        return cls(
            abbr=payload["abbr"],
            phase=payload["phase"],
            error_type=payload["error_type"],
            message=payload["message"],
            traceback=payload["traceback"],
            classification=payload["classification"],
            attempts=int(payload["attempts"]),
            elapsed_s=float(payload["elapsed_s"]),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """When and how to retry a failed workload characterization.

    Parameters
    ----------
    max_attempts:
        Total tries per workload (1 = no retries).  Only *transient*
        failures are retried; a permanent failure stops at attempt 1.
    timeout_s:
        Per-workload wall-clock budget, enforced through the futures
        API on the parallel path (a worker that exceeds it is killed
        and the pool rebuilt).  ``None`` disables timeouts.  The serial
        path cannot preempt a running characterization, so timeouts
        only apply when ``jobs > 1``.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential backoff: retry *n* sleeps
        ``min(max, base * factor**(n-1))`` scaled by jitter.
    jitter:
        Fractional jitter width in ``[0, 1]``.  The jitter is
        *deterministic*: derived from ``sha256(seed, key, attempt)``,
        so identically-seeded runs sleep identical schedules.
    seed:
        Jitter seed.
    """

    max_attempts: int = 3
    timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) or self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be a positive integer, got "
                f"{self.max_attempts!r}"
            )
        if self.timeout_s is not None and (
            not math.isfinite(self.timeout_s) or self.timeout_s <= 0
        ):
            raise ValueError(
                f"timeout_s must be positive and finite, got {self.timeout_s!r}"
            )
        if not math.isfinite(self.backoff_base_s) or self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative and finite")
        if not math.isfinite(self.backoff_factor) or self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    # -- classification -------------------------------------------------
    @staticmethod
    def classify(exc: BaseException) -> str:
        return classify_exception(exc)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Retry after failed attempt number *attempt* (1-based)?"""
        return (
            attempt < self.max_attempts
            and classify_exception(exc) == TRANSIENT
        )

    # -- backoff --------------------------------------------------------
    def backoff_s(self, key: str, attempt: int) -> float:
        """Sleep before re-running *key* after failed attempt *attempt*.

        Deterministic: the jitter multiplier is derived from
        ``sha256(seed, key, attempt)``, never from global RNG state.
        """
        if attempt < 1:
            return 0.0
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter == 0.0 or delay == 0.0:
            return delay
        digest = hashlib.sha256(
            f"backoff:{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        # Scale into [1 - jitter, 1 + jitter], clamped to the cap.
        return min(self.backoff_max_s, delay * (1.0 - self.jitter + 2.0 * self.jitter * unit))

    # -- environment wiring ---------------------------------------------
    @classmethod
    def from_env(
        cls, env: Optional[Dict[str, str]] = None, **overrides: Any
    ) -> "RetryPolicy":
        """Policy from ``REPRO_RETRIES`` / ``REPRO_TIMEOUT``.

        ``REPRO_RETRIES=N`` means *N retries* (``max_attempts = N + 1``)
        to match the CLI's ``--retries``; explicit *overrides* win over
        the environment.
        """
        source = os.environ if env is None else env
        kwargs: Dict[str, Any] = {}
        retries = source.get("REPRO_RETRIES")
        if retries not in (None, ""):
            try:
                parsed = int(retries)
                if parsed < 0:
                    raise ValueError(parsed)
            except ValueError:
                raise ValueError(
                    f"REPRO_RETRIES must be a non-negative integer, got "
                    f"{retries!r}"
                ) from None
            kwargs["max_attempts"] = parsed + 1
        timeout = source.get("REPRO_TIMEOUT")
        if timeout not in (None, ""):
            try:
                seconds = float(timeout)
                if not math.isfinite(seconds) or seconds <= 0:
                    raise ValueError(seconds)
            except ValueError:
                raise ValueError(
                    f"REPRO_TIMEOUT must be a positive, finite number of "
                    f"seconds, got {timeout!r}"
                ) from None
            kwargs["timeout_s"] = seconds
        kwargs.update(overrides)
        return cls(**kwargs)


class SuiteRunError(RuntimeError):
    """Raised in strict mode when any workload fails terminally.

    Carries the partial :class:`~repro.core.suite.SuiteRunReport` so
    the completed characterizations (already journaled) are available
    to the caller even though the run as a whole failed.
    """

    def __init__(self, report: Any, failures: List[WorkloadFailure]):
        self.report = report
        self.failures = failures
        lines = "; ".join(f.render().splitlines()[0] for f in failures)
        super().__init__(
            f"{len(failures)} workload(s) failed: {lines}"
        )
