"""End-to-end orchestration: the top-down characterization pipeline."""

from repro.core.cache import CacheStats, ResultCache
from repro.core.characterize import (
    Characterization,
    build_characterization,
    characterize,
    characterize_devices,
)
from repro.core.compare import (
    ObservationReport,
    check_observations,
    diff_characterizations,
    diff_suite_results,
)
from repro.core.config import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    PAPER_SCALE,
    ScalePreset,
)
from repro.core.engine import CharacterizationEngine
from repro.core.journal import RunJournal, SweepJournal
from repro.core.proxy import (
    ProxyBank,
    ProxyConfig,
    ProxyStats,
    ProxyTier,
)
from repro.core.resilience import (
    RetryPolicy,
    SuiteRunError,
    WorkloadFailure,
    classify_exception,
)
from repro.core.serialize import (
    suite_run_report_from_dict,
    suite_run_report_to_dict,
    sweep_run_report_from_dict,
    sweep_run_report_to_dict,
)
from repro.core.streamcache import StreamCache
from repro.core.suite import SuiteResult, SuiteRunReport, run_suite
from repro.core.sweep import SweepRunReport, run_sweep

__all__ = [
    "CacheStats",
    "Characterization",
    "CharacterizationEngine",
    "ProxyBank",
    "ProxyConfig",
    "ProxyStats",
    "ProxyTier",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "StreamCache",
    "SuiteRunError",
    "SweepJournal",
    "SweepRunReport",
    "WorkloadFailure",
    "build_characterization",
    "characterize",
    "characterize_devices",
    "classify_exception",
    "ObservationReport",
    "check_observations",
    "diff_characterizations",
    "diff_suite_results",
    "LAPTOP_SCALE",
    "OBSERVATION_SCALE",
    "PAPER_SCALE",
    "ScalePreset",
    "SuiteResult",
    "SuiteRunReport",
    "run_suite",
    "run_sweep",
    "suite_run_report_from_dict",
    "suite_run_report_to_dict",
    "sweep_run_report_from_dict",
    "sweep_run_report_to_dict",
]
