"""End-to-end orchestration: the top-down characterization pipeline."""

from repro.core.characterize import Characterization, characterize
from repro.core.compare import ObservationReport, check_observations
from repro.core.config import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    PAPER_SCALE,
    ScalePreset,
)
from repro.core.suite import SuiteResult, run_suite

__all__ = [
    "Characterization",
    "characterize",
    "ObservationReport",
    "check_observations",
    "LAPTOP_SCALE",
    "OBSERVATION_SCALE",
    "PAPER_SCALE",
    "ScalePreset",
    "SuiteResult",
    "run_suite",
]
