"""Lossless JSON serialization of characterization results.

The result cache stores whole :class:`~repro.core.characterize.Characterization`
objects on disk; the differential test harness requires that a cached
result compares **equal** to a freshly computed one.  Python floats
round-trip through JSON exactly (the encoder emits ``repr``-quality
decimal forms), so the only care needed here is structural: tuples must
come back as tuples and nested dataclasses must be rebuilt as the right
types.

Every helper pair here is an exact inverse: ``X_from_dict(X_to_dict(x))
== x`` bit-for-bit.  The golden fixture generator reuses the same
encoders so fixtures and cache payloads share one format.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List

from repro.analysis.distribution import Table1Row
from repro.analysis.roofline import RooflinePoint
from repro.core.characterize import Characterization
from repro.core.config import ScalePreset
from repro.core.resilience import WorkloadFailure
from repro.gpu.device import DeviceSpec
from repro.gpu.metrics import KernelMetrics
from repro.profiler.records import ApplicationProfile, KernelProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.suite import SuiteRunReport
    from repro.core.sweep import SweepRunReport


# -- roofline points ---------------------------------------------------
def roofline_point_to_dict(point: RooflinePoint) -> Dict[str, Any]:
    return {
        "label": point.label,
        "workload": point.workload,
        "intensity": point.intensity,
        "gips": point.gips,
        "time_share": point.time_share,
        "intensity_class": point.intensity_class,
        "latency_class": point.latency_class,
    }


def roofline_point_from_dict(payload: Dict[str, Any]) -> RooflinePoint:
    return RooflinePoint(**payload)


# -- Table I rows ------------------------------------------------------
def table1_row_to_dict(row: Table1Row) -> Dict[str, Any]:
    return {
        "workload": row.workload,
        "abbr": row.abbr,
        "domain": row.domain,
        "total_warp_insts": row.total_warp_insts,
        "weighted_avg_insts_per_kernel": row.weighted_avg_insts_per_kernel,
        "kernels_100": row.kernels_100,
        "kernels_70": row.kernels_70,
    }


def table1_row_from_dict(payload: Dict[str, Any]) -> Table1Row:
    return Table1Row(**payload)


# -- profiles ----------------------------------------------------------
def kernel_profile_to_dict(profile: KernelProfile) -> Dict[str, Any]:
    return {
        "name": profile.name,
        "invocations": profile.invocations,
        "total_time_s": profile.total_time_s,
        "total_warp_insts": profile.total_warp_insts,
        "total_dram_transactions": profile.total_dram_transactions,
        "metrics": profile.metrics.to_json_dict(),
        "tags": list(profile.tags),
    }


def kernel_profile_from_dict(payload: Dict[str, Any]) -> KernelProfile:
    return KernelProfile(
        name=payload["name"],
        invocations=payload["invocations"],
        total_time_s=payload["total_time_s"],
        total_warp_insts=payload["total_warp_insts"],
        total_dram_transactions=payload["total_dram_transactions"],
        metrics=KernelMetrics.from_json_dict(payload["metrics"]),
        tags=tuple(payload["tags"]),
    )


def application_profile_to_dict(profile: ApplicationProfile) -> Dict[str, Any]:
    return {
        "workload": profile.workload,
        "suite": profile.suite,
        "domain": profile.domain,
        "kernels": [kernel_profile_to_dict(k) for k in profile.kernels],
    }


def application_profile_from_dict(payload: Dict[str, Any]) -> ApplicationProfile:
    # ApplicationProfile re-sorts by total time on construction; the
    # serialized order is already time-sorted and list.sort is stable,
    # so the round trip preserves kernel order exactly.
    return ApplicationProfile(
        workload=payload["workload"],
        suite=payload["suite"],
        domain=payload["domain"],
        kernels=[kernel_profile_from_dict(k) for k in payload["kernels"]],
    )


# -- full characterization --------------------------------------------
def characterization_to_dict(result: Characterization) -> Dict[str, Any]:
    return {
        "abbr": result.abbr,
        "profile": application_profile_to_dict(result.profile),
        "table1": table1_row_to_dict(result.table1),
        "cumulative_curve": [list(pair) for pair in result.cumulative_curve],
        "aggregate_point": roofline_point_to_dict(result.aggregate_point),
        "kernel_points": [
            roofline_point_to_dict(p) for p in result.kernel_points
        ],
        "dominant_points": [
            roofline_point_to_dict(p) for p in result.dominant_points
        ],
    }


def device_spec_to_dict(device: DeviceSpec) -> Dict[str, Any]:
    return dataclasses.asdict(device)


def device_spec_from_dict(payload: Dict[str, Any]) -> DeviceSpec:
    return DeviceSpec(**payload)


def scale_preset_to_dict(preset: ScalePreset) -> Dict[str, Any]:
    return dataclasses.asdict(preset)


def scale_preset_from_dict(payload: Dict[str, Any]) -> ScalePreset:
    return ScalePreset(**payload)


# -- whole suite-run reports ------------------------------------------
def suite_run_report_to_dict(report: "SuiteRunReport") -> Dict[str, Any]:
    """Serialize a whole run report — survivors *and* failure record.

    The failure/resilience fields (``failures``, ``attempts``,
    ``fallback_reason``, ``resumed``, ``run_profile``) are first-class:
    a report that degraded or lost workloads round-trips with its full
    post-mortem, not just the surviving characterizations.
    """
    return {
        "device": device_spec_to_dict(report.device),
        "preset": scale_preset_to_dict(report.preset),
        "results": {
            abbr: characterization_to_dict(result)
            for abbr, result in report.results.items()
        },
        "failures": [failure.as_dict() for failure in report.failures],
        "attempts": dict(report.attempts),
        "fallback_reason": report.fallback_reason,
        "resumed": list(report.resumed),
        "run_profile": (
            report.run_profile.as_dict()
            if report.run_profile is not None
            else None
        ),
        "trace_dir": report.trace_dir,
    }


def suite_run_report_from_dict(payload: Dict[str, Any]) -> "SuiteRunReport":
    from repro.core.suite import SuiteRunReport
    from repro.obs.metrics import RunProfile

    profile = payload.get("run_profile")
    return SuiteRunReport(
        device=device_spec_from_dict(payload["device"]),
        preset=scale_preset_from_dict(payload["preset"]),
        results={
            abbr: characterization_from_dict(result)
            for abbr, result in payload["results"].items()
        },
        failures=[
            WorkloadFailure.from_dict(f) for f in payload.get("failures", [])
        ],
        attempts={
            abbr: int(count)
            for abbr, count in payload.get("attempts", {}).items()
        },
        fallback_reason=payload.get("fallback_reason"),
        resumed=list(payload.get("resumed", [])),
        run_profile=(
            RunProfile.from_dict(profile) if profile is not None else None
        ),
        trace_dir=payload.get("trace_dir"),
    )


def sweep_run_report_to_dict(report: "SweepRunReport") -> Dict[str, Any]:
    """Serialize a device-sweep run report, post-mortem included.

    Same contract as :func:`suite_run_report_to_dict`, with ``results``
    holding one characterization dict per ``(workload, device)`` pair
    and the swept device list serialized in sweep order.
    """
    return {
        "devices": [device_spec_to_dict(d) for d in report.devices],
        "preset": scale_preset_to_dict(report.preset),
        "results": {
            abbr: {
                name: characterization_to_dict(entry)
                for name, entry in per_device.items()
            }
            for abbr, per_device in report.results.items()
        },
        "failures": [failure.as_dict() for failure in report.failures],
        "attempts": dict(report.attempts),
        "fallback_reason": report.fallback_reason,
        "resumed": list(report.resumed),
        "run_profile": (
            report.run_profile.as_dict()
            if report.run_profile is not None
            else None
        ),
        "trace_dir": report.trace_dir,
    }


def sweep_run_report_from_dict(payload: Dict[str, Any]) -> "SweepRunReport":
    from repro.core.sweep import SweepRunReport
    from repro.obs.metrics import RunProfile

    profile = payload.get("run_profile")
    return SweepRunReport(
        devices=[device_spec_from_dict(d) for d in payload["devices"]],
        preset=scale_preset_from_dict(payload["preset"]),
        results={
            abbr: {
                name: characterization_from_dict(entry)
                for name, entry in per_device.items()
            }
            for abbr, per_device in payload["results"].items()
        },
        failures=[
            WorkloadFailure.from_dict(f) for f in payload.get("failures", [])
        ],
        attempts={
            abbr: int(count)
            for abbr, count in payload.get("attempts", {}).items()
        },
        fallback_reason=payload.get("fallback_reason"),
        resumed=list(payload.get("resumed", [])),
        run_profile=(
            RunProfile.from_dict(profile) if profile is not None else None
        ),
        trace_dir=payload.get("trace_dir"),
    )


def characterization_from_dict(payload: Dict[str, Any]) -> Characterization:
    curve: List = [
        (int(count), float(fraction))
        for count, fraction in payload["cumulative_curve"]
    ]
    return Characterization(
        abbr=payload["abbr"],
        profile=application_profile_from_dict(payload["profile"]),
        table1=table1_row_from_dict(payload["table1"]),
        cumulative_curve=curve,
        aggregate_point=roofline_point_from_dict(payload["aggregate_point"]),
        kernel_points=[
            roofline_point_from_dict(p) for p in payload["kernel_points"]
        ],
        dominant_points=[
            roofline_point_from_dict(p) for p in payload["dominant_points"]
        ],
    )
