"""Scale presets for running the pipeline.

The paper's inputs (Table I) are large; ``scale`` shrinks every
workload proportionally while preserving its structure.  Graph
workloads get their own (smaller) scale because their vertex counts
start in the tens of millions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalePreset:
    """Per-domain scale factors for one pipeline run."""

    name: str
    molecular: float
    graph: float
    ml: float
    bottom_up: float
    seed: int = 0

    def for_workload(self, abbr: str) -> float:
        """Scale factor for a workload by its suite membership."""
        key = abbr.upper()
        if key in ("GMS", "LMR", "LMC"):
            return self.molecular
        if key in ("GST", "GRU"):
            return self.graph
        if key in ("DCG", "NST", "RFL", "SPT", "LGT"):
            return self.ml
        return self.bottom_up


#: Full Table I/III inputs.  Molecular and ML run at their real sizes;
#: the graphs run at 1/20 of the paper's 21-23M vertices, which keeps
#: the BFS tractable while preserving the frontier shape (DESIGN.md).
PAPER_SCALE = ScalePreset(
    name="paper", molecular=1.0, graph=0.05, ml=1.0, bottom_up=1.0
)

#: The scale the observation checks and benchmark harnesses run at:
#: full-size ML inputs (they are cheap to trace), half-size molecular
#: systems and 1/50-scale graphs — large enough that every observation
#: is judged away from launch-overhead distortion.
OBSERVATION_SCALE = ScalePreset(
    name="observation", molecular=1.0, graph=0.02, ml=1.0, bottom_up=0.5
)

#: Fast preset for tests and examples (seconds, not minutes).
LAPTOP_SCALE = ScalePreset(
    name="laptop", molecular=0.1, graph=0.005, ml=0.5, bottom_up=0.25
)
