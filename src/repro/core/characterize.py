"""Per-workload characterization: the full Section V treatment.

``characterize(workload)`` runs the workload through the profiler and
bundles every per-application analysis of the paper: Table I row,
cumulative time curve, aggregate and per-kernel roofline points, and
the dominant-kernel selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.distribution import Table1Row, table1_row
from repro.analysis.roofline import (
    RooflinePoint,
    application_roofline,
    kernel_roofline,
)
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.simulator import GPUSimulator
from repro.profiler.profiler import Profiler
from repro.profiler.records import ApplicationProfile
from repro.workloads.base import Workload


@dataclass
class Characterization:
    """Everything the paper derives from one workload."""

    abbr: str
    profile: ApplicationProfile
    table1: Table1Row
    cumulative_curve: List[Tuple[int, float]]
    aggregate_point: RooflinePoint
    kernel_points: List[RooflinePoint]
    dominant_points: List[RooflinePoint]

    @property
    def is_memory_intensive(self) -> bool:
        return not self.aggregate_point.is_compute_intensive

    @property
    def dominant_sides(self) -> Tuple[int, int]:
        """(compute-intensive, memory-intensive) counts among the
        dominant kernels."""
        compute = sum(1 for p in self.dominant_points if p.is_compute_intensive)
        return compute, len(self.dominant_points) - compute


def characterize(
    workload: Workload,
    device: DeviceSpec = RTX_3080,
    profiler: Optional[Profiler] = None,
) -> Characterization:
    """Run the full per-workload characterization pipeline."""
    profiler = profiler or Profiler(simulator=GPUSimulator(device))
    profile = profiler.profile(workload)
    from repro.analysis.distribution import cumulative_time_curve

    return Characterization(
        abbr=workload.abbr,
        profile=profile,
        table1=table1_row(profile, abbr=workload.abbr),
        cumulative_curve=cumulative_time_curve(profile, max_kernels=14),
        aggregate_point=application_roofline(profile, device),
        kernel_points=kernel_roofline(profile, device=device),
        dominant_points=kernel_roofline(
            profile, profile.dominant_kernels, device=device
        ),
    )
