"""Per-workload characterization: the full Section V treatment.

``characterize(workload)`` runs the workload through the profiler and
bundles every per-application analysis of the paper: Table I row,
cumulative time curve, aggregate and per-kernel roofline points, and
the dominant-kernel selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.analysis.distribution import Table1Row, table1_row
from repro.analysis.roofline import (
    RooflinePoint,
    application_roofline,
    kernel_roofline,
)
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.simulator import GPUSimulator
from repro.profiler.profiler import Profiler
from repro.profiler.records import ApplicationProfile
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ResultCache


@dataclass
class Characterization:
    """Everything the paper derives from one workload."""

    abbr: str
    profile: ApplicationProfile
    table1: Table1Row
    cumulative_curve: List[Tuple[int, float]]
    aggregate_point: RooflinePoint
    kernel_points: List[RooflinePoint]
    dominant_points: List[RooflinePoint]

    @property
    def is_memory_intensive(self) -> bool:
        return not self.aggregate_point.is_compute_intensive

    @property
    def dominant_sides(self) -> Tuple[int, int]:
        """(compute-intensive, memory-intensive) counts among the
        dominant kernels."""
        compute = sum(1 for p in self.dominant_points if p.is_compute_intensive)
        return compute, len(self.dominant_points) - compute


def build_characterization(
    abbr: str, profile: ApplicationProfile, device: DeviceSpec = RTX_3080
) -> Characterization:
    """Derive every Section-V analysis from an existing profile."""
    from repro.analysis.distribution import cumulative_time_curve

    return Characterization(
        abbr=abbr,
        profile=profile,
        table1=table1_row(profile, abbr=abbr),
        cumulative_curve=cumulative_time_curve(profile, max_kernels=14),
        aggregate_point=application_roofline(profile, device),
        kernel_points=kernel_roofline(profile, device=device),
        dominant_points=kernel_roofline(
            profile, profile.dominant_kernels, device=device
        ),
    )


def characterize(
    workload: Workload,
    device: DeviceSpec = RTX_3080,
    profiler: Optional[Profiler] = None,
    cache: Optional["ResultCache"] = None,
    tracer=None,
) -> Characterization:
    """Run the full per-workload characterization pipeline.

    With a *cache*, the result is memoized under a content-addressed key
    of ``(device, simulation options, launch-stream digest)`` — a warm
    hit skips the simulation and every analysis step and deserializes a
    result that compares equal to a fresh computation.

    *tracer* (see :mod:`repro.obs`) wraps each phase — ``stream-gen``,
    ``cache-lookup``, ``simulate``, ``analyze``, ``cache-store`` — in a
    span.  Pure observation: the stream, the cache key, and the result
    are bit-for-bit identical with tracing on or off.
    """
    from repro.obs import NULL_TRACER

    tracer = tracer or NULL_TRACER
    profiler = profiler or Profiler(
        simulator=GPUSimulator(device, cache=cache)
    )
    abbr = workload.abbr
    with tracer.span("stream-gen", category="phase", workload=abbr) as sp:
        stream = profiler.prepare_stream(workload)
        sp.set_attr("launches", len(stream))

    key: Optional[str] = None
    if cache is not None:
        from repro.core.cache import characterization_key
        from repro.core.serialize import characterization_from_dict

        key = characterization_key(
            device,
            profiler.simulator.options,
            {
                "name": workload.name,
                "abbr": workload.abbr,
                "suite": workload.suite,
                "domain": workload.domain,
            },
            stream,
        )
        with tracer.span("cache-lookup", category="phase", workload=abbr):
            payload = cache.get(key)
        if payload is not None:
            try:
                return characterization_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                pass  # schema-corrupt entry → recompute and rewrite below

    with tracer.span("simulate", category="phase", workload=abbr):
        profile = profiler.profile_launches(
            stream,
            workload=workload.name,
            suite=workload.suite,
            domain=workload.domain,
        )
    with tracer.span("analyze", category="phase", workload=abbr):
        result = build_characterization(workload.abbr, profile, device)
    if cache is not None and key is not None:
        from repro.core.serialize import characterization_to_dict

        with tracer.span("cache-store", category="phase", workload=abbr):
            cache.put(key, characterization_to_dict(result))
    return result
