"""Per-workload characterization: the full Section V treatment.

``characterize(workload)`` runs the workload through the profiler and
bundles every per-application analysis of the paper: Table I row,
cumulative time curve, aggregate and per-kernel roofline points, and
the dominant-kernel selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.analysis.distribution import Table1Row, table1_row
from repro.analysis.roofline import (
    RooflinePoint,
    application_roofline,
    kernel_roofline,
)
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.simulator import GPUSimulator
from repro.profiler.profiler import Profiler
from repro.profiler.records import ApplicationProfile
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ResultCache


@dataclass
class Characterization:
    """Everything the paper derives from one workload."""

    abbr: str
    profile: ApplicationProfile
    table1: Table1Row
    cumulative_curve: List[Tuple[int, float]]
    aggregate_point: RooflinePoint
    kernel_points: List[RooflinePoint]
    dominant_points: List[RooflinePoint]

    @property
    def is_memory_intensive(self) -> bool:
        return not self.aggregate_point.is_compute_intensive

    @property
    def dominant_sides(self) -> Tuple[int, int]:
        """(compute-intensive, memory-intensive) counts among the
        dominant kernels."""
        compute = sum(1 for p in self.dominant_points if p.is_compute_intensive)
        return compute, len(self.dominant_points) - compute


def build_characterization(
    abbr: str, profile: ApplicationProfile, device: DeviceSpec = RTX_3080
) -> Characterization:
    """Derive every Section-V analysis from an existing profile."""
    from repro.analysis.distribution import cumulative_time_curve

    return Characterization(
        abbr=abbr,
        profile=profile,
        table1=table1_row(profile, abbr=abbr),
        cumulative_curve=cumulative_time_curve(profile, max_kernels=14),
        aggregate_point=application_roofline(profile, device),
        kernel_points=kernel_roofline(profile, device=device),
        dominant_points=kernel_roofline(
            profile, profile.dominant_kernels, device=device
        ),
    )


def characterize(
    workload: Workload,
    device: DeviceSpec = RTX_3080,
    profiler: Optional[Profiler] = None,
    cache: Optional["ResultCache"] = None,
    tracer=None,
    stream=None,
) -> Characterization:
    """Run the full per-workload characterization pipeline.

    With a *cache*, the result is memoized under a content-addressed key
    of ``(device, simulation options, launch-stream digest)`` — a warm
    hit skips the simulation and every analysis step and deserializes a
    result that compares equal to a fresh computation.

    *stream* short-circuits generation: pass the launch list a previous
    characterization of the *same workload instance* already prepared
    (the engine memoizes streams per run) and the ``stream-gen`` phase
    is skipped entirely — generation cost is paid once per run even
    when one workload is characterized on several devices.

    *tracer* (see :mod:`repro.obs`) wraps each phase — ``stream-gen``,
    ``cache-lookup``, ``simulate``, ``analyze``, ``cache-store`` — in a
    span.  Pure observation: the stream, the cache key, and the result
    are bit-for-bit identical with tracing on or off.
    """
    from repro.obs import NULL_TRACER

    tracer = tracer or NULL_TRACER
    profiler = profiler or Profiler(
        simulator=GPUSimulator(device, cache=cache)
    )
    abbr = workload.abbr
    if stream is None:
        with tracer.span("stream-gen", category="phase", workload=abbr) as sp:
            stream = profiler.prepare_stream(workload)
            sp.set_attr("launches", len(stream))

    key: Optional[str] = None
    if cache is not None:
        from repro.core.cache import characterization_key
        from repro.core.serialize import characterization_from_dict

        key = characterization_key(
            device,
            profiler.simulator.options,
            {
                "name": workload.name,
                "abbr": workload.abbr,
                "suite": workload.suite,
                "domain": workload.domain,
            },
            stream,
        )
        with tracer.span("cache-lookup", category="phase", workload=abbr):
            payload = cache.get(key)
        if payload is not None:
            try:
                return characterization_from_dict(payload)
            except (KeyError, TypeError, ValueError):
                pass  # schema-corrupt entry → recompute and rewrite below

    with tracer.span("simulate", category="phase", workload=abbr):
        profile = profiler.profile_launches(
            stream,
            workload=workload.name,
            suite=workload.suite,
            domain=workload.domain,
        )
    with tracer.span("analyze", category="phase", workload=abbr):
        result = build_characterization(workload.abbr, profile, device)
    if cache is not None and key is not None:
        from repro.core.serialize import characterization_to_dict

        with tracer.span("cache-store", category="phase", workload=abbr):
            cache.put(key, characterization_to_dict(result))
    return result


def characterize_devices(
    workload: Workload,
    devices,
    options=None,
    cache: Optional["ResultCache"] = None,
    stream_cache=None,
    tracer=None,
    steady_state: bool = True,
    stream=None,
    proxy_bank=None,
) -> "dict[str, Characterization]":
    """Characterize one workload across N devices from ONE stream.

    The device-sweep inner loop: the launch stream is acquired exactly
    once (from the *stream* argument, the device-free *stream_cache*,
    or — last resort — fresh generation under a ``stream-gen`` span),
    every device's result cache entry is probed under the **same**
    content-addressed key the scalar path uses (so suite runs warm
    sweeps and vice versa), and only the missing devices go through the
    batched device-axis simulator
    (:func:`repro.gpu.batched.simulate_devices`) — a single broadcast
    pass instead of N scalar walks.

    Returns ``{device.name: Characterization}`` in *devices* order.
    Every entry is bit-for-bit identical to what
    :func:`characterize` would produce for that device alone.

    *proxy_bank* (see :class:`repro.core.proxy.ProxyBank`) is the
    opt-in similarity-proxy tier: with it attached, each device's
    simulate pass may substitute near-duplicate metrics from that
    device's proxy corpus.  ``None`` (default) keeps the bit-exact
    contract above.
    """
    from repro.gpu.batched import simulate_devices
    from repro.gpu.simulator import SimulationOptions
    from repro.obs import NULL_TRACER

    tracer = tracer or NULL_TRACER
    options = options or SimulationOptions()
    abbr = workload.abbr
    identity = {
        "name": workload.name,
        "abbr": workload.abbr,
        "suite": workload.suite,
        "domain": workload.domain,
    }

    # -- stream acquisition: memo > stream cache > generation ----------
    skey: Optional[str] = None
    if stream_cache is not None:
        from repro.core.streamcache import stream_key

        skey = stream_key(
            identity, workload.scale, workload.seed, steady_state
        )
        if stream is None:
            with tracer.span(
                "stream-cache-lookup", category="phase", workload=abbr
            ):
                stream = stream_cache.get(skey)
    generated = False
    if stream is None:
        with tracer.span(
            "stream-gen", category="phase", workload=abbr
        ) as sp:
            profiler = Profiler(steady_state=steady_state)
            stream = profiler.prepare_stream(workload)
            sp.set_attr("launches", len(stream))
        generated = True
    if generated and stream_cache is not None and skey is not None:
        with tracer.span(
            "stream-cache-store", category="phase", workload=abbr
        ):
            stream_cache.put(skey, stream)

    # -- per-device result-cache probes (scalar-compatible keys) -------
    results: "dict[str, Characterization]" = {}
    missing = list(devices)
    keys: "dict[str, str]" = {}
    if cache is not None:
        from repro.core.cache import characterization_key
        from repro.core.serialize import characterization_from_dict

        with tracer.span(
            "cache-lookup",
            category="phase",
            workload=abbr,
            devices=len(missing),
        ) as sp:
            still_missing = []
            for device in missing:
                key = characterization_key(
                    device, options, identity, stream
                )
                keys[device.name] = key
                payload = cache.get(key)
                if payload is not None:
                    try:
                        results[device.name] = characterization_from_dict(
                            payload
                        )
                        continue
                    except (KeyError, TypeError, ValueError):
                        pass  # schema-corrupt entry → recompute below
                still_missing.append(device)
            missing = still_missing
            sp.set_attr("hits", len(results))

    # -- batched simulate + per-device analysis for the misses ---------
    if missing:
        with tracer.span(
            "simulate-devices",
            category="phase",
            workload=abbr,
            devices=len(missing),
        ) as sp:
            per_device = simulate_devices(
                stream,
                missing,
                options=options,
                tracer=tracer,
                proxy_bank=proxy_bank,
            )
            sp.set_attr("launches", len(stream))
        aggregator = Profiler(steady_state=steady_state)
        with tracer.span(
            "analyze", category="phase", workload=abbr, devices=len(missing)
        ):
            fresh = {}
            for device, metrics in zip(missing, per_device):
                profile = aggregator.profile_metrics(
                    stream,
                    metrics,
                    workload=workload.name,
                    suite=workload.suite,
                    domain=workload.domain,
                )
                fresh[device.name] = build_characterization(
                    workload.abbr, profile, device
                )
        if cache is not None:
            from repro.core.serialize import characterization_to_dict

            with tracer.span(
                "cache-store",
                category="phase",
                workload=abbr,
                devices=len(fresh),
            ):
                for name, result in fresh.items():
                    cache.put(keys[name], characterization_to_dict(result))
        results.update(fresh)

    return {device.name: results[device.name] for device in devices}
