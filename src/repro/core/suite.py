"""Suite runner: characterize whole benchmark suites in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.characterize import Characterization
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.core.resilience import RetryPolicy, WorkloadFailure
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.workloads.registry import list_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ResultCache
    from repro.obs import RunProfile
    from repro.testing.faults import FaultPlan


@dataclass
class SuiteResult:
    """Characterizations for one or more suites, keyed by abbreviation."""

    device: DeviceSpec
    preset: ScalePreset
    results: Dict[str, Characterization] = field(default_factory=dict)

    def __getitem__(self, abbr: str) -> Characterization:
        return self.results[abbr.upper()]

    def __contains__(self, abbr: str) -> bool:
        return abbr.upper() in self.results

    def __len__(self) -> int:
        return len(self.results)

    def suite(self, name: str) -> List[Characterization]:
        """Characterizations of one suite, in registration order."""
        return [
            self.results[abbr]
            for abbr in list_workloads(name)
            if abbr in self.results
        ]

    def profiles(self, name: Optional[str] = None):
        items = (
            self.suite(name) if name else list(self.results.values())
        )
        return [c.profile for c in items]


@dataclass
class SuiteRunReport(SuiteResult):
    """A :class:`SuiteResult` plus the run's failure/resilience record.

    ``results`` holds the *surviving* characterizations (registration
    order); every workload that failed terminally appears instead in
    ``failures`` (also registration order) with its full traceback.
    Downstream analyses degrade gracefully: suite aggregates are
    computed over the survivors, and :meth:`SuiteResult.suite` already
    skips absent workloads.
    """

    failures: List[WorkloadFailure] = field(default_factory=list)
    #: Attempt counts per executed workload (resumed ones are absent).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Why the engine degraded from the pool to the serial path, if it did.
    fallback_reason: Optional[str] = None
    #: Workloads skipped because a journal marked them already complete.
    resumed: List[str] = field(default_factory=list)
    #: Aggregated run observability (repro.obs): per-phase wall clock,
    #: cache hit/miss counters, retries, queue waits — merged across
    #: every worker of the run.  Always populated by the engine.
    run_profile: Optional["RunProfile"] = None
    #: Where the run's event log / Chrome trace were written (if tracing
    #: was enabled via ``trace_dir``).
    trace_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_workloads(self) -> List[str]:
        return [f.abbr for f in self.failures]

    def failure_for(self, abbr: str) -> Optional[WorkloadFailure]:
        for failure in self.failures:
            if failure.abbr == abbr.upper():
                return failure
        return None

    def render_failures(self) -> str:
        """One line per failed workload (empty string when all passed)."""
        return "\n".join(f.render() for f in self.failures)


def run_suite(
    suites: Sequence[str] = ("Cactus",),
    preset: ScalePreset = LAPTOP_SCALE,
    device: DeviceSpec = RTX_3080,
    workloads: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
    cache_dir: Optional[str] = None,
    retry_policy: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    journal_dir: Optional[str] = None,
    fault_plan: Optional["FaultPlan"] = None,
    trace_dir: Optional[str] = None,
    proxy_tol: Optional[float] = None,
) -> SuiteRunReport:
    """Characterize every workload of the given suites.

    Pass ``workloads`` to restrict to specific abbreviations, ``jobs``
    to fan out across a process pool (negative → one worker per CPU),
    and ``cache``/``cache_dir`` to reuse results across calls and runs.
    Failure semantics are governed by *retry_policy* (retries,
    per-workload timeout, backoff) and *keep_going*: when ``True`` the
    returned :class:`SuiteRunReport` carries survivors plus failures;
    when ``False`` (strict, the default) any terminal failure raises
    :class:`~repro.core.resilience.SuiteRunError`.  *journal_dir*
    checkpoints completed workloads so an interrupted run resumes
    there, even with the cache disabled.  *trace_dir* enables the
    :mod:`repro.obs` event log and Chrome-trace export for the run
    (run metrics on ``report.run_profile`` are collected regardless).
    *proxy_tol* opts into the similarity-proxy tier
    (:mod:`repro.core.proxy`): near-duplicate kernels within that
    standardized-space distance reuse recorded metrics instead of
    simulating; ``None`` (default) keeps runs bit-exact.
    This is a thin wrapper over
    :class:`~repro.core.engine.CharacterizationEngine`.
    """
    from repro.core.cache import ResultCache
    from repro.core.engine import CharacterizationEngine

    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir=cache_dir)
    engine = CharacterizationEngine(
        device=device,
        jobs=jobs,
        cache=cache,
        retry_policy=retry_policy or RetryPolicy(),
        keep_going=keep_going,
        journal_dir=journal_dir,
        fault_plan=fault_plan,
        trace_dir=trace_dir,
        proxy_tol=proxy_tol,
    )
    return engine.run_suite(suites, preset=preset, workloads=workloads)
