"""Suite runner: characterize whole benchmark suites in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.characterize import Characterization
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.workloads.registry import list_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ResultCache


@dataclass
class SuiteResult:
    """Characterizations for one or more suites, keyed by abbreviation."""

    device: DeviceSpec
    preset: ScalePreset
    results: Dict[str, Characterization] = field(default_factory=dict)

    def __getitem__(self, abbr: str) -> Characterization:
        return self.results[abbr.upper()]

    def __contains__(self, abbr: str) -> bool:
        return abbr.upper() in self.results

    def __len__(self) -> int:
        return len(self.results)

    def suite(self, name: str) -> List[Characterization]:
        """Characterizations of one suite, in registration order."""
        return [
            self.results[abbr]
            for abbr in list_workloads(name)
            if abbr in self.results
        ]

    def profiles(self, name: Optional[str] = None):
        items = (
            self.suite(name) if name else list(self.results.values())
        )
        return [c.profile for c in items]


def run_suite(
    suites: Sequence[str] = ("Cactus",),
    preset: ScalePreset = LAPTOP_SCALE,
    device: DeviceSpec = RTX_3080,
    workloads: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
    cache_dir: Optional[str] = None,
) -> SuiteResult:
    """Characterize every workload of the given suites.

    Pass ``workloads`` to restrict to specific abbreviations, ``jobs``
    to fan out across a process pool (negative → one worker per CPU),
    and ``cache``/``cache_dir`` to reuse results across calls and runs.
    This is a thin wrapper over
    :class:`~repro.core.engine.CharacterizationEngine`.
    """
    from repro.core.cache import ResultCache
    from repro.core.engine import CharacterizationEngine

    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir=cache_dir)
    engine = CharacterizationEngine(device=device, jobs=jobs, cache=cache)
    return engine.run_suite(suites, preset=preset, workloads=workloads)
