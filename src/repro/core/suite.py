"""Suite runner: characterize whole benchmark suites in one call."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.characterize import Characterization, characterize
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.simulator import GPUSimulator
from repro.profiler.profiler import Profiler
from repro.workloads.registry import get_workload, list_workloads


@dataclass
class SuiteResult:
    """Characterizations for one or more suites, keyed by abbreviation."""

    device: DeviceSpec
    preset: ScalePreset
    results: Dict[str, Characterization] = field(default_factory=dict)

    def __getitem__(self, abbr: str) -> Characterization:
        return self.results[abbr.upper()]

    def __contains__(self, abbr: str) -> bool:
        return abbr.upper() in self.results

    def __len__(self) -> int:
        return len(self.results)

    def suite(self, name: str) -> List[Characterization]:
        """Characterizations of one suite, in registration order."""
        return [
            self.results[abbr]
            for abbr in list_workloads(name)
            if abbr in self.results
        ]

    def profiles(self, name: Optional[str] = None):
        items = (
            self.suite(name) if name else list(self.results.values())
        )
        return [c.profile for c in items]


def run_suite(
    suites: Sequence[str] = ("Cactus",),
    preset: ScalePreset = LAPTOP_SCALE,
    device: DeviceSpec = RTX_3080,
    workloads: Optional[Sequence[str]] = None,
) -> SuiteResult:
    """Characterize every workload of the given suites.

    Pass ``workloads`` to restrict to specific abbreviations.
    """
    profiler = Profiler(simulator=GPUSimulator(device))
    selected: List[str] = []
    for suite in suites:
        selected.extend(list_workloads(suite))
    if workloads is not None:
        wanted = {w.upper() for w in workloads}
        selected = [abbr for abbr in selected if abbr in wanted]
    if not selected:
        raise ValueError(f"no workloads selected from suites {suites!r}")

    result = SuiteResult(device=device, preset=preset)
    for abbr in selected:
        workload = get_workload(
            abbr, scale=preset.for_workload(abbr), seed=preset.seed
        )
        result.results[abbr] = characterize(
            workload, device=device, profiler=profiler
        )
    return result
