"""Cactus-vs-PRT comparison: the paper's Observations 1-12.

``check_observations`` evaluates every qualitative claim of Section V
against a pair of suite runs and reports which hold, with evidence —
the reproduction's "did we get the same shape?" scoreboard (used by
EXPERIMENTS.md and the integration tests).

``diff_characterizations``/``diff_suite_results`` are the engine's
differential-comparison primitives: field-by-field equality checks
between two runs of the same pipeline (serial vs. parallel, cold vs.
warm cache) that report *where* two results diverge instead of a bare
boolean, so a failing differential test names the drifted quantity.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.clustering import cut_tree, ward_clustering
from repro.analysis.correlation import correlation_matrix
from repro.analysis.famd import famd
from repro.core.suite import SuiteResult
from repro.gpu.device import RTX_3080
from repro.gpu.metrics import PRIMARY_METRICS, SECONDARY_METRICS


@dataclass
class Observation:
    """One checked claim."""

    number: int
    claim: str
    passed: bool
    evidence: str


@dataclass
class ObservationReport:
    """All twelve observations."""

    observations: List[Observation]

    @property
    def passed(self) -> int:
        return sum(1 for o in self.observations if o.passed)

    @property
    def total(self) -> int:
        return len(self.observations)

    def render(self) -> str:
        lines = [f"Observations: {self.passed}/{self.total} hold"]
        for o in self.observations:
            status = "PASS" if o.passed else "FAIL"
            lines.append(f"  [{status}] #{o.number} {o.claim}")
            lines.append(f"         {o.evidence}")
        return "\n".join(lines)


def _diff_value(path: str, a, b, out: List[str]) -> None:
    """Recursively record human-readable differences between values."""
    if dataclasses.is_dataclass(a) and not isinstance(a, type):
        if type(a) is not type(b):
            out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
            return
        for field_ in dataclasses.fields(a):
            _diff_value(
                f"{path}.{field_.name}",
                getattr(a, field_.name),
                getattr(b, field_.name),
                out,
            )
        return
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
            return
        for index, (left, right) in enumerate(zip(a, b)):
            _diff_value(f"{path}[{index}]", left, right, out)
        return
    if a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def diff_characterizations(a, b, label: str = "") -> List[str]:
    """Field-by-field differences between two characterizations.

    Empty list ⇔ ``a == b`` (both are plain dataclass trees).  Used by
    the differential tests so a drift failure names the exact metric.
    """
    out: List[str] = []
    _diff_value(label or getattr(a, "abbr", "characterization"), a, b, out)
    return out


def diff_suite_results(a: SuiteResult, b: SuiteResult) -> List[str]:
    """Differences between two suite runs (keys and per-workload data)."""
    out: List[str] = []
    if list(a.results) != list(b.results):
        out.append(
            f"workload sets differ: {sorted(a.results)} != {sorted(b.results)}"
        )
        return out
    for abbr in a.results:
        out.extend(
            diff_characterizations(a.results[abbr], b.results[abbr], abbr)
        )
    return out


def _dominant_kernel_features(
    result: SuiteResult, suites: List[str]
) -> Tuple[Dict[str, List[float]], Dict[str, List[str]], List[str], List[str]]:
    """FAMD inputs over the dominant kernels of the given suites."""
    quantitative: Dict[str, List[float]] = {
        m: [] for m in set(PRIMARY_METRICS) | set(SECONDARY_METRICS)
    }
    qualitative: Dict[str, List[str]] = {"intensity": [], "latency": []}
    labels: List[str] = []
    owners: List[str] = []
    for suite in suites:
        for characterization in result.suite(suite):
            for point, kernel in zip(
                characterization.dominant_points,
                characterization.profile.dominant_kernels,
            ):
                labels.append(f"{characterization.abbr}:{kernel.name}")
                owners.append(characterization.abbr)
                for metric in quantitative:
                    if metric == "gips":
                        quantitative[metric].append(kernel.gips)
                    elif metric == "instruction_intensity":
                        quantitative[metric].append(
                            kernel.instruction_intensity
                        )
                    else:
                        quantitative[metric].append(
                            kernel.metrics.metric(metric)
                        )
                qualitative["intensity"].append(point.intensity_class)
                qualitative["latency"].append(point.latency_class)
    return quantitative, qualitative, labels, owners


def cluster_dominant_kernels(
    cactus: SuiteResult, prt: SuiteResult, n_clusters: int = 6
):
    """FAMD + Ward over all dominant kernels; returns
    (labels, owners, assignment, suite-of-owner map)."""
    q1, c1, l1, o1 = _dominant_kernel_features(cactus, ["Cactus"])
    q2, c2, l2, o2 = _dominant_kernel_features(
        prt, ["Parboil", "Rodinia", "Tango"]
    )
    quantitative = {k: q1[k] + q2[k] for k in q1}
    qualitative = {k: c1[k] + c2[k] for k in c1}
    labels = l1 + l2
    owners = o1 + o2
    suite_of = {abbr: "Cactus" for abbr in o1}
    suite_of.update({abbr: "PRT" for abbr in o2})

    factors = famd(quantitative, qualitative)
    # Keep the few most significant factors (the denoising step the
    # paper describes); 80 % of variance keeps ~5 components here.
    k = max(2, factors.components_for_variance(0.80))
    tree = ward_clustering(factors.coordinates[:, :k], labels)
    assignment = cut_tree(tree, n_clusters)
    return labels, owners, assignment, suite_of, tree


def check_observations(
    cactus: SuiteResult, prt: SuiteResult
) -> ObservationReport:
    """Evaluate Observations 1-12 on the two suite runs."""
    elbow = RTX_3080.roofline_elbow
    observations: List[Observation] = []

    cactus_chars = cactus.suite("Cactus")
    prt_chars = [
        c
        for suite in ("Parboil", "Rodinia", "Tango")
        for c in prt.suite(suite)
    ]

    # --- Obs 1: real-life apps execute many more kernels -------------
    avg_cactus = sum(c.profile.num_kernels for c in cactus_chars) / len(
        cactus_chars
    )
    avg_prt = sum(c.profile.num_kernels for c in prt_chars) / len(prt_chars)
    observations.append(
        Observation(
            1,
            "Cactus workloads execute many more kernels than PRT",
            avg_cactus > 3 * avg_prt,
            f"avg kernels: Cactus {avg_cactus:.1f} vs PRT {avg_prt:.1f}",
        )
    )

    # --- Obs 2: totals rise to multiple tens --------------------------
    max_kernels = max(c.profile.num_kernels for c in cactus_chars)
    observations.append(
        Observation(
            2,
            "Total kernels rise to multiple tens for ML workloads",
            max_kernels >= 40,
            f"max distinct kernels in one workload: {max_kernels}",
        )
    )

    # --- Obs 3: input-dependent kernels -------------------------------
    lmr = {k.name for k in cactus["LMR"].profile.kernels}
    lmc = {k.name for k in cactus["LMC"].profile.kernels}
    gst = {k.name for k in cactus["GST"].profile.kernels}
    gru = {k.name for k in cactus["GRU"].profile.kernels}
    observations.append(
        Observation(
            3,
            "Different inputs trigger different kernels (LAMMPS, BFS)",
            bool(lmr ^ lmc) and bool(gst ^ gru),
            f"LAMMPS kernel-set difference: {len(lmr ^ lmc)}; "
            f"BFS: {len(gst ^ gru)}",
        )
    )

    # --- Obs 4: PRT unambiguous ----------------------------------------
    mixed_prt = [
        c.abbr
        for c in prt_chars
        if len({p.is_compute_intensive for p in c.kernel_points}) > 1
    ]
    observations.append(
        Observation(
            4,
            "PRT benchmarks are either memory- or compute-intensive, "
            "with at most two exceptions",
            len(mixed_prt) <= 2,
            f"mixed PRT workloads: {mixed_prt}",
        )
    )

    # --- Obs 5: Cactus primarily memory-intensive ----------------------
    memory_side = [c.abbr for c in cactus_chars if c.is_memory_intensive]
    observations.append(
        Observation(
            5,
            "Cactus applications are primarily memory-intensive",
            len(memory_side) >= 7 and "GMS" not in memory_side,
            f"memory-side: {memory_side} (GMS compute-side as in Fig. 5)",
        )
    )

    # --- Obs 6: mixed kernels inside Cactus apps ------------------------
    mixed_cactus = [
        c.abbr
        for c in cactus_chars
        if len({p.is_compute_intensive for p in c.kernel_points}) > 1
    ]
    observations.append(
        Observation(
            6,
            "Cactus workloads mix memory- and compute-intensive kernels",
            len(mixed_cactus) >= 8,
            f"mixed Cactus workloads: {mixed_cactus}",
        )
    )

    # --- Obs 7: ML diversity --------------------------------------------
    ml = [c for c in cactus_chars if c.abbr in ("DCG", "NST", "RFL", "SPT", "LGT")]
    ml_kernel_counts = {c.abbr: c.profile.num_kernels for c in ml}
    observations.append(
        Observation(
            7,
            "ML applications feature many kernels with wide diversity",
            all(n >= 35 for n in ml_kernel_counts.values()),
            f"ML kernel counts: {ml_kernel_counts}",
        )
    )

    # --- Obs 8: ML dominant kernels near the memory roof ----------------
    near_roof = 0
    for c in ml:
        for p in c.dominant_points:
            if not p.is_compute_intensive and p.distance_to_roof() > 0.6:
                near_roof += 1
    observations.append(
        Observation(
            8,
            "ML dominant kernels include memory-bandwidth-bound ones",
            near_roof >= 3,
            f"dominant ML kernels within 60% of the memory roof: {near_roof}",
        )
    )

    # --- Obs 9: richer correlations in Cactus ---------------------------
    cactus_matrix = correlation_matrix(cactus.profiles("Cactus"))
    prt_profiles = [c.profile for c in prt_chars]
    prt_matrix = correlation_matrix(prt_profiles)
    cactus_links = sum(
        len(cactus_matrix.correlated_columns(r)) for r in PRIMARY_METRICS
    )
    prt_links = sum(
        len(prt_matrix.correlated_columns(r)) for r in PRIMARY_METRICS
    )
    observations.append(
        Observation(
            9,
            "Cactus correlates with more metrics than PRT",
            cactus_links > prt_links,
            f"|PCC|>=0.2 cells: Cactus {cactus_links} vs PRT {prt_links}",
        )
    )

    # --- Obs 10-12: clustering ------------------------------------------
    labels, owners, assignment, suite_of, _ = cluster_dominant_kernels(
        cactus, prt
    )
    clusters_of: Dict[str, set] = {}
    for owner, cluster in zip(owners, assignment):
        clusters_of.setdefault(owner, set()).add(cluster)

    prt_abbrs = {c.abbr for c in prt_chars}
    prt_spread = max(
        (len(clusters_of[a]) for a in prt_abbrs if a in clusters_of),
        default=0,
    )
    observations.append(
        Observation(
            10,
            "PRT kernels stay within at most two clusters per benchmark",
            prt_spread <= 2,
            f"max clusters per PRT benchmark: {prt_spread}",
        )
    )

    cactus_spread = {
        a: len(clusters_of.get(a, set()))
        for a in ("GMS", "LMC", "NST", "RFL", "SPT", "LGT")
    }
    multi = sum(1 for v in cactus_spread.values() if v >= 2)
    wide = sum(1 for v in cactus_spread.values() if v >= 3)
    observations.append(
        Observation(
            11,
            "Kernels of the same Cactus application land in different "
            "clusters",
            multi >= 5 and wide >= 2,
            f"clusters per Cactus workload: {cactus_spread}",
        )
    )

    per_cluster = Counter()
    cactus_per_cluster = Counter()
    for owner, cluster in zip(owners, assignment):
        per_cluster[cluster] += 1
        if suite_of[owner] == "Cactus":
            cactus_per_cluster[cluster] += 1
    dominated = [
        cluster
        for cluster in per_cluster
        if cactus_per_cluster[cluster] / per_cluster[cluster] > 0.6
    ]
    cactus_presence = sum(1 for c in per_cluster if cactus_per_cluster[c] > 0)
    observations.append(
        Observation(
            12,
            "Cactus covers a larger part of the workload space",
            len(dominated) >= 2 and cactus_presence >= len(per_cluster) - 1,
            f"Cactus-dominated clusters: {sorted(dominated)}; Cactus "
            f"present in {cactus_presence}/{len(per_cluster)} clusters",
        )
    )

    return ObservationReport(observations=observations)
