"""Content-addressed result cache for the characterization engine.

Layout
------

A :class:`ResultCache` has two tiers:

* an **in-memory LRU** (bounded ``OrderedDict``) that serves repeated
  lookups within one process at dict speed, and
* an optional **persistent tier**: one JSON file per entry under
  ``<cache_dir>/v<CACHE_SCHEMA_VERSION>/<key[:2]>/<key>.json``.

Keys are hex SHA-256 digests produced by :mod:`repro.gpu.digest`; the
two-character fan-out directory keeps any single directory small even
with hundreds of thousands of entries.  Writes are atomic (temp file +
``os.replace``) so concurrent worker processes sharing one cache
directory can never observe a torn entry; a corrupt or unreadable file
is treated as a miss and rewritten.

Invalidation is by versioning, not deletion: the schema version is part
of both the key material and the directory path, so bumping
:data:`~repro.gpu.digest.CACHE_SCHEMA_VERSION` orphans every stale
entry at once (``prune`` removes orphaned version trees).

Corruption handling: an entry that exists but cannot be parsed
(truncated write from a killed process, at-rest bit rot) is counted in
``stats.corrupt``, *quarantined* into ``<cache_dir>/corrupt/`` for
post-mortem inspection, and reported as a miss — so the caller
recomputes and cleanly rewrites the entry instead of tripping over the
same broken file forever.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro.gpu.device import DeviceSpec
from repro.gpu.digest import (
    CACHE_SCHEMA_VERSION,
    launch_stream_digest,
    stable_digest,
)
from repro.gpu.kernel import KernelLaunch


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache (mergeable across workers)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    #: Similarity-proxy substitutions (see :mod:`repro.core.proxy`): a
    #: distinct tier — the exact-key lookup *missed*, but a
    #: near-duplicate's metrics were reused instead of simulating.
    proxy_hits: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def effective_hits(self) -> int:
        """Lookups that avoided a simulation: exact hits + proxy hits."""
        return self.hits + self.proxy_hits

    @property
    def effective_hit_rate(self) -> float:
        return self.effective_hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.memory_hits += other.memory_hits
        self.disk_hits += other.disk_hits
        self.misses += other.misses
        self.stores += other.stores
        self.corrupt += other.corrupt
        self.proxy_hits += other.proxy_hits

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "proxy_hits": self.proxy_hits,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CacheStats":
        """Inverse of :meth:`as_dict` (unknown keys are ignored).

        Used by the service layer to rehydrate persisted per-job cache
        accounting across restarts; tolerant of older payloads that
        predate a counter.
        """
        fields = (
            "memory_hits", "disk_hits", "misses",
            "stores", "corrupt", "proxy_hits",
        )
        return cls(**{
            name: int(payload.get(name, 0)) for name in fields
        })

    def render(self) -> str:
        text = (
            f"{self.hits}/{self.lookups} hits "
            f"({self.memory_hits} memory, {self.disk_hits} disk), "
            f"{self.stores} stores, hit rate {self.hit_rate:.0%}"
        )
        if self.proxy_hits:
            text += (
                f", {self.proxy_hits} proxy hits "
                f"(effective hit rate {self.effective_hit_rate:.0%})"
            )
        if self.corrupt:
            text += f", {self.corrupt} corrupt entr{'y' if self.corrupt == 1 else 'ies'} quarantined"
        return text


@dataclass
class ResultCache:
    """Two-tier (LRU memory + optional disk) content-addressed cache."""

    cache_dir: Optional[Path] = None
    max_memory_entries: int = 4096
    stats: CacheStats = field(default_factory=CacheStats)
    #: Optional run-scoped tracer (see :mod:`repro.obs`): every get/put
    #: also bumps ``cache.*`` run metrics and, when an event log is
    #: attached, emits a ``cache.get``/``cache.put`` event.  Pure
    #: observation — hit/miss behavior and payloads are untouched.
    tracer: Optional[Any] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # An empty string (e.g. REPRO_CACHE_DIR="") means "no disk tier",
        # not Path("") == the current directory.
        if self.cache_dir is not None and str(self.cache_dir) != "":
            self.cache_dir = Path(self.cache_dir)
        else:
            self.cache_dir = None
        if self.max_memory_entries < 0:
            raise ValueError("max_memory_entries must be non-negative")
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- paths ---------------------------------------------------------
    @property
    def version_dir(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"v{CACHE_SCHEMA_VERSION}"

    def _path(self, key: str) -> Optional[Path]:
        root = self.version_dir
        if root is None:
            return None
        return root / key[:2] / f"{key}.json"

    # -- observability -------------------------------------------------
    def _observe(self, op: str, key: str, outcome: str) -> None:
        """Mirror one cache operation into the run-scoped tracer."""
        tracer = self.tracer
        if tracer is None:
            return
        tracer.incr(f"cache.{outcome}")
        tracer.event(
            f"cache.{op}", category="cache", key=key[:16], outcome=outcome
        )

    # -- core API ------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Payload stored under *key*, or ``None`` on a miss."""
        payload = self._memory.get(key)
        if payload is not None:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            self._observe("get", key, "memory_hits")
            return payload
        path = self._path(key)
        if path is not None:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except FileNotFoundError:
                payload = None  # plain miss
            except OSError:
                payload = None  # unreadable (permissions, I/O) → miss
            except ValueError:
                # The file exists but does not parse (truncation, bit
                # rot): quarantine it so the recompute can cleanly
                # rewrite the entry.
                self._quarantine(path)
                payload = None
            if payload is not None and not isinstance(payload, dict):
                self._quarantine(path)  # parsed, but not an entry
                payload = None
            if payload is not None:
                self.stats.disk_hits += 1
                self._observe("get", key, "disk_hits")
                self._remember(key, payload)
                return payload
        self.stats.misses += 1
        self._observe("get", key, "misses")
        return None

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside into ``<cache_dir>/corrupt/``."""
        self.stats.corrupt += 1
        self._observe("quarantine", path.stem, "corrupt")
        quarantine_dir = self.cache_dir / "corrupt"
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine_dir / path.name)
        except OSError:
            # Quarantine is best-effort; at minimum drop the broken
            # file so the next put() can rewrite it.
            try:
                path.unlink()
            except OSError:
                pass

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store *payload* under *key* in both tiers."""
        self.stats.stores += 1
        self._observe("put", key, "stores")
        self._remember(key, payload)
        path = self._path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key,
        # but both write identical content and os.replace is atomic.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _remember(self, key: str, payload: Dict[str, Any]) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = payload
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- maintenance ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def persistent_entries(self) -> int:
        """Number of entries in the current persistent version tree."""
        root = self.version_dir
        if root is None or not root.is_dir():
            return 0
        return sum(1 for _ in root.glob("*/*.json"))

    def prune(self) -> int:
        """Drop persistent trees of older schema versions; count them."""
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return 0
        removed = 0
        keep = f"v{CACHE_SCHEMA_VERSION}"
        for child in self.cache_dir.iterdir():
            if child.is_dir() and child.name.startswith("v") and child.name != keep:
                shutil.rmtree(child, ignore_errors=True)
                removed += 1
        return removed

    def clear_memory(self) -> None:
        self._memory.clear()


def characterization_key(
    device: DeviceSpec,
    options: Any,
    workload_identity: Dict[str, Any],
    launches: Iterable[KernelLaunch],
) -> str:
    """Cache key for a whole-workload characterization result.

    Content-addressed on the (steady-state-cropped) launch stream: any
    change to the workload model that alters even one launch changes the
    key, so stale results can never be served.  The device and
    simulation options cover the simulator and roofline classification;
    *workload_identity* (name/abbr/suite/domain) covers the metadata
    columns carried into Table I.
    """
    return stable_digest(
        [
            "characterization",
            CACHE_SCHEMA_VERSION,
            device,
            options,
            workload_identity,
            launch_stream_digest(launches),
        ]
    )
