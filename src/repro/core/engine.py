"""Parallel, cache-backed, fault-tolerant suite-characterization engine.

:class:`CharacterizationEngine` is the production path for running the
paper's full top-down pipeline over whole suites.  It layers three
orthogonal capabilities over the naive serial loop:

* **Parallelism** — per-workload characterizations are independent, so
  the engine fans them out across a ``concurrent.futures`` process
  pool (``jobs`` workers).  Results are reassembled in registration
  order, so a parallel run is indistinguishable from a serial one.
* **Result reuse** — an optional :class:`~repro.core.cache.ResultCache`
  memoizes both per-kernel :class:`~repro.gpu.metrics.KernelMetrics`
  (inside the simulator) and whole
  :class:`~repro.core.characterize.Characterization` objects, keyed on
  content digests of ``(DeviceSpec, SimulationOptions, launch
  stream)``.  A warm run replays the suite from disk without touching
  the timing model.
* **Fault tolerance** — every worker exception is captured into a
  structured :class:`~repro.core.resilience.WorkloadFailure` instead of
  aborting the suite; a :class:`~repro.core.resilience.RetryPolicy`
  retries transient failures with deterministic backoff and enforces a
  per-workload wall-clock timeout (a hung worker is killed and the pool
  rebuilt); a broken pool rebuilds once and then degrades to the serial
  path with a recorded ``fallback_reason``; and an optional
  :class:`~repro.core.journal.RunJournal` checkpoints each completed
  workload so an interrupted run resumes where it left off — even with
  the cache disabled.

Failure disposition is the caller's choice: with ``keep_going=True``
the run returns a :class:`~repro.core.suite.SuiteRunReport` carrying
both survivors and failures; otherwise a terminal failure raises
:class:`~repro.core.resilience.SuiteRunError` (which still carries the
partial report — completed work is journaled, never discarded).

Correctness of the whole stack is enforced by the differential harness
(``tests/engine/test_differential.py``: serial == parallel == cold ==
warm, bit-for-bit), the golden suite (``tests/golden``), and the
fault-injection suite (``tests/robustness``) driven by
:class:`~repro.testing.faults.FaultPlan`.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.cache import CacheStats, ResultCache
from repro.core.characterize import (
    Characterization,
    characterize,
    characterize_devices,
)
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.core.journal import RunJournal, SweepJournal
from repro.core.proxy import ProxyBank, ProxyConfig, ProxyTier
from repro.core.streamcache import StreamCache
from repro.core.resilience import (
    RetryPolicy,
    SuiteRunError,
    WorkloadFailure,
)
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.digest import CACHE_SCHEMA_VERSION, stable_digest
from repro.gpu.simulator import GPUSimulator, SimulationOptions
from repro.obs import NULL_TRACER, ObsSession, TraceHandoff, Tracer, worker_tracer
from repro.profiler.profiler import Profiler
from repro.workloads.registry import get_workload, list_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.faults import FaultPlan

#: Environments where a process pool cannot even be created
#: (restricted sandboxes, missing ``os.fork`` / semaphores).
_POOL_UNAVAILABLE = (OSError, PermissionError, NotImplementedError)


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: None/0 → 1, negative → cpu count."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _proxy_tier_for_worker(
    proxy_tol: Optional[float],
    proxy_audit_fraction: float,
    tracer,
) -> Optional[ProxyTier]:
    """Worker-local similarity-proxy tier (corpus scoped to the worker)."""
    if proxy_tol is None:
        return None
    return ProxyTier(
        ProxyConfig(proxy_tol, audit_fraction=proxy_audit_fraction),
        tracer=tracer,
    )


def _characterize_one(
    abbr: str,
    scale: float,
    seed: int,
    device: DeviceSpec,
    options: SimulationOptions,
    cache_dir: Optional[str],
    attempt: int = 1,
    fault_plan: Optional["FaultPlan"] = None,
    handoff: Optional[TraceHandoff] = None,
    proxy_tol: Optional[float] = None,
    proxy_audit_fraction: float = 0.05,
) -> Tuple[str, Characterization, CacheStats, Optional[dict]]:
    """Worker body: characterize one workload from its identity.

    Module-level (picklable) so it can run inside a process pool; each
    worker opens its own handle on the shared cache directory — entry
    writes are atomic, so concurrent workers can share it safely.  The
    optional *fault_plan* hooks are strict no-ops when the plan is
    empty (the fault-free differential test pins this).

    *handoff* (see :mod:`repro.obs`) roots this attempt's spans under
    the parent's suite span and — when tracing is enabled — appends
    them to this worker's own ``events-<pid>.jsonl``.  The worker's
    metrics snapshot rides back on the result tuple; a failed attempt
    still flushes its error span before the exception crosses the pool
    boundary.
    """
    tracer = worker_tracer(handoff)
    cache = ResultCache(cache_dir=cache_dir) if cache_dir else None
    if cache is not None:
        cache.tracer = tracer
    try:
        with tracer.span(
            "attempt",
            category="workload",
            workload=abbr,
            attempt=attempt,
            mode="pool",
        ):
            if fault_plan is not None:
                fault_plan.before(abbr, attempt)
            profiler = Profiler(
                simulator=GPUSimulator(
                    device,
                    options=options,
                    cache=cache,
                    tracer=tracer,
                    proxy=_proxy_tier_for_worker(
                        proxy_tol, proxy_audit_fraction, tracer
                    ),
                )
            )
            workload = get_workload(abbr, scale=scale, seed=seed)
            result = characterize(
                workload,
                device=device,
                profiler=profiler,
                cache=cache,
                tracer=tracer,
            )
            if fault_plan is not None:
                result = fault_plan.after(abbr, attempt, result, cache)
    finally:
        if tracer.sink is not None:
            tracer.sink.close()
    snapshot = tracer.metrics.snapshot() if tracer.metrics else None
    stats = cache.stats if cache is not None else CacheStats()
    return abbr, result, stats, snapshot


def _sweep_one(
    abbr: str,
    scale: float,
    seed: int,
    devices: Tuple[DeviceSpec, ...],
    options: SimulationOptions,
    cache_dir: Optional[str],
    stream_cache_dir: Optional[str],
    attempt: int = 1,
    fault_plan: Optional["FaultPlan"] = None,
    handoff: Optional[TraceHandoff] = None,
    proxy_tol: Optional[float] = None,
    proxy_audit_fraction: float = 0.05,
) -> Tuple[str, Dict[str, Characterization], CacheStats, Optional[dict]]:
    """Pool worker for device sweeps: one workload, every device.

    The sweep fans out over *workloads* (not workload x device): each
    worker owns one workload end to end, generates (or loads) its
    stream exactly once, and runs the batched device-axis simulator for
    whatever the result cache does not already hold.  Same pool
    contract as :func:`_characterize_one` — picklable, atomic shared
    caches, spans rooted via *handoff*, metrics snapshot on the result
    tuple.
    """
    tracer = worker_tracer(handoff)
    cache = ResultCache(cache_dir=cache_dir) if cache_dir else None
    if cache is not None:
        cache.tracer = tracer
    stream_cache = (
        StreamCache(cache_dir=stream_cache_dir) if stream_cache_dir else None
    )
    if stream_cache is not None:
        stream_cache.tracer = tracer
    try:
        with tracer.span(
            "attempt",
            category="workload",
            workload=abbr,
            attempt=attempt,
            mode="pool-sweep",
            devices=len(devices),
        ):
            if fault_plan is not None:
                fault_plan.before(abbr, attempt)
            proxy_bank = None
            if proxy_tol is not None:
                proxy_bank = ProxyBank(
                    ProxyConfig(
                        proxy_tol, audit_fraction=proxy_audit_fraction
                    ),
                    tracer=tracer,
                )
            workload = get_workload(abbr, scale=scale, seed=seed)
            result = characterize_devices(
                workload,
                list(devices),
                options=options,
                cache=cache,
                stream_cache=stream_cache,
                tracer=tracer,
                proxy_bank=proxy_bank,
            )
    finally:
        if tracer.sink is not None:
            tracer.sink.close()
    snapshot = tracer.metrics.snapshot() if tracer.metrics else None
    stats = cache.stats if cache is not None else CacheStats()
    return abbr, result, stats, snapshot


@dataclass
class _ExecutionOutcome:
    """Mutable scratchpad for one execution strategy's results."""

    results: Dict[str, Characterization] = field(default_factory=dict)
    failures: List[WorkloadFailure] = field(default_factory=list)
    attempts: Dict[str, int] = field(default_factory=dict)
    fallback_reason: Optional[str] = None

    @property
    def resolved(self) -> set:
        return set(self.results) | {f.abbr for f in self.failures}


@dataclass
class CharacterizationEngine:
    """Runs per-workload characterizations, possibly in parallel.

    Parameters
    ----------
    device, options:
        The simulated platform and simulator switches, shared by every
        workload of a run (both are part of every cache key).
    jobs:
        Worker processes for suite runs.  ``None``/``0``/``1`` → serial;
        negative → one worker per CPU.
    cache:
        Optional result cache.  Pass ``ResultCache()`` for an in-memory
        LRU or ``ResultCache(cache_dir=...)`` for cross-run persistence.
    retry_policy:
        Retry/timeout/backoff policy for suite runs (see
        :class:`~repro.core.resilience.RetryPolicy`).
    keep_going:
        ``True`` → failed workloads are collected into the run report
        and the suite completes over the survivors.  ``False``
        (default) → any terminal failure raises
        :class:`~repro.core.resilience.SuiteRunError` carrying the
        partial report.
    journal_dir:
        Optional checkpoint directory; an interrupted run with the
        same identity resumes there and skips completed workloads.
    fault_plan:
        Deterministic fault-injection plan (testing only); ``None`` and
        an empty plan are strict no-ops.
    trace_dir:
        Optional observability directory (see :mod:`repro.obs`): suite
        runs append a JSONL event log there and export a Chrome/
        Perfetto trace on completion.  Run metrics (``run_profile`` on
        the report) are collected either way; with ``trace_dir=None``
        no file is ever touched.
    """

    device: DeviceSpec = RTX_3080
    options: SimulationOptions = field(default_factory=SimulationOptions)
    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    keep_going: bool = False
    journal_dir: Optional[str] = None
    fault_plan: Optional["FaultPlan"] = None
    trace_dir: Optional[str] = None
    #: Opt-in similarity-proxy tolerance (see :mod:`repro.core.proxy`).
    #: ``None`` (default) keeps the engine bit-exact: no proxy tier is
    #: constructed anywhere.  Deliberately *not* part of
    #: ``SimulationOptions`` — it must not perturb cache keys.
    proxy_tol: Optional[float] = None
    #: Fraction of would-be proxy hits that are simulated anyway to
    #: record per-metric substitution error (report error bounds).
    proxy_audit_fraction: float = 0.05
    #: Optional device-independent launch-stream cache (see
    #: :mod:`repro.core.streamcache`).  When absent but ``cache`` has a
    #: disk tier, sweeps derive one under ``<cache_dir>/streams``.
    stream_cache: Optional[StreamCache] = None
    #: Per-run stream memo: ``id(workload) -> (workload, stream)``.  The
    #: strong workload reference pins the id against reuse; entries live
    #: for the engine's lifetime, so characterizing the same workload
    #: object twice (e.g. on two devices) generates its stream once.
    _stream_memo: Dict[int, tuple] = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- similarity proxy ----------------------------------------------
    def _new_proxy_bank(self, tracer=None) -> Optional[ProxyBank]:
        """A fresh per-device proxy bank, or None when the tier is off."""
        if self.proxy_tol is None:
            return None
        return ProxyBank(
            ProxyConfig(
                self.proxy_tol, audit_fraction=self.proxy_audit_fraction
            ),
            tracer=tracer,
        )

    def _engine_proxy_bank(self) -> Optional[ProxyBank]:
        """Engine-lifetime bank for the in-process characterize() path."""
        if self.proxy_tol is None:
            return None
        bank = getattr(self, "_proxy_bank", None)
        if bank is None:
            bank = self._new_proxy_bank()
            self._proxy_bank = bank
        return bank

    @property
    def _run_proxy(self) -> Optional[ProxyBank]:
        """The live run's proxy bank (None outside a run or when off)."""
        return getattr(self, "_run_proxy_bank", None)

    # -- single workload ----------------------------------------------
    def memoized_stream(self, workload, profiler: Profiler):
        """*workload*'s prepared stream, generated at most once per run."""
        entry = self._stream_memo.get(id(workload))
        if entry is not None and entry[0] is workload:
            return entry[1]
        stream = profiler.prepare_stream(workload)
        self._stream_memo[id(workload)] = (workload, stream)
        return stream

    def characterize(self, workload) -> Characterization:
        """Characterize one instantiated workload (serial, cached).

        Streams are memoized on the engine: calling this twice with the
        same workload object — including with a different ``device`` set
        between calls — pays stream generation once.
        """
        bank = self._engine_proxy_bank()
        profiler = Profiler(
            simulator=GPUSimulator(
                self.device,
                options=self.options,
                cache=self.cache,
                proxy=bank.tier(self.device) if bank is not None else None,
            )
        )
        stream = self.memoized_stream(workload, profiler)
        return characterize(
            workload,
            device=self.device,
            profiler=profiler,
            cache=self.cache,
            stream=stream,
        )

    # -- whole suites --------------------------------------------------
    def select(
        self,
        suites: Sequence[str],
        workloads: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Workload abbreviations of *suites*, in registration order."""
        selected: List[str] = []
        for suite in suites:
            selected.extend(list_workloads(suite))
        if workloads is not None:
            wanted = {w.upper() for w in workloads}
            selected = [abbr for abbr in selected if abbr in wanted]
        if not selected:
            raise ValueError(f"no workloads selected from suites {suites!r}")
        return selected

    def run_key(self, preset: ScalePreset, selected: Sequence[str]) -> str:
        """Content digest identifying one run for journal resumption."""
        return stable_digest(
            [
                "suite-run",
                CACHE_SCHEMA_VERSION,
                self.device,
                self.options,
                preset,
                list(selected),
            ]
        )

    def run_suite(
        self,
        suites: Sequence[str] = ("Cactus",),
        preset: ScalePreset = LAPTOP_SCALE,
        workloads: Optional[Sequence[str]] = None,
    ):
        """Characterize every workload of *suites* into a SuiteRunReport.

        Results are keyed and ordered deterministically by the suite
        registration order regardless of worker completion order;
        failed workloads are simply absent from ``results`` and listed
        (also in registration order) in ``failures``.
        """
        from repro.core.suite import SuiteRunReport

        selected = self.select(suites, workloads)
        jobs = _resolve_jobs(self.jobs)
        report = SuiteRunReport(device=self.device, preset=preset)

        session = ObsSession(self.trace_dir)
        self._session = session
        self._run_proxy_bank = self._new_proxy_bank(session.tracer)
        restore_cache_tracer = False
        if self.cache is not None and self.cache.tracer is None:
            # Serial-path and in-process cache traffic count toward this
            # run's metrics; detached again before returning.
            self.cache.tracer = session.tracer
            restore_cache_tracer = True
        try:
            with session.tracer.span(
                "suite-run",
                category="suite",
                suites=list(suites),
                preset=preset.name,
                jobs=jobs,
                selected=len(selected),
            ):
                journal: Optional[RunJournal] = None
                completed: Dict[str, Characterization] = {}
                if self.journal_dir is not None:
                    journal = RunJournal(
                        self.journal_dir,
                        self.run_key(preset, selected),
                        tracer=session.tracer,
                    )
                    completed = journal.begin(selected)
                    report.resumed = [a for a in selected if a in completed]

                # One engine execution == one tick of this counter.  The
                # service layer's request coalescing is proven against it:
                # N coalesced submissions must leave engine.runs == 1 in
                # the job's run profile.
                session.tracer.incr("engine.runs")
                remaining = [a for a in selected if a not in completed]
                outcome = _ExecutionOutcome(results=dict(completed))
                if remaining:
                    if jobs > 1:
                        self._run_parallel(
                            remaining, preset, jobs, journal, outcome
                        )
                        remaining = [
                            a for a in remaining if a not in outcome.resolved
                        ]
                    if remaining:  # serial path, or parallel degraded mid-run
                        self._run_serial(remaining, preset, journal, outcome)

                for abbr in selected:
                    if abbr in outcome.results:
                        report.results[abbr] = outcome.results[abbr]
                order = {abbr: idx for idx, abbr in enumerate(selected)}
                report.failures = sorted(
                    outcome.failures,
                    key=lambda f: order.get(f.abbr, len(order)),
                )
                report.attempts = dict(outcome.attempts)
                report.fallback_reason = outcome.fallback_reason
                session.tracer.incr(
                    "engine.workloads_completed",
                    float(len(outcome.results) - len(completed)),
                )
                session.tracer.incr(
                    "engine.workloads_failed", float(len(report.failures))
                )
                if journal is not None:
                    journal.finish(ok=not report.failures)
        finally:
            if restore_cache_tracer and self.cache is not None:
                self.cache.tracer = None
            # The profile and trace ride on the report even when the
            # run failed (strict mode re-raises below with the report
            # attached) — a failed run is exactly when you want them.
            report.run_profile = session.run_profile()
            session.finalize()
            if session.tracing and session.trace_dir is not None:
                report.trace_dir = str(session.trace_dir)
            self._session = None
            self._run_proxy_bank = None

        if report.failures and not self.keep_going:
            raise SuiteRunError(report, report.failures)
        return report

    # -- device sweeps -------------------------------------------------
    def sweep_run_key(
        self,
        preset: ScalePreset,
        selected: Sequence[str],
        devices: Sequence[DeviceSpec],
    ) -> str:
        """Content digest identifying one sweep run (journal identity)."""
        return stable_digest(
            [
                "sweep-run",
                CACHE_SCHEMA_VERSION,
                list(devices),
                self.options,
                preset,
                list(selected),
            ]
        )

    def _sweep_stream_cache(self) -> Optional[StreamCache]:
        """The sweep's stream cache (explicit, derived, or None)."""
        if self.stream_cache is not None:
            return self.stream_cache
        if self.cache is not None and self.cache.cache_dir is not None:
            return StreamCache(
                cache_dir=os.path.join(str(self.cache.cache_dir), "streams")
            )
        return None

    def _stream_cache_dir_arg(self) -> Optional[str]:
        stream_cache = self._sweep_stream_cache()
        if (
            stream_cache is not None
            and stream_cache.backend.cache_dir is not None
        ):
            return str(stream_cache.backend.cache_dir)
        return None

    def run_sweep(
        self,
        devices: Sequence[DeviceSpec],
        suites: Sequence[str] = ("Cactus",),
        preset: ScalePreset = LAPTOP_SCALE,
        workloads: Optional[Sequence[str]] = None,
    ):
        """Characterize every workload of *suites* across N devices.

        The sweep fans out over **workloads** — one pool task per
        workload, each owning the full device axis — because stream
        generation is the expensive, device-independent part: every
        stream is generated exactly once per run (and cached
        device-free in the stream cache for the next run), while the
        device axis is evaluated in one batched broadcast pass per
        workload (:func:`repro.gpu.batched.simulate_devices`).

        Shares the engine's retry/timeout/pool-rebuild machinery,
        journal/resume (a :class:`~repro.core.journal.SweepJournal`
        keyed on the device list), obs spans, and the scalar-compatible
        result cache — a prior ``run_suite`` on any zoo device warm-
        starts the sweep and vice versa.  Returns a
        :class:`~repro.core.sweep.SweepRunReport`; in strict mode
        (``keep_going=False``) terminal failures raise
        :class:`~repro.core.resilience.SuiteRunError` carrying it.
        """
        from repro.core.sweep import SweepRunReport

        devices = list(devices)
        if not devices:
            raise ValueError("run_sweep needs at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names in sweep: {names}")

        selected = self.select(suites, workloads)
        jobs = _resolve_jobs(self.jobs)
        report = SweepRunReport(devices=devices, preset=preset)

        session = ObsSession(self.trace_dir)
        self._session = session
        self._run_proxy_bank = self._new_proxy_bank(session.tracer)
        restore_cache_tracer = False
        if self.cache is not None and self.cache.tracer is None:
            self.cache.tracer = session.tracer
            restore_cache_tracer = True
        stream_cache = self._sweep_stream_cache()
        if stream_cache is not None and stream_cache.tracer is None:
            stream_cache.tracer = session.tracer
        try:
            with session.tracer.span(
                "sweep-run",
                category="suite",
                suites=list(suites),
                preset=preset.name,
                jobs=jobs,
                selected=len(selected),
                devices=names,
            ):
                session.tracer.incr("engine.runs")
                journal: Optional[SweepJournal] = None
                completed: Dict[str, Dict[str, Characterization]] = {}
                if self.journal_dir is not None:
                    journal = SweepJournal(
                        self.journal_dir,
                        self.sweep_run_key(preset, selected, devices),
                        tracer=session.tracer,
                    )
                    completed = journal.begin(selected)
                    report.resumed = [a for a in selected if a in completed]

                remaining = [a for a in selected if a not in completed]
                outcome = _ExecutionOutcome(results=dict(completed))
                if remaining:
                    if jobs > 1:
                        cache_dir = self._cache_dir_arg()
                        stream_cache_dir = self._stream_cache_dir_arg()
                        device_tuple = tuple(devices)

                        def submit_sweep(pool, abbr, attempt, handoff):
                            return pool.submit(
                                _sweep_one,
                                abbr,
                                preset.for_workload(abbr),
                                preset.seed,
                                device_tuple,
                                self.options,
                                cache_dir,
                                stream_cache_dir,
                                attempt,
                                self.fault_plan,
                                handoff,
                                self.proxy_tol,
                                self.proxy_audit_fraction,
                            )

                        self._run_parallel(
                            remaining, preset, jobs, journal, outcome,
                            submit_task=submit_sweep,
                        )
                        remaining = [
                            a for a in remaining if a not in outcome.resolved
                        ]
                    if remaining:  # serial path, or parallel degraded
                        tracer = session.tracer

                        def run_one_sweep(abbr: str, attempt: int):
                            if self.fault_plan is not None:
                                self.fault_plan.before(abbr, attempt)
                            workload = get_workload(
                                abbr,
                                scale=preset.for_workload(abbr),
                                seed=preset.seed,
                            )
                            return characterize_devices(
                                workload,
                                devices,
                                options=self.options,
                                cache=self.cache,
                                stream_cache=stream_cache,
                                tracer=tracer,
                                proxy_bank=self._run_proxy,
                            )

                        self._run_serial(
                            remaining, preset, journal, outcome,
                            run_one=run_one_sweep, mode="serial-sweep",
                        )

                for abbr in selected:
                    if abbr in outcome.results:
                        report.results[abbr] = outcome.results[abbr]
                order = {abbr: idx for idx, abbr in enumerate(selected)}
                report.failures = sorted(
                    outcome.failures,
                    key=lambda f: order.get(f.abbr, len(order)),
                )
                report.attempts = dict(outcome.attempts)
                report.fallback_reason = outcome.fallback_reason
                session.tracer.incr(
                    "engine.workloads_completed",
                    float(len(outcome.results) - len(completed)),
                )
                session.tracer.incr(
                    "engine.workloads_failed", float(len(report.failures))
                )
                session.tracer.incr(
                    "engine.sweep_devices", float(len(devices))
                )
                if journal is not None:
                    journal.finish(ok=not report.failures)
        finally:
            if restore_cache_tracer and self.cache is not None:
                self.cache.tracer = None
            if stream_cache is not None and stream_cache.tracer is session.tracer:
                stream_cache.tracer = None
            report.run_profile = session.run_profile()
            session.finalize()
            if session.tracing and session.trace_dir is not None:
                report.trace_dir = str(session.trace_dir)
            self._session = None
            self._run_proxy_bank = None

        if report.failures and not self.keep_going:
            raise SuiteRunError(report, report.failures)
        return report

    # -- observability access ------------------------------------------
    @property
    def _obs(self) -> Optional[ObsSession]:
        """The live run's observability session (None outside a run)."""
        return getattr(self, "_session", None)

    @property
    def _tracer(self) -> Tracer:
        session = self._obs
        return session.tracer if session is not None else NULL_TRACER

    # -- execution strategies ------------------------------------------
    def _record_success(
        self,
        outcome: _ExecutionOutcome,
        journal: Optional[RunJournal],
        abbr: str,
        result: Characterization,
        stats: Optional[CacheStats],
        attempts: int,
        snapshot: Optional[dict] = None,
    ) -> None:
        outcome.results[abbr] = result
        outcome.attempts[abbr] = attempts
        if stats is not None and self.cache is not None:
            self.cache.stats.merge(stats)
        if snapshot is not None and self._obs is not None:
            self._obs.absorb(snapshot)
        if journal is not None:
            journal.mark_done(abbr, result, attempts=attempts)

    def _run_serial(
        self,
        selected: Sequence[str],
        preset: ScalePreset,
        journal: Optional[RunJournal],
        outcome: _ExecutionOutcome,
        run_one=None,
        mode: str = "serial",
    ) -> None:
        """In-process loop with retry + failure isolation.

        The attempt body is pluggable: *run_one(abbr, attempt)* produces
        the result recorded for one workload (the default characterizes
        it on ``self.device``, sharing one profiler — and its kernel
        memo — across workloads; the sweep path characterizes it across
        a device list).  Per-workload timeouts cannot be enforced here —
        a running characterization cannot be preempted in-process — so
        ``retry_policy.timeout_s`` only applies on the pool path.
        """
        policy = self.retry_policy
        tracer = self._tracer
        if run_one is None:
            bank = self._run_proxy
            profiler = Profiler(
                simulator=GPUSimulator(
                    self.device,
                    options=self.options,
                    cache=self.cache,
                    tracer=tracer,
                    proxy=(
                        bank.tier(self.device) if bank is not None else None
                    ),
                )
            )

            def run_one(abbr: str, attempt: int):
                if self.fault_plan is not None:
                    self.fault_plan.before(abbr, attempt)
                workload = get_workload(
                    abbr,
                    scale=preset.for_workload(abbr),
                    seed=preset.seed,
                )
                result = characterize(
                    workload,
                    device=self.device,
                    profiler=profiler,
                    cache=self.cache,
                    tracer=tracer,
                )
                if self.fault_plan is not None:
                    result = self.fault_plan.after(
                        abbr, attempt, result, self.cache
                    )
                return result

        for abbr in selected:
            attempt = 0
            started = time.monotonic()
            while True:
                attempt += 1
                try:
                    with tracer.span(
                        "attempt",
                        category="workload",
                        workload=abbr,
                        attempt=attempt,
                        mode=mode,
                    ):
                        result = run_one(abbr, attempt)
                except Exception as exc:
                    if policy.should_retry(exc, attempt):
                        delay = policy.backoff_s(abbr, attempt)
                        tracer.event(
                            "retry",
                            category="resilience",
                            workload=abbr,
                            attempt=attempt,
                            sleep_s=delay,
                            error=type(exc).__name__,
                        )
                        tracer.incr("engine.retries")
                        time.sleep(delay)
                        continue
                    outcome.failures.append(
                        WorkloadFailure.from_exception(
                            abbr,
                            exc,
                            phase="characterize",
                            attempts=attempt,
                            elapsed_s=time.monotonic() - started,
                        )
                    )
                    outcome.attempts[abbr] = attempt
                    break
                else:
                    self._record_success(
                        outcome, journal, abbr, result, None, attempt
                    )
                    break

    def _cache_dir_arg(self) -> Optional[str]:
        if self.cache is not None and self.cache.cache_dir is not None:
            return str(self.cache.cache_dir)
        return None

    def _new_pool(self, jobs: int, tasks: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=min(jobs, tasks))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcefully tear down a pool (hung or broken workers)."""
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _run_parallel(
        self,
        selected: Sequence[str],
        preset: ScalePreset,
        jobs: int,
        journal: Optional[RunJournal],
        outcome: _ExecutionOutcome,
        submit_task=None,
    ) -> None:
        """Fan out across a process pool with retry/timeout/rebuild.

        The submitted task is pluggable: *submit_task(pool, abbr,
        attempt, handoff)* returns the wave's future for one workload
        (default: :func:`_characterize_one` on ``self.device``; the
        sweep path submits :func:`_sweep_one` over a device list).
        Every worker must return the ``(abbr, result, stats, snapshot)``
        tuple this loop harvests.

        Work proceeds in waves: every unresolved workload is submitted,
        then awaited in registration order under the per-workload
        timeout.  A timed-out worker is killed (the pool is rebuilt —
        a deliberate kill, not counted against the broken-pool budget);
        a spontaneously broken pool rebuilds once and then the engine
        degrades to the serial path for whatever is left, recording
        ``fallback_reason``.  Attempt counts advance only for the
        workload whose own outcome was observed — innocent bystanders
        of a pool kill are resubmitted under the same attempt number.
        """
        policy = self.retry_policy
        tracer = self._tracer
        session = self._obs
        cache_dir = self._cache_dir_arg()
        if submit_task is None:

            def submit_task(pool, abbr: str, attempt: int, handoff):
                return pool.submit(
                    _characterize_one,
                    abbr,
                    preset.for_workload(abbr),
                    preset.seed,
                    self.device,
                    self.options,
                    cache_dir,
                    attempt,
                    self.fault_plan,
                    handoff,
                    self.proxy_tol,
                    self.proxy_audit_fraction,
                )

        try:
            pool = self._new_pool(jobs, len(selected))
        except _POOL_UNAVAILABLE as exc:
            outcome.fallback_reason = (
                f"process pool unavailable: {type(exc).__name__}: {exc}"
            )
            tracer.event(
                "pool.fallback-serial",
                category="resilience",
                reason=outcome.fallback_reason,
            )
            tracer.incr("engine.pool_fallbacks")
            warnings.warn(
                f"{outcome.fallback_reason}; falling back to serial "
                f"execution",
                RuntimeWarning,
                stacklevel=2,
            )
            return

        attempts: Dict[str, int] = {abbr: 0 for abbr in selected}
        started: Dict[str, float] = {}
        pending = [a for a in selected if a not in outcome.resolved]
        rebuilds_left = 1

        def elapsed(abbr: str) -> float:
            return time.monotonic() - started.get(abbr, time.monotonic())

        def submit(abbr: str):
            if attempts[abbr] and policy.backoff_base_s:
                delay = policy.backoff_s(abbr, attempts[abbr])
                tracer.event(
                    "retry",
                    category="resilience",
                    workload=abbr,
                    attempt=attempts[abbr] + 1,
                    sleep_s=delay,
                    mode="pool",
                )
                tracer.incr("engine.retries")
                time.sleep(delay)
            started.setdefault(abbr, time.monotonic())
            return submit_task(
                pool,
                abbr,
                attempts[abbr] + 1,
                session.handoff() if session is not None else None,
            )

        def harvest(futures: Dict[str, Future], skip: str) -> None:
            """Bank finished bystander results after a pool disruption."""
            for other, fut in futures.items():
                if other == skip or other not in pending or not fut.done():
                    continue
                try:
                    _, result, stats, snapshot = fut.result(timeout=0)
                except Exception:
                    continue  # its failure will be re-observed on resubmit
                self._record_success(
                    outcome, journal, other, result, stats,
                    attempts[other] + 1, snapshot,
                )
                pending.remove(other)

        def rebuild(reason: str) -> bool:
            """Replace the pool; False → caller must degrade to serial."""
            nonlocal pool
            self._kill_pool(pool)
            tracer.event(
                "pool.rebuild", category="resilience", reason=reason
            )
            tracer.incr("engine.pool_rebuilds")
            try:
                pool = self._new_pool(jobs, max(len(pending), 1))
            except _POOL_UNAVAILABLE as exc:
                outcome.fallback_reason = (
                    f"pool rebuild failed after {reason}: "
                    f"{type(exc).__name__}: {exc}"
                )
                tracer.event(
                    "pool.fallback-serial",
                    category="resilience",
                    reason=outcome.fallback_reason,
                )
                tracer.incr("engine.pool_fallbacks")
                warnings.warn(
                    f"{outcome.fallback_reason}; degrading to serial "
                    f"execution",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return False
            return True

        def settle(abbr: str, exc: BaseException, phase: str) -> None:
            """A genuine attempt by *abbr* failed: retry or record."""
            attempts[abbr] += 1
            if policy.should_retry(exc, attempts[abbr]):
                return  # stays pending; resubmitted next wave
            outcome.failures.append(
                WorkloadFailure.from_exception(
                    abbr,
                    exc,
                    phase=phase,
                    attempts=attempts[abbr],
                    elapsed_s=elapsed(abbr),
                )
            )
            outcome.attempts[abbr] = attempts[abbr]
            pending.remove(abbr)

        try:
            while pending:
                futures: Dict[str, Future] = {}
                disrupted = False
                try:
                    for abbr in pending:
                        futures[abbr] = submit(abbr)
                except (RuntimeError, OSError) as exc:
                    # Covers BrokenExecutor and every _POOL_UNAVAILABLE
                    # member (both are RuntimeError/OSError subclasses).
                    # Pool died before the wave was even fully submitted.
                    if rebuilds_left > 0:
                        rebuilds_left -= 1
                        if rebuild(f"submit-time {type(exc).__name__}"):
                            continue
                    else:
                        outcome.fallback_reason = (
                            f"process pool broke twice: "
                            f"{type(exc).__name__}: {exc}"
                        )
                        tracer.event(
                            "pool.fallback-serial",
                            category="resilience",
                            reason=outcome.fallback_reason,
                        )
                        tracer.incr("engine.pool_fallbacks")
                        warnings.warn(
                            f"{outcome.fallback_reason}; degrading to "
                            f"serial execution",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        self._kill_pool(pool)
                    return
                for abbr in list(futures):
                    if abbr not in pending:
                        continue
                    fut = futures[abbr]
                    try:
                        _, result, stats, snapshot = fut.result(
                            timeout=policy.timeout_s
                        )
                    except FuturesTimeout:
                        # Hung worker: kill the pool, bank bystanders,
                        # rebuild (deliberate — not budget-counted).
                        timeout_exc = TimeoutError(
                            f"workload {abbr} exceeded the per-workload "
                            f"timeout of {policy.timeout_s}s"
                        )
                        tracer.event(
                            "timeout.kill",
                            category="resilience",
                            workload=abbr,
                            attempt=attempts[abbr] + 1,
                            timeout_s=policy.timeout_s,
                        )
                        tracer.incr("engine.timeouts")
                        harvest(futures, skip=abbr)
                        settle(abbr, timeout_exc, phase="timeout")
                        disrupted = True
                        if not rebuild("timeout kill"):
                            return
                        break
                    except BrokenExecutor as exc:
                        # A worker died hard.  Every outstanding future
                        # raises the same BrokenProcessPool, so the
                        # culprit cannot be attributed from here — no
                        # workload is charged an attempt.  Bank finished
                        # bystanders, then rebuild once; on a second
                        # break, degrade to the serial path, which
                        # isolates the real culprit exactly.
                        harvest(futures, skip="")
                        disrupted = True
                        if rebuilds_left > 0:
                            rebuilds_left -= 1
                            if rebuild(type(exc).__name__):
                                break
                        outcome.fallback_reason = (
                            f"process pool broke twice: "
                            f"{type(exc).__name__}: {exc}"
                        )
                        tracer.event(
                            "pool.fallback-serial",
                            category="resilience",
                            reason=outcome.fallback_reason,
                        )
                        tracer.incr("engine.pool_fallbacks")
                        warnings.warn(
                            f"{outcome.fallback_reason}; degrading to "
                            f"serial execution",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        self._kill_pool(pool)
                        return
                    except Exception as exc:
                        # Raised inside the worker and pickled back:
                        # the pool itself is healthy.
                        settle(abbr, exc, phase="characterize")
                    else:
                        attempts[abbr] += 1
                        self._record_success(
                            outcome, journal, abbr, result, stats,
                            attempts[abbr], snapshot,
                        )
                        pending.remove(abbr)
                if disrupted:
                    continue
        finally:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    # -- reporting ------------------------------------------------------
    @property
    def cache_stats(self) -> Optional[CacheStats]:
        return self.cache.stats if self.cache is not None else None
