"""Parallel, cache-backed suite-characterization engine.

:class:`CharacterizationEngine` is the production path for running the
paper's full top-down pipeline over whole suites.  It improves on the
naive serial loop in two orthogonal ways:

* **Parallelism** — per-workload characterizations are independent, so
  the engine fans them out across a ``concurrent.futures`` process
  pool (``jobs`` workers).  Results are reassembled in registration
  order, so a parallel run is indistinguishable from a serial one; if a
  pool cannot be created (restricted sandboxes, missing ``os.fork``)
  the engine silently falls back to the serial path.
* **Result reuse** — an optional :class:`~repro.core.cache.ResultCache`
  memoizes both per-kernel :class:`~repro.gpu.metrics.KernelMetrics`
  (inside the simulator) and whole
  :class:`~repro.core.characterize.Characterization` objects, keyed on
  content digests of ``(DeviceSpec, SimulationOptions, launch
  stream)``.  A warm run replays the suite from disk without touching
  the timing model.

Correctness of this combination is enforced by the differential test
harness (``tests/engine/test_differential.py``): serial, parallel,
cold-cache and warm-cache runs must produce *equal* results, and the
golden suite (``tests/golden``) pins the science against drift.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import CacheStats, ResultCache
from repro.core.characterize import Characterization, characterize
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.simulator import GPUSimulator, SimulationOptions
from repro.profiler.profiler import Profiler
from repro.workloads.registry import get_workload, list_workloads


def _resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: None/0 → 1, negative → cpu count."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def _characterize_one(
    abbr: str,
    scale: float,
    seed: int,
    device: DeviceSpec,
    options: SimulationOptions,
    cache_dir: Optional[str],
) -> Tuple[str, Characterization, CacheStats]:
    """Worker body: characterize one workload from its identity.

    Module-level (picklable) so it can run inside a process pool; each
    worker opens its own handle on the shared cache directory — entry
    writes are atomic, so concurrent workers can share it safely.
    """
    cache = ResultCache(cache_dir=cache_dir) if cache_dir else None
    profiler = Profiler(
        simulator=GPUSimulator(device, options=options, cache=cache)
    )
    workload = get_workload(abbr, scale=scale, seed=seed)
    result = characterize(
        workload, device=device, profiler=profiler, cache=cache
    )
    stats = cache.stats if cache is not None else CacheStats()
    return abbr, result, stats


@dataclass
class CharacterizationEngine:
    """Runs per-workload characterizations, possibly in parallel.

    Parameters
    ----------
    device, options:
        The simulated platform and simulator switches, shared by every
        workload of a run (both are part of every cache key).
    jobs:
        Worker processes for suite runs.  ``None``/``0``/``1`` → serial;
        negative → one worker per CPU.
    cache:
        Optional result cache.  Pass ``ResultCache()`` for an in-memory
        LRU or ``ResultCache(cache_dir=...)`` for cross-run persistence.
    """

    device: DeviceSpec = RTX_3080
    options: SimulationOptions = field(default_factory=SimulationOptions)
    jobs: Optional[int] = None
    cache: Optional[ResultCache] = None

    # -- single workload ----------------------------------------------
    def characterize(self, workload) -> Characterization:
        """Characterize one instantiated workload (serial, cached)."""
        profiler = Profiler(
            simulator=GPUSimulator(
                self.device, options=self.options, cache=self.cache
            )
        )
        return characterize(
            workload, device=self.device, profiler=profiler, cache=self.cache
        )

    # -- whole suites --------------------------------------------------
    def select(
        self,
        suites: Sequence[str],
        workloads: Optional[Sequence[str]] = None,
    ) -> List[str]:
        """Workload abbreviations of *suites*, in registration order."""
        selected: List[str] = []
        for suite in suites:
            selected.extend(list_workloads(suite))
        if workloads is not None:
            wanted = {w.upper() for w in workloads}
            selected = [abbr for abbr in selected if abbr in wanted]
        if not selected:
            raise ValueError(f"no workloads selected from suites {suites!r}")
        return selected

    def run_suite(
        self,
        suites: Sequence[str] = ("Cactus",),
        preset: ScalePreset = LAPTOP_SCALE,
        workloads: Optional[Sequence[str]] = None,
    ):
        """Characterize every workload of *suites* into a SuiteResult.

        Results are keyed and ordered deterministically by the suite
        registration order regardless of worker completion order.
        """
        from repro.core.suite import SuiteResult

        selected = self.select(suites, workloads)
        jobs = _resolve_jobs(self.jobs)
        result = SuiteResult(device=self.device, preset=preset)

        characterized: Dict[str, Characterization] = {}
        if jobs > 1:
            characterized = self._run_parallel(selected, preset, jobs)
        if not characterized:  # serial path or parallel fallback
            characterized = self._run_serial(selected, preset)
        for abbr in selected:
            result.results[abbr] = characterized[abbr]
        return result

    # -- execution strategies ------------------------------------------
    def _run_serial(
        self, selected: Sequence[str], preset: ScalePreset
    ) -> Dict[str, Characterization]:
        profiler = Profiler(
            simulator=GPUSimulator(
                self.device, options=self.options, cache=self.cache
            )
        )
        out: Dict[str, Characterization] = {}
        for abbr in selected:
            workload = get_workload(
                abbr, scale=preset.for_workload(abbr), seed=preset.seed
            )
            out[abbr] = characterize(
                workload,
                device=self.device,
                profiler=profiler,
                cache=self.cache,
            )
        return out

    def _run_parallel(
        self, selected: Sequence[str], preset: ScalePreset, jobs: int
    ) -> Dict[str, Characterization]:
        """Fan out across a process pool; {} signals fallback to serial."""
        cache_dir = (
            str(self.cache.cache_dir)
            if self.cache is not None and self.cache.cache_dir is not None
            else None
        )
        out: Dict[str, Characterization] = {}
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(selected))) as pool:
                futures = [
                    pool.submit(
                        _characterize_one,
                        abbr,
                        preset.for_workload(abbr),
                        preset.seed,
                        self.device,
                        self.options,
                        cache_dir,
                    )
                    for abbr in selected
                ]
                for future in futures:
                    abbr, characterization, stats = future.result()
                    out[abbr] = characterization
                    if self.cache is not None:
                        self.cache.stats.merge(stats)
        except (OSError, PermissionError, NotImplementedError):
            return {}  # pool unavailable → caller falls back to serial
        return out

    # -- reporting ------------------------------------------------------
    @property
    def cache_stats(self) -> Optional[CacheStats]:
        return self.cache.stats if self.cache is not None else None
