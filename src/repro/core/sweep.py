"""Device-sweep runner: one launch stream, every device of a zoo.

The sweep is the paper's "what if the platform changes?" axis: the same
Cactus workloads, characterized across a list of
:class:`~repro.gpu.device.DeviceSpec` presets in one run.  Each
workload's launch stream is generated exactly once and the whole device
axis is evaluated in a single batched broadcast pass
(:func:`repro.gpu.batched.simulate_devices`), so an N-device sweep costs
one stream walk plus one vectorized model evaluation — not N scalar
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.characterize import Characterization
from repro.core.config import LAPTOP_SCALE, ScalePreset
from repro.core.resilience import RetryPolicy, WorkloadFailure
from repro.gpu.device import DeviceSpec
from repro.workloads.registry import list_workloads

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ResultCache
    from repro.core.streamcache import StreamCache
    from repro.core.suite import SuiteResult
    from repro.obs import RunProfile
    from repro.testing.faults import FaultPlan


@dataclass
class SweepRunReport:
    """Per-workload, per-device characterizations plus the run record.

    ``results`` maps workload abbreviation → ``{device_name:
    Characterization}`` (workloads in registration order, devices in
    sweep order).  Every entry is bit-for-bit identical to what a
    scalar :func:`~repro.core.characterize.characterize` run on that
    single device would produce — the differential suite
    (``tests/engine/test_sweep.py``) pins this.
    """

    devices: List[DeviceSpec] = field(default_factory=list)
    preset: ScalePreset = LAPTOP_SCALE
    results: Dict[str, Dict[str, Characterization]] = field(
        default_factory=dict
    )
    failures: List[WorkloadFailure] = field(default_factory=list)
    #: Attempt counts per executed workload (resumed ones are absent).
    attempts: Dict[str, int] = field(default_factory=dict)
    #: Why the engine degraded from the pool to the serial path, if it did.
    fallback_reason: Optional[str] = None
    #: Workloads skipped because a journal marked them already complete.
    resumed: List[str] = field(default_factory=list)
    #: Aggregated run observability (see :mod:`repro.obs`).
    run_profile: Optional["RunProfile"] = None
    #: Where the run's event log / Chrome trace landed, if tracing was on.
    trace_dir: Optional[str] = None

    def __getitem__(self, abbr: str) -> Dict[str, Characterization]:
        return self.results[abbr.upper()]

    def __contains__(self, abbr: str) -> bool:
        return abbr.upper() in self.results

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_workloads(self) -> List[str]:
        return [f.abbr for f in self.failures]

    @property
    def device_names(self) -> List[str]:
        return [d.name for d in self.devices]

    def failure_for(self, abbr: str) -> Optional[WorkloadFailure]:
        for failure in self.failures:
            if failure.abbr == abbr.upper():
                return failure
        return None

    def render_failures(self) -> str:
        """One line per failed workload (empty string when all passed)."""
        return "\n".join(f.render() for f in self.failures)

    def device(self, name: str) -> DeviceSpec:
        """The swept :class:`DeviceSpec` called *name* (exact match)."""
        for spec in self.devices:
            if spec.name == name:
                return spec
        raise KeyError(
            f"device {name!r} not in sweep (have {self.device_names})"
        )

    def for_device(self, name: str) -> "SuiteResult":
        """One device's slice of the sweep as a plain SuiteResult.

        The returned object is interchangeable with what ``run_suite``
        on that device alone would yield (minus the run record), so
        every existing single-device analysis — suite tables, roofline
        charts, report sections — applies unmodified to a sweep slice.
        """
        from repro.core.suite import SuiteResult

        spec = self.device(name)
        return SuiteResult(
            device=spec,
            preset=self.preset,
            results={
                abbr: per_device[name]
                for abbr, per_device in self.results.items()
                if name in per_device
            },
        )

    def suite(self, suite_name: str) -> List[Dict[str, Characterization]]:
        """Per-device maps of one suite, in registration order."""
        return [
            self.results[abbr]
            for abbr in list_workloads(suite_name)
            if abbr in self.results
        ]


def run_sweep(
    devices: Sequence[DeviceSpec],
    suites: Sequence[str] = ("Cactus",),
    preset: ScalePreset = LAPTOP_SCALE,
    workloads: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    cache: Optional["ResultCache"] = None,
    cache_dir: Optional[str] = None,
    stream_cache: Optional["StreamCache"] = None,
    retry_policy: Optional[RetryPolicy] = None,
    keep_going: bool = False,
    journal_dir: Optional[str] = None,
    fault_plan: Optional["FaultPlan"] = None,
    trace_dir: Optional[str] = None,
    proxy_tol: Optional[float] = None,
) -> SweepRunReport:
    """Characterize the given suites across every device in *devices*.

    Same knobs and failure semantics as
    :func:`~repro.core.suite.run_suite` — jobs, caching, retries,
    journaled resume, tracing, the opt-in *proxy_tol* similarity tier —
    plus *devices* (the sweep axis) and an
    optional *stream_cache*.  With ``cache_dir`` set and no explicit
    stream cache, launch streams persist under ``<cache_dir>/streams``
    automatically.  This is a thin wrapper over
    :meth:`~repro.core.engine.CharacterizationEngine.run_sweep`.
    """
    from repro.core.cache import ResultCache
    from repro.core.engine import CharacterizationEngine

    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir=cache_dir)
    engine = CharacterizationEngine(
        jobs=jobs,
        cache=cache,
        stream_cache=stream_cache,
        retry_policy=retry_policy or RetryPolicy(),
        keep_going=keep_going,
        journal_dir=journal_dir,
        fault_plan=fault_plan,
        trace_dir=trace_dir,
        proxy_tol=proxy_tol,
    )
    return engine.run_sweep(
        devices, suites=suites, preset=preset, workloads=workloads
    )
