"""Neighbour-list construction and pair counting.

GPU MD engines spend their dominant kernel on non-bonded pair
interactions, so the *number of neighbour pairs within the cutoff* is
the quantity that sets the kernel's instruction budget.  We compute it
exactly for the generated particle positions using a periodic KD-tree
(the algorithmic role of the cell list in Gromacs/LAMMPS; the KD-tree is
simply the fastest exact implementation available here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.workloads.molecular.system import ParticleSystem


@dataclass(frozen=True)
class NeighborStats:
    """Exact pair statistics for one neighbour-list build."""

    n_atoms: int
    total_pairs: int
    avg_neighbors_per_atom: float
    #: Coefficient of variation of the per-atom neighbour count —
    #: a measure of load imbalance across threads.
    imbalance_cv: float

    def __post_init__(self) -> None:
        if self.total_pairs < 0:
            raise ValueError("total_pairs must be non-negative")


class CellList:
    """Cell-list/neighbour-list builder over a :class:`ParticleSystem`."""

    def __init__(self, system: ParticleSystem, sample_size: int = 512) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        self.system = system
        self.sample_size = sample_size

    def build(self) -> NeighborStats:
        """Count pairs within the cutoff for the current positions."""
        system = self.system
        cutoff = system.spec.cutoff_nm
        box = system.box
        # A KD-tree with periodic boundary conditions; positions are kept
        # inside [0, box) by the system generator/perturber.
        tree = cKDTree(system.positions, boxsize=box)
        # count_neighbors counts ordered pairs including self-pairs.
        ordered = tree.count_neighbors(tree, cutoff)
        total_pairs = int((ordered - system.n_atoms) // 2)
        avg = 2.0 * total_pairs / system.n_atoms

        # Per-atom counts on a sample, for the load-imbalance statistic.
        n_sample = min(self.sample_size, system.n_atoms)
        sample_idx = system.rng.choice(
            system.n_atoms, size=n_sample, replace=False
        )
        per_atom = np.array(
            [
                len(tree.query_ball_point(system.positions[i], cutoff)) - 1
                for i in sample_idx
            ],
            dtype=np.float64,
        )
        mean = float(per_atom.mean()) if per_atom.size else 0.0
        std = float(per_atom.std()) if per_atom.size else 0.0
        cv = std / mean if mean > 0 else 0.0

        return NeighborStats(
            n_atoms=system.n_atoms,
            total_pairs=total_pairs,
            avg_neighbors_per_atom=avg,
            imbalance_cv=cv,
        )
