"""Neighbour-list construction and pair counting.

GPU MD engines spend their dominant kernel on non-bonded pair
interactions, so the *number of neighbour pairs within the cutoff* is
the quantity that sets the kernel's instruction budget.  We compute it
exactly for the generated particle positions — by a compiled cell-list
sweep (:mod:`repro.workloads.molecular.cellkernel`) when a C compiler is
available, falling back to a periodic KD-tree otherwise.  Either path
returns bit-identical statistics; the cell kernel's ambiguity band
(pairs within ~1e-12 of the cutoff) triggers a KD-tree re-count, so the
fast path never silently disagrees with the reference.

Geometry work is cached per :attr:`ParticleSystem.position_version`:
repeated builds between perturbations (every MD step in a re-neighbour
window) reuse the counts, and only the load-imbalance *sample* is
redrawn.  The RNG draw itself happens on **every** build, cached or
not — the launch-stream digests pin the exact ``rng.choice`` consumption
order, and that contract is what keeps them stable across this
optimization (see DESIGN.md section 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.workloads.molecular import cellkernel
from repro.workloads.molecular.system import ParticleSystem


@dataclass(frozen=True)
class NeighborStats:
    """Exact pair statistics for one neighbour-list build."""

    n_atoms: int
    total_pairs: int
    avg_neighbors_per_atom: float
    #: Coefficient of variation of the per-atom neighbour count —
    #: a measure of load imbalance across threads.
    imbalance_cv: float

    def __post_init__(self) -> None:
        if self.total_pairs < 0:
            raise ValueError("total_pairs must be non-negative")


class CellList:
    """Cell-list/neighbour-list builder over a :class:`ParticleSystem`."""

    def __init__(self, system: ParticleSystem, sample_size: int = 512) -> None:
        if sample_size <= 0:
            raise ValueError("sample_size must be positive")
        self.system = system
        self.sample_size = sample_size
        # Geometry cache, keyed on (position_version, positions
        # identity).  perturb() mutates in place and bumps the version;
        # set_positions() rebinds the array; either invalidates the key.
        self._cached_key: Optional[tuple] = None
        self._cached_pairs: int = 0
        #: Per-atom neighbour counts for all atoms (compiled path only).
        self._cached_per_atom: Optional[np.ndarray] = None
        #: Reference KD-tree (fallback path only), same cache key.
        self._cached_tree: Optional[cKDTree] = None

    def _refresh_counts(self) -> None:
        """Recompute total pairs (and per-atom counts) for the positions."""
        system = self.system
        cutoff = system.spec.cutoff_nm
        self._cached_per_atom = None
        self._cached_tree = None

        counts = cellkernel.count_pairs_exact(
            system.positions, system.box, cutoff
        )
        if counts is not None and counts.band_pairs == 0:
            self._cached_pairs = counts.total_pairs
            self._cached_per_atom = counts.per_atom
            return

        # Reference path: no compiler, unsupported geometry, or a pair
        # inside the cutoff ambiguity band.
        tree = cKDTree(system.positions, boxsize=system.box)
        ordered = tree.count_neighbors(tree, cutoff)
        self._cached_pairs = int((ordered - system.n_atoms) // 2)
        self._cached_tree = tree

    def build(self) -> NeighborStats:
        """Count pairs within the cutoff for the current positions."""
        system = self.system
        key = (system.position_version, id(system.positions))
        if key != self._cached_key:
            self._refresh_counts()
            self._cached_key = key
        total_pairs = self._cached_pairs
        avg = 2.0 * total_pairs / system.n_atoms

        # Per-atom counts on a sample, for the load-imbalance statistic.
        # The draw is replayed on every build — cached geometry must not
        # change the RNG consumption order the stream digests pin.
        n_sample = min(self.sample_size, system.n_atoms)
        sample_idx = system.rng.choice(
            system.n_atoms, size=n_sample, replace=False
        )
        if self._cached_per_atom is not None:
            per_atom = self._cached_per_atom[sample_idx].astype(np.float64)
        else:
            per_atom = (
                self._sample_tree().query_ball_point(
                    system.positions[sample_idx],
                    system.spec.cutoff_nm,
                    return_length=True,
                )
                - 1
            ).astype(np.float64)
        mean = float(per_atom.mean()) if per_atom.size else 0.0
        std = float(per_atom.std()) if per_atom.size else 0.0
        cv = std / mean if mean > 0 else 0.0

        return NeighborStats(
            n_atoms=system.n_atoms,
            total_pairs=total_pairs,
            avg_neighbors_per_atom=avg,
            imbalance_cv=cv,
        )

    def _sample_tree(self) -> cKDTree:
        if self._cached_tree is None:
            self._cached_tree = cKDTree(
                self.system.positions, boxsize=self.system.box
            )
        return self._cached_tree
