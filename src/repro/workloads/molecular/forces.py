"""Kernel builders for the MD engine.

Each function maps *measured system statistics* (atom counts, exact
neighbour-pair counts, grid sizes) to a
:class:`~repro.gpu.kernel.KernelCharacteristics`.  The per-unit
instruction costs are small constants justified below; everything that
varies with the input (and therefore everything that shapes the paper's
figures) comes from the actual system geometry.

Cost constants reference points:

* A Gromacs-style cluster non-bonded kernel evaluates an LJ + Ewald
  short-range interaction in roughly 70 thread instructions per pair
  (~2.2 warp instructions).
* PME spread/gather use 4th-order B-splines: 4^3 = 64 grid points per
  atom, a few instructions each.
* A 3D complex FFT performs ~8 N log2 N thread instructions across its
  three passes.
"""

from __future__ import annotations

import functools
import math

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
)

_WARP = 32.0

#: Per-builder memo size cap; cleared wholesale when exceeded (the
#: working set per run is a handful of shapes, so this never triggers in
#: practice — it only bounds pathological callers).
_MEMO_CAP = 4096


def _memoized(builder):
    """Memoize a kernel builder on its exact argument values.

    MD streams launch the same kernel shapes thousands of times (the
    stream-invariant kernels every step, the pair kernels once per
    re-neighbour window).  ``KernelCharacteristics`` is frozen, so
    replaying one shared instance is safe — and it turns the per-kernel
    digest memo in ``launch_stream_digest`` into identity hits.
    """
    cache: dict = {}

    @functools.wraps(builder)
    def wrapper(*args, **kwargs):
        key = (args, tuple(sorted(kwargs.items())))
        try:
            hit = cache.get(key)
        except TypeError:  # unhashable argument: build uncached
            return builder(*args, **kwargs)
        if hit is None:
            hit = builder(*args, **kwargs)
            if len(cache) >= _MEMO_CAP:
                cache.clear()
            cache[key] = hit
        return hit

    return wrapper


def _blocks(threads_total: int, threads_per_block: int) -> int:
    return max(1, math.ceil(threads_total / threads_per_block))


@_memoized
def nonbonded_pair_kernel(
    name: str,
    n_atoms: int,
    total_pairs: int,
    thread_insts_per_pair: float = 70.0,
    imbalance_cv: float = 0.0,
    pairlist_bytes_per_pair: float = 0.5,
) -> KernelCharacteristics:
    """The dominant short-range force kernel (nbnxn / pair style).

    Compute-intensive: each pair costs ~70 thread instructions while the
    atom data is reused heavily from shared memory/L1 tiles.  Load
    imbalance across warps (measured as the CV of per-atom neighbour
    counts) lowers effective ILP.
    """
    warp_insts = total_pairs * thread_insts_per_pair / _WARP
    # Positions+parameters per atom (32 B) plus the compressed cluster
    # pair list; forces written back once per atom (12 B).
    bytes_read = n_atoms * 32.0 + total_pairs * pairlist_bytes_per_pair
    bytes_written = n_atoms * 12.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 64),
        threads_per_block=128,
        warp_insts=max(1.0, warp_insts),
        mix=InstructionMix(fp32=0.55, ld_st=0.16, branch=0.05, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            reuse_factor=3.0,
            l1_locality=0.85,
            coalescence=1.0,
        ),
        ilp=max(1.5, 3.0 / (1.0 + imbalance_cv)),
        mlp=4.0,
        tags=("molecular", "nonbonded"),
    )


@_memoized
def pairlist_prune_kernel(
    name: str,
    n_atoms: int,
    total_pairs: int,
    thread_insts_per_pair: float = 22.0,
) -> KernelCharacteristics:
    """Rolling pair-list pruning (Gromacs ``nbnxn_kernel_prune``).

    Re-tests listed cluster pairs against the inner cutoff entirely from
    registers/shared memory: compute-intensive like the force kernel but
    cheaper per pair.
    """
    warp_insts = total_pairs * thread_insts_per_pair / _WARP
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 64),
        threads_per_block=128,
        warp_insts=max(1.0, warp_insts),
        mix=InstructionMix(fp32=0.48, ld_st=0.14, branch=0.10, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=n_atoms * 16.0 + total_pairs * 0.5,
            bytes_written=total_pairs * 0.25,
            reuse_factor=2.5,
            l1_locality=0.85,
            coalescence=1.0,
        ),
        ilp=2.5,
        mlp=4.0,
        tags=("molecular", "nonbonded"),
    )


@_memoized
def charge_spread_kernel(
    name: str, n_atoms: int, grid_points: int, spline_order: int = 4
) -> KernelCharacteristics:
    """PME/PPPM charge spreading: scatter atoms onto the charge grid.

    Memory-intensive: every atom updates ``spline_order^3`` grid cells
    with atomics; the grid itself is the unique footprint and the heavy
    atomic traffic is long-range reuse that only L2 can capture.
    """
    points_per_atom = spline_order ** 3
    thread_insts = n_atoms * (110.0 + 3.5 * points_per_atom)
    access_bytes = n_atoms * points_per_atom * 4.0
    unique = grid_points * 4.0 + n_atoms * 16.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 128),
        threads_per_block=128,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.30, ld_st=0.35, branch=0.05, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=n_atoms * 16.0,
            bytes_written=grid_points * 4.0,
            reuse_factor=max(1.0, access_bytes / unique),
            l1_locality=0.15,
            coalescence=0.5,
        ),
        ilp=2.0,
        mlp=2.5,
        tags=("molecular", "pme"),
    )


@_memoized
def fft_3d_kernel(name: str, grid_points: int) -> KernelCharacteristics:
    """One 3D complex FFT over the charge grid (cuFFT-style)."""
    log_n = max(1.0, math.log2(grid_points))
    thread_insts = 8.0 * grid_points * log_n
    grid_bytes = grid_points * 8.0  # complex64
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(grid_points // 4, 256),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.45, ld_st=0.30, branch=0.02, sync=0.04),
        memory=MemoryFootprint(
            bytes_read=grid_bytes,
            bytes_written=grid_bytes,
            reuse_factor=3.0,  # three butterfly passes over the grid
            l1_locality=0.4,
            coalescence=0.8,  # transposed passes lose some coalescing
        ),
        ilp=2.5,
        mlp=6.0,
        tags=("molecular", "pme"),
    )


@_memoized
def poisson_solve_kernel(name: str, grid_points: int) -> KernelCharacteristics:
    """Reciprocal-space solve: elementwise scaling of the k-space grid."""
    thread_insts = grid_points * 30.0
    grid_bytes = grid_points * 8.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(grid_points, 256),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.40, ld_st=0.35, branch=0.01, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=grid_bytes,
            bytes_written=grid_bytes,
            reuse_factor=1.0,
            coalescence=1.0,
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("molecular", "pme"),
    )


@_memoized
def force_gather_kernel(
    name: str, n_atoms: int, grid_points: int, spline_order: int = 4
) -> KernelCharacteristics:
    """PME force interpolation: gather grid values back to atoms."""
    points_per_atom = spline_order ** 3
    thread_insts = n_atoms * (130.0 + 4.0 * points_per_atom)
    access_bytes = n_atoms * points_per_atom * 4.0
    unique = grid_points * 4.0 + n_atoms * 28.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 128),
        threads_per_block=128,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.35, ld_st=0.33, branch=0.04, sync=0.01),
        memory=MemoryFootprint(
            bytes_read=grid_points * 4.0 + n_atoms * 16.0,
            bytes_written=n_atoms * 12.0,
            reuse_factor=max(1.0, access_bytes / unique),
            l1_locality=0.25,
            coalescence=0.5,
        ),
        ilp=2.0,
        mlp=3.0,
        tags=("molecular", "pme"),
    )


@_memoized
def bonded_kernel(
    name: str,
    n_terms: int,
    n_atoms: int,
    thread_insts_per_term: float = 90.0,
) -> KernelCharacteristics:
    """Bonded interactions (bonds/angles/dihedrals), scattered updates."""
    thread_insts = max(32.0, n_terms * thread_insts_per_term)
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(max(1, n_terms), 128),
        threads_per_block=128,
        warp_insts=thread_insts / _WARP,
        mix=InstructionMix(fp32=0.45, ld_st=0.25, branch=0.06, sync=0.01),
        memory=MemoryFootprint(
            bytes_read=n_terms * 20.0 + 1.0,
            bytes_written=min(n_atoms, n_terms * 3) * 12.0,
            reuse_factor=1.5,
            l1_locality=0.5,
            coalescence=0.7,
        ),
        ilp=2.0,
        mlp=2.5,
        tags=("molecular", "bonded"),
    )


@_memoized
def integrate_kernel(
    name: str,
    n_atoms: int,
    thread_insts_per_atom: float = 30.0,
    bytes_read_per_atom: float = 40.0,  # x, v, f, inverse mass
    bytes_written_per_atom: float = 24.0,  # x, v
) -> KernelCharacteristics:
    """Time integration (leap-frog / velocity Verlet): pure streaming."""
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n_atoms * thread_insts_per_atom / _WARP),
        mix=InstructionMix(fp32=0.35, ld_st=0.40, branch=0.02, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n_atoms * bytes_read_per_atom,
            bytes_written=n_atoms * bytes_written_per_atom,
            reuse_factor=1.0,
            coalescence=1.0,
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("molecular", "integrate"),
    )


@_memoized
def constraint_kernel(
    name: str, n_constraints: int, iterations: int = 4
) -> KernelCharacteristics:
    """LINCS/SHAKE constraint solver: iterative, synchronization-heavy."""
    thread_insts = max(32.0, n_constraints * 60.0 * iterations)
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(max(1, n_constraints), 128),
        threads_per_block=128,
        warp_insts=thread_insts / _WARP,
        mix=InstructionMix(fp32=0.40, ld_st=0.22, branch=0.05, sync=0.10),
        memory=MemoryFootprint(
            bytes_read=n_constraints * 40.0 + 1.0,
            bytes_written=n_constraints * 24.0,
            reuse_factor=float(iterations),
            l1_locality=0.6,
            coalescence=0.6,
        ),
        ilp=1.5,
        mlp=2.0,
        tags=("molecular", "constraints"),
    )


@_memoized
def reduction_kernel(
    name: str, n_atoms: int, bytes_per_atom: float = 12.0
) -> KernelCharacteristics:
    """Global reductions (kinetic energy, virial, thermo output)."""
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 512),
        threads_per_block=512,
        warp_insts=max(1.0, n_atoms * 8.0 / _WARP),
        mix=InstructionMix(fp32=0.30, ld_st=0.30, branch=0.05, sync=0.08),
        memory=MemoryFootprint(
            bytes_read=n_atoms * bytes_per_atom,
            bytes_written=4096.0,
            reuse_factor=1.0,
            coalescence=1.0,
        ),
        ilp=2.0,
        mlp=6.0,
        tags=("molecular", "reduction"),
    )


@_memoized
def neighbor_bin_kernel(name: str, n_atoms: int) -> KernelCharacteristics:
    """Assign atoms to cells (binning pass of the neighbour build)."""
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n_atoms * 12.0 / _WARP),
        mix=InstructionMix(fp32=0.15, ld_st=0.40, branch=0.08, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=n_atoms * 8.0,
            bytes_written=n_atoms * 4.0,
            reuse_factor=1.0,
            coalescence=0.6,  # scattered bin counters
        ),
        ilp=2.0,
        mlp=4.0,
        tags=("molecular", "neighbor"),
    )


@_memoized
def neighbor_build_kernel(
    name: str, n_atoms: int, total_pairs: int, candidate_ratio: float = 2.2
) -> KernelCharacteristics:
    """Neighbour-list construction: distance-test candidate pairs.

    The kernel tests ``candidate_ratio`` times more (half-list)
    candidates than survive the cutoff — the 27-cell stencil vs. the
    cutoff sphere plus the list skin — and writes the surviving list: a
    scattered, memory-heavy operation.
    """
    candidates = total_pairs * candidate_ratio
    thread_insts = candidates * 14.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n_atoms, 128),
        threads_per_block=128,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.25, ld_st=0.38, branch=0.12, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=n_atoms * 16.0 + candidates * 0.5,
            bytes_written=total_pairs * 4.0,
            reuse_factor=2.0,
            l1_locality=0.5,
            coalescence=0.45,
        ),
        ilp=1.8,
        mlp=3.0,
        tags=("molecular", "neighbor"),
    )


@_memoized
def halo_exchange_kernel(
    name: str, n_halo_atoms: int
) -> KernelCharacteristics:
    """Pack/unpack halo atoms for (threaded-)MPI communication."""
    n = max(1, n_halo_atoms)
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 12.0 / _WARP),
        mix=InstructionMix(fp32=0.05, ld_st=0.55, branch=0.04, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n * 16.0,
            bytes_written=n * 16.0,
            reuse_factor=1.0,
            coalescence=0.7,
        ),
        ilp=2.0,
        mlp=8.0,
        tags=("molecular", "comm"),
    )
