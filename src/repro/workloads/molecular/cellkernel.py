"""Compiled cell-list pair counter for the MD hot path.

``CellList.build`` needs the exact number of neighbour pairs within the
cutoff plus per-atom neighbour counts.  The scipy ``cKDTree`` dual-tree
counter is exact but costs ~1.5 s per build at the paper-scale GMS
system (70 K atoms, ~420 neighbours each), and it is rebuilt on every
re-neighbouring event.  This module compiles a classic cell-list sweep
(the algorithm real MD engines use) to native code with the system C
compiler at first use and calls it through ``ctypes`` — no third-party
build dependency, and the pure-scipy path remains as a fallback wherever
a compiler is unavailable.

Exactness contract
------------------
The counts must be *bit-identical* to the KD-tree path: they feed kernel
instruction budgets and ultimately the pinned launch-stream digests.
Floating-point distance tests in a different evaluation order could, in
principle, round a pair across the cutoff differently than scipy does.
Two guards make the fast path provably exact instead of merely close:

* **Two-radius band.**  Pairs are classified against
  ``r1 = r * (1 - 1e-12)`` and ``r2 = r * (1 + 1e-12)``.  Squared
  distances computed in float64 from identical inputs differ between
  implementations by at most a few ulp, far below the ~1e-12 relative
  band.  If *no* pair falls in ``(r1, r2]`` — the overwhelmingly common
  case for randomly generated positions — every faithful float64
  implementation agrees on each pair's in/out classification, so the
  count is exact.  If the band is non-empty, the caller falls back to
  the KD-tree for that build.
* **Conservative cell geometry.**  The cell count per box edge is
  ``nc = floor(box * s / (r * (1 + 1e-9)))`` for stencil radius ``s``,
  so the cell edge ``h >= r * (1 + 1e-9) / s``.  Any pair the ``s``-cell
  stencil cannot see is separated by at least ``s * h > r2`` per axis —
  including atoms mis-binned by one cell through floating-point division
  at a cell boundary — so no in-range pair is ever missed.
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
import shutil
import subprocess
import tempfile
from typing import NamedTuple, Optional, Tuple

import numpy as np

#: Environment switches: disable the compiled kernel entirely (exercises
#: the scipy fallback), or redirect the shared-object build cache.
ENV_DISABLE = "REPRO_NO_CELLKERNEL"
ENV_CACHE_DIR = "REPRO_CELLKERNEL_DIR"

#: Relative half-width of the exactness band around the cutoff.
BAND_REL = 1e-12

#: Upper bound on cells per edge (memory guard for the CSR cell index;
#: enlarging cells beyond the minimum size never loses pairs).
MAX_CELLS_PER_EDGE = 192

_C_SOURCE = r"""
#include <stdint.h>

/* Count unordered atom pairs with periodic squared distance <= r2sq in
 * a cubic box, via a half-stencil cell-list sweep.  Atoms arrive sorted
 * by cell id; cell_start is the CSR index over nc^3 cells.  Pairs with
 * d2 <= r1sq increment *out_in and both atoms' per_atom counters; pairs
 * with r1sq < d2 <= r2sq only increment *out_band (the ambiguity band).
 */
void count_pairs(const double *restrict pos, int64_t n, double box,
                 int64_t nc, int64_t srad,
                 const int64_t *restrict cell_start,
                 double r1sq, double r2sq,
                 int32_t *restrict per_atom,
                 int64_t *restrict out_in, int64_t *restrict out_band)
{
    int64_t in_count = 0, band_count = 0;
    const double h = box / (double) nc;
    const int s = (int) srad;

    /* Lexicographically-positive stencil offsets within radius s,
     * pruned by the minimum possible distance between the two cells
     * (offset d along one axis => separation >= (|d|-1) * h). */
    int off[124][3];
    int n_off = 0;
    for (int dx = 0; dx <= s; dx++) {
        for (int dy = -s; dy <= s; dy++) {
            for (int dz = -s; dz <= s; dz++) {
                if (dx == 0 && (dy < 0 || (dy == 0 && dz <= 0)))
                    continue;
                const int ax = dx > 0 ? dx - 1 : 0;
                const int ay = (dy > 0 ? dy : -dy) > 0 ? (dy > 0 ? dy : -dy) - 1 : 0;
                const int az = (dz > 0 ? dz : -dz) > 0 ? (dz > 0 ? dz : -dz) - 1 : 0;
                const double m2 = (double)(ax * ax + ay * ay + az * az) * h * h;
                if (m2 > r2sq)
                    continue;
                off[n_off][0] = dx;
                off[n_off][1] = dy;
                off[n_off][2] = dz;
                n_off++;
            }
        }
    }

    for (int64_t cx = 0; cx < nc; cx++)
    for (int64_t cy = 0; cy < nc; cy++)
    for (int64_t cz = 0; cz < nc; cz++) {
        const int64_t c = (cx * nc + cy) * nc + cz;
        const int64_t a0 = cell_start[c], a1 = cell_start[c + 1];
        if (a0 == a1)
            continue;

        /* Pairs within the cell itself. */
        for (int64_t i = a0; i < a1; i++) {
            const double xi = pos[3 * i];
            const double yi = pos[3 * i + 1];
            const double zi = pos[3 * i + 2];
            for (int64_t j = i + 1; j < a1; j++) {
                const double dxp = pos[3 * j] - xi;
                const double dyp = pos[3 * j + 1] - yi;
                const double dzp = pos[3 * j + 2] - zi;
                const double d2 = dxp * dxp + dyp * dyp + dzp * dzp;
                if (d2 <= r2sq) {
                    if (d2 <= r1sq) {
                        in_count++;
                        per_atom[i]++;
                        per_atom[j]++;
                    } else {
                        band_count++;
                    }
                }
            }
        }

        /* Pairs against each half-stencil partner cell, with periodic
         * wrap: a partner wrapped past the upper edge holds atoms that
         * are physically at +box relative to this cell, so shift the
         * reference atom by -box (and symmetrically for the lower
         * edge). */
        for (int k = 0; k < n_off; k++) {
            int64_t px = cx + off[k][0];
            int64_t py = cy + off[k][1];
            int64_t pz = cz + off[k][2];
            double sx = 0.0, sy = 0.0, sz = 0.0;
            if (px >= nc) { px -= nc; sx = box; }
            else if (px < 0) { px += nc; sx = -box; }
            if (py >= nc) { py -= nc; sy = box; }
            else if (py < 0) { py += nc; sy = -box; }
            if (pz >= nc) { pz -= nc; sz = box; }
            else if (pz < 0) { pz += nc; sz = -box; }
            const int64_t p = (px * nc + py) * nc + pz;
            const int64_t b0 = cell_start[p], b1 = cell_start[p + 1];
            if (b0 == b1)
                continue;
            for (int64_t i = a0; i < a1; i++) {
                const double xi = pos[3 * i] - sx;
                const double yi = pos[3 * i + 1] - sy;
                const double zi = pos[3 * i + 2] - sz;
                for (int64_t j = b0; j < b1; j++) {
                    const double dxp = pos[3 * j] - xi;
                    const double dyp = pos[3 * j + 1] - yi;
                    const double dzp = pos[3 * j + 2] - zi;
                    const double d2 = dxp * dxp + dyp * dyp + dzp * dzp;
                    if (d2 <= r2sq) {
                        if (d2 <= r1sq) {
                            in_count++;
                            per_atom[i]++;
                            per_atom[j]++;
                        } else {
                            band_count++;
                        }
                    }
                }
            }
        }
    }
    *out_in = in_count;
    *out_band = band_count;
}
"""


class PairCounts(NamedTuple):
    """Result of one compiled cell-list sweep."""

    total_pairs: int
    #: Pairs inside the ambiguity band ``(r1, r2]``; non-zero means the
    #: caller must re-count via the reference KD-tree path.
    band_pairs: int
    #: Per-atom neighbour counts for *all* atoms, in input order.
    per_atom: np.ndarray


_kernel: Optional[ctypes.CDLL] = None
_kernel_tried = False


def _cache_dir() -> str:
    override = os.environ.get(ENV_CACHE_DIR)
    if override:
        return override
    return os.path.join(
        tempfile.gettempdir(), f"repro-cellkernel-{os.getuid()}"
    )


def _compile_library() -> Optional[str]:
    """Compile the C source to a cached shared object; None on failure."""
    compiler = (
        shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    )
    if compiler is None:
        return None
    tag = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache_dir = _cache_dir()
    lib_path = os.path.join(cache_dir, f"cellkernel-{tag}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache_dir, exist_ok=True)
        src_path = os.path.join(cache_dir, f"cellkernel-{tag}.c")
        with open(src_path, "w", encoding="utf-8") as handle:
            handle.write(_C_SOURCE)
        tmp_path = f"{lib_path}.tmp.{os.getpid()}"
        subprocess.run(
            [compiler, "-O3", "-fPIC", "-shared", "-o", tmp_path, src_path],
            check=True,
            capture_output=True,
            timeout=120,
        )
        # Atomic publish so concurrent builders never load a torn file.
        os.replace(tmp_path, lib_path)
        return lib_path
    except (OSError, subprocess.SubprocessError):
        return None


def load_kernel() -> Optional[ctypes.CDLL]:
    """The compiled library, building it on first call; None if unavailable."""
    global _kernel, _kernel_tried
    if _kernel_tried:
        return _kernel
    _kernel_tried = True
    if os.environ.get(ENV_DISABLE):
        return None
    lib_path = _compile_library()
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(lib_path)
        lib.count_pairs.restype = None
        lib.count_pairs.argtypes = [
            ctypes.POINTER(ctypes.c_double),  # pos
            ctypes.c_int64,  # n
            ctypes.c_double,  # box
            ctypes.c_int64,  # nc
            ctypes.c_int64,  # srad
            ctypes.POINTER(ctypes.c_int64),  # cell_start
            ctypes.c_double,  # r1sq
            ctypes.c_double,  # r2sq
            ctypes.POINTER(ctypes.c_int32),  # per_atom
            ctypes.POINTER(ctypes.c_int64),  # out_in
            ctypes.POINTER(ctypes.c_int64),  # out_band
        ]
        _kernel = lib
    except OSError:
        _kernel = None
    return _kernel


def reset_kernel_cache() -> None:
    """Forget the loaded kernel (tests toggle the env switches)."""
    global _kernel, _kernel_tried
    _kernel = None
    _kernel_tried = False


def _choose_grid(box: float, cutoff: float, n_atoms: int) -> Optional[Tuple[int, int]]:
    """Pick ``(stencil_radius, cells_per_edge)`` or None if unsupported.

    Radius 2 halves the cell edge, shrinking the searched volume per
    atom ~1.7x; it only pays when cells still hold a few atoms each.
    """
    for srad in (2, 1):
        nc = int(math.floor(box * srad / (cutoff * (1.0 + 1e-9))))
        if nc < 2 * srad + 1:
            continue
        nc = min(nc, MAX_CELLS_PER_EDGE)
        if srad == 2 and n_atoms / float(nc) ** 3 < 1.0:
            continue
        return srad, nc
    return None


def count_pairs_exact(
    positions: np.ndarray, box: float, cutoff: float
) -> Optional[PairCounts]:
    """Exact pair counts via the compiled sweep, or None if unavailable.

    ``positions`` must lie in ``[0, box)``.  A None return (no compiler,
    kernel disabled, or box too small for the stencil) and a result with
    ``band_pairs > 0`` both mean: use the KD-tree reference path.
    """
    lib = load_kernel()
    if lib is None:
        return None
    n = positions.shape[0]
    if n < 2:
        return None
    grid = _choose_grid(box, cutoff, n)
    if grid is None:
        return None
    srad, nc = grid

    h = box / nc
    cells = np.minimum(
        (positions * (1.0 / h)).astype(np.int64), nc - 1
    )
    cell_ids = (cells[:, 0] * nc + cells[:, 1]) * nc + cells[:, 2]
    order = np.argsort(cell_ids, kind="stable")
    sorted_pos = np.ascontiguousarray(positions[order])
    counts = np.bincount(cell_ids, minlength=nc**3)
    cell_start = np.zeros(nc**3 + 1, dtype=np.int64)
    np.cumsum(counts, out=cell_start[1:])

    r1sq = (cutoff * (1.0 - BAND_REL)) ** 2
    r2sq = (cutoff * (1.0 + BAND_REL)) ** 2
    per_atom_sorted = np.zeros(n, dtype=np.int32)
    out_in = ctypes.c_int64(0)
    out_band = ctypes.c_int64(0)
    lib.count_pairs(
        sorted_pos.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
        ctypes.c_int64(n),
        ctypes.c_double(box),
        ctypes.c_int64(nc),
        ctypes.c_int64(srad),
        cell_start.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
        ctypes.c_double(r1sq),
        ctypes.c_double(r2sq),
        per_atom_sorted.ctypes.data_as(ctypes.POINTER(ctypes.c_int32)),
        ctypes.byref(out_in),
        ctypes.byref(out_band),
    )

    per_atom = np.empty(n, dtype=np.int32)
    per_atom[order] = per_atom_sorted
    return PairCounts(
        total_pairs=int(out_in.value),
        band_pairs=int(out_band.value),
        per_atom=per_atom,
    )
