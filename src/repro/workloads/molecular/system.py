"""Particle-system generation for the MD workloads.

The paper's inputs are a solvated T4-lysozyme complex (Gromacs), the
32 K-atom rhodopsin benchmark and a 60 K-particle colloid model
(LAMMPS).  We cannot ship those proprietary-adjacent input decks, so we
generate synthetic systems with the same *structural* parameters that
matter to the kernel stream: particle count, number density, cutoff
radius, and a solute/solvent split (solute atoms are clustered, solvent
fills the box uniformly).  Neighbour-pair counts — which set the
non-bonded kernel's instruction budget — then follow from actual
geometry rather than from constants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SystemSpec:
    """Structural description of an MD input system."""

    name: str
    n_atoms: int
    #: Particles per cubic nanometre (water-like systems ~ 100/nm^3
    #: counting all atoms; coarse-grained colloids are much sparser).
    number_density: float
    #: Pair interaction cutoff radius in nm.
    cutoff_nm: float
    #: Fraction of atoms belonging to the clustered solute.
    solute_fraction: float = 0.0
    #: Bonded interactions per atom (bonds+angles+dihedrals, approx).
    bonded_terms_per_atom: float = 0.0
    #: Whether long-range electrostatics (PME/PPPM) are required.
    long_range_electrostatics: bool = True

    def __post_init__(self) -> None:
        if self.n_atoms <= 0:
            raise ValueError(f"n_atoms must be positive, got {self.n_atoms}")
        if self.number_density <= 0:
            raise ValueError("number_density must be positive")
        if self.cutoff_nm <= 0:
            raise ValueError("cutoff_nm must be positive")
        if not 0.0 <= self.solute_fraction <= 1.0:
            raise ValueError("solute_fraction must be in [0, 1]")

    @property
    def box_nm(self) -> float:
        """Cubic box edge length for the requested density."""
        return float((self.n_atoms / self.number_density) ** (1.0 / 3.0))

    def scaled(self, scale: float) -> "SystemSpec":
        """Shrink the system to ``scale`` of its atom count.

        Density and cutoff are preserved, so per-atom neighbour counts —
        and hence per-atom kernel cost — are scale-invariant.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        n = max(256, int(round(self.n_atoms * scale)))
        return SystemSpec(
            name=self.name,
            n_atoms=n,
            number_density=self.number_density,
            cutoff_nm=self.cutoff_nm,
            solute_fraction=self.solute_fraction,
            bonded_terms_per_atom=self.bonded_terms_per_atom,
            long_range_electrostatics=self.long_range_electrostatics,
        )


class ParticleSystem:
    """Concrete particle positions generated from a :class:`SystemSpec`."""

    def __init__(self, spec: SystemSpec, seed: int = 0) -> None:
        self.spec = spec
        self.rng = np.random.default_rng(seed)
        self.box = spec.box_nm
        self.positions = self._generate_positions()
        #: Monotone counter bumped on every position change made through
        #: the class API.  Consumers (``CellList``) key caches on it, so
        #: repeated neighbour-list builds between perturbations reuse
        #: their geometry work.  Mutating ``positions`` in place from
        #: outside without calling :meth:`set_positions` is unsupported.
        self.position_version = 0

    def _generate_positions(self) -> np.ndarray:
        spec = self.spec
        n_solute = int(round(spec.n_atoms * spec.solute_fraction))
        n_solvent = spec.n_atoms - n_solute

        parts = []
        if n_solvent:
            parts.append(self.rng.uniform(0.0, self.box, size=(n_solvent, 3)))
        if n_solute:
            # A globular solute: Gaussian blob at the box centre with a
            # radius ~ a third of the box, wrapped into the box.
            centre = np.full(3, self.box / 2.0)
            blob = self.rng.normal(
                loc=centre, scale=self.box / 6.0, size=(n_solute, 3)
            )
            parts.append(np.mod(blob, self.box))
        return np.concatenate(parts, axis=0).astype(np.float64)

    @property
    def n_atoms(self) -> int:
        return self.spec.n_atoms

    def perturb(self, displacement_nm: float = 0.01) -> None:
        """Random-walk the particles, emulating integration drift.

        Used between re-neighbouring events so repeated neighbour-list
        builds see slightly different geometry, like a real run.
        """
        if displacement_nm < 0:
            raise ValueError("displacement_nm must be non-negative")
        step = self.rng.normal(0.0, displacement_nm, size=self.positions.shape)
        # In place (same elementwise operations, so bit-identical to the
        # rebinding form) to avoid two position-sized temporaries per
        # perturbation at paper scale.
        np.add(self.positions, step, out=self.positions)
        np.mod(self.positions, self.box, out=self.positions)
        self.position_version += 1

    def set_positions(self, positions: np.ndarray) -> None:
        """Replace the particle positions (copied), bumping the version.

        Positions must lie in ``[0, box)``, the invariant the generator
        and :meth:`perturb` maintain.
        """
        arr = np.array(positions, dtype=np.float64, copy=True)
        if arr.shape != (self.n_atoms, 3):
            raise ValueError(
                f"positions must have shape {(self.n_atoms, 3)}, "
                f"got {arr.shape}"
            )
        if np.any(arr < 0.0) or np.any(arr >= self.box):
            raise ValueError("positions must lie in [0, box)")
        self.positions = arr
        self.position_version += 1


#: Paper input systems (Table I).  Densities/cutoffs follow the actual
#: benchmark decks: atomistic solvated proteins at ~100 atoms/nm^3 with
#: ~1.0-1.2 nm cutoffs; the colloid model is coarse-grained and sparse
#: with a large cutoff.
T4_LYSOZYME = SystemSpec(
    name="T4 lysozyme + ligand (NPT)",
    n_atoms=70_000,
    number_density=100.0,
    cutoff_nm=1.0,
    solute_fraction=0.04,
    bonded_terms_per_atom=1.6,
    long_range_electrostatics=True,
)

RHODOPSIN = SystemSpec(
    name="Rhodopsin protein (32K atoms)",
    n_atoms=32_000,
    number_density=100.0,
    cutoff_nm=1.2,
    solute_fraction=0.17,
    bonded_terms_per_atom=2.1,
    long_range_electrostatics=True,
)

COLLOID = SystemSpec(
    name="Colloid (60K particles)",
    n_atoms=60_000,
    number_density=0.3,
    cutoff_nm=2.5,
    solute_fraction=0.0,
    bonded_terms_per_atom=0.0,
    long_range_electrostatics=False,
)
