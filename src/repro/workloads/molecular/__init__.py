"""Molecular-dynamics workload substrate.

A reduced-scale but *real* MD engine: particle systems are generated and
binned into cell lists, neighbour pairs are counted for actual
positions, and each simulation step emits the kernel launches a
GPU-accelerated MD package performs (non-bonded pair forces, PME/PPPM
electrostatics, bonded terms, constraints, integration).  The Gromacs
and LAMMPS workload models (GMS, LMR, LMC of Table I) sit on top.
"""

from repro.workloads.molecular.gromacs import GromacsNPT
from repro.workloads.molecular.lammps import LammpsColloid, LammpsRhodopsin
from repro.workloads.molecular.neighbor import CellList, NeighborStats
from repro.workloads.molecular.system import ParticleSystem, SystemSpec

__all__ = [
    "GromacsNPT",
    "LammpsColloid",
    "LammpsRhodopsin",
    "CellList",
    "NeighborStats",
    "ParticleSystem",
    "SystemSpec",
]
