"""LMR and LMC: the two LAMMPS workloads of Table I.

The paper's key observation about LAMMPS (Observation #3) is that the
*same code base executes different kernels for different inputs*:

* **LMR** (rhodopsin, 32 K atoms): a solvated all-atom protein with
  CHARMM force field — long-range PPPM electrostatics, four bonded-term
  kernels, and a heavy ``pair_lj_charmm_coul_long`` kernel.  15 distinct
  kernels, dominated by two.
* **LMC** (colloid, 60 K particles): a coarse-grained colloid model —
  no electrostatics, no bonded terms, but frequent re-neighbouring, a
  Langevin thermostat and an analytically heavier pair style.  9
  distinct kernels with three dominating.

Both classes share the same engine; the kernel menu differs because the
physics differs — which is exactly the input sensitivity the paper
describes.
"""

from __future__ import annotations

import math

from repro.gpu.kernel import LaunchStream
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.molecular import cellkernel, forces
from repro.workloads.molecular.neighbor import CellList
from repro.workloads.molecular.system import COLLOID, RHODOPSIN, ParticleSystem

LMR_INFO = WorkloadInfo(
    name="LAMMPS1",
    abbr="LMR",
    suite="Cactus",
    domain="Molecular",
    description="Protein simulation",
    dataset="Rhodopsin (32K atoms)",
)

LMC_INFO = WorkloadInfo(
    name="LAMMPS2",
    abbr="LMC",
    suite="Cactus",
    domain="Molecular",
    description="Pairwise interactions between particles",
    dataset="Colloid (60K atoms)",
)


class LammpsRhodopsin(Workload):
    """LMR: LAMMPS rhodopsin benchmark (CHARMM + PPPM)."""

    repetitive = True

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        steps: int = 40,
        reneighbor_interval: int = 10,
    ) -> None:
        super().__init__(LMR_INFO, scale=scale, seed=seed)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        self.reneighbor_interval = reneighbor_interval
        self.spec = RHODOPSIN.scaled(scale)
        # Warm the compiled pair counter at construction so a cold
        # compile never lands inside a timed launch_stream call.
        cellkernel.load_kernel()

    def launch_stream(self) -> LaunchStream:
        system = ParticleSystem(self.spec, seed=self.seed)
        cell_list = CellList(system)
        stats = cell_list.build()

        n_atoms = self.spec.n_atoms
        # PPPM uses a coarser grid than Gromacs PME (order-5 stencil).
        grid_dim = max(12, math.ceil(system.box / 0.22))
        grid_points = grid_dim ** 3
        # CHARMM bonded-term split, roughly following the rhodopsin deck.
        n_bonds = int(n_atoms * 0.72)
        n_angles = int(n_atoms * 0.55)
        n_dihedrals = int(n_atoms * 0.62)
        n_impropers = int(n_atoms * 0.12)
        n_halo = int(n_atoms * 0.10)

        # Stream-invariant kernels, built once and replayed every step.
        integrate_initial = forces.integrate_kernel(
            "nve_integrate_initial",
            n_atoms,
            thread_insts_per_atom=20.0,
            bytes_read_per_atom=28.0,
            bytes_written_per_atom=16.0,
        )
        halo_forward = forces.halo_exchange_kernel(
            "comm_forward_comm", n_halo
        )
        neighbor_bin = forces.neighbor_bin_kernel(
            "neighbor_bin_atoms", n_atoms
        )
        spread = forces.charge_spread_kernel(
            "pppm_make_rho", n_atoms, grid_points, spline_order=5
        )
        fft_forward = forces.fft_3d_kernel("pppm_fft_forward", grid_points)
        solve = forces.poisson_solve_kernel("pppm_poisson_solve", grid_points)
        fft_back = forces.fft_3d_kernel("pppm_fft_back", grid_points)
        gather = forces.force_gather_kernel(
            "pppm_fieldforce", n_atoms, grid_points, spline_order=5
        )
        bond = forces.bonded_kernel(
            "bond_harmonic", n_bonds, n_atoms, thread_insts_per_term=60.0
        )
        angle = forces.bonded_kernel(
            "angle_charmm", n_angles, n_atoms, thread_insts_per_term=110.0
        )
        dihedral = forces.bonded_kernel(
            "dihedral_charmm", n_dihedrals, n_atoms,
            thread_insts_per_term=160.0,
        )
        improper = forces.bonded_kernel(
            "improper_harmonic", n_impropers, n_atoms,
            thread_insts_per_term=120.0,
        )
        integrate_final = forces.integrate_kernel(
            "nve_integrate_final",
            n_atoms,
            thread_insts_per_atom=14.0,
            bytes_read_per_atom=20.0,
            bytes_written_per_atom=12.0,
        )

        def window_kernels(stats):
            # Rebuilt once per re-neighbour window.
            neighbor_build = forces.neighbor_build_kernel(
                "neighbor_build_full",
                n_atoms,
                stats.total_pairs,
                candidate_ratio=4.4,  # full lists: both directions
            )
            pair = forces.nonbonded_pair_kernel(
                "pair_lj_charmm_coul_long",
                n_atoms,
                stats.total_pairs,
                thread_insts_per_pair=200.0,
                imbalance_cv=stats.imbalance_cv,
                # Full neighbour lists store one 4-byte id per pair.
                pairlist_bytes_per_pair=4.0,
            )
            return neighbor_build, pair

        neighbor_build, pair = window_kernels(stats)
        stream = LaunchStream()
        for step in range(self.steps):
            reneighbor = step > 0 and step % self.reneighbor_interval == 0
            if reneighbor:
                system.perturb(0.01)
                stats = cell_list.build()
                neighbor_build, pair = window_kernels(stats)

            stream.launch(integrate_initial, phase="update")
            stream.launch(halo_forward, phase="comm")
            if reneighbor:
                stream.launch(neighbor_bin, phase="neighbor")
                stream.launch(neighbor_build, phase="neighbor")
            stream.launch(pair, phase="force")
            stream.launch(spread, phase="pppm")
            stream.launch(fft_forward, phase="pppm")
            stream.launch(solve, phase="pppm")
            stream.launch(fft_back, phase="pppm")
            stream.launch(gather, phase="pppm")
            stream.launch(bond, phase="force")
            stream.launch(angle, phase="force")
            stream.launch(dihedral, phase="force")
            stream.launch(improper, phase="force")
            stream.launch(integrate_final, phase="update")
        return stream


class LammpsColloid(Workload):
    """LMC: LAMMPS colloid benchmark (coarse-grained, no electrostatics)."""

    repetitive = True

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        steps: int = 40,
        reneighbor_interval: int = 1,
    ) -> None:
        super().__init__(LMC_INFO, scale=scale, seed=seed)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        # Colloids diffuse quickly; LAMMPS re-neighbours every few steps.
        self.reneighbor_interval = reneighbor_interval
        self.spec = COLLOID.scaled(scale)
        cellkernel.load_kernel()

    def launch_stream(self) -> LaunchStream:
        system = ParticleSystem(self.spec, seed=self.seed)
        cell_list = CellList(system)
        stats = cell_list.build()

        n_atoms = self.spec.n_atoms
        n_halo = int(n_atoms * 0.08)

        # Stream-invariant kernels, built once and replayed every step.
        integrate_initial = forces.integrate_kernel(
            "nve_integrate_initial",
            n_atoms,
            thread_insts_per_atom=20.0,
            bytes_read_per_atom=28.0,
            bytes_written_per_atom=16.0,
        )
        halo_forward = forces.halo_exchange_kernel(
            "comm_forward_comm", n_halo
        )
        neighbor_bin = forces.neighbor_bin_kernel(
            "neighbor_bin_atoms", n_atoms
        )
        langevin = forces.integrate_kernel(
            "fix_langevin",
            n_atoms,
            thread_insts_per_atom=90.0,  # Gaussian noise generation
            bytes_read_per_atom=76.0,  # + RNG state and drag terms
            bytes_written_per_atom=40.0,
        )
        integrate_final = forces.integrate_kernel(
            "nve_integrate_final",
            n_atoms,
            thread_insts_per_atom=14.0,
            bytes_read_per_atom=20.0,
            bytes_written_per_atom=12.0,
        )
        halo_reverse = forces.halo_exchange_kernel(
            "comm_reverse_comm", n_halo
        )
        thermo = forces.reduction_kernel("thermo_temp_compute", n_atoms)

        def window_kernels(stats):
            # Rebuilt once per re-neighbour window (every step here).
            neighbor_build = forces.neighbor_build_kernel(
                "neighbor_build_full",
                n_atoms,
                stats.total_pairs,
                candidate_ratio=4.4,  # full lists: both directions
            )
            pair = forces.nonbonded_pair_kernel(
                "pair_colloid",
                n_atoms,
                stats.total_pairs,
                # Colloid pair interactions integrate Hamaker terms:
                # analytically much heavier than LJ per pair.
                thread_insts_per_pair=900.0,
                imbalance_cv=stats.imbalance_cv,
                pairlist_bytes_per_pair=4.0,
            )
            return neighbor_build, pair

        neighbor_build, pair = window_kernels(stats)
        stream = LaunchStream()
        for step in range(self.steps):
            reneighbor = step > 0 and step % self.reneighbor_interval == 0
            if reneighbor:
                system.perturb(0.05)
                stats = cell_list.build()
                neighbor_build, pair = window_kernels(stats)

            stream.launch(integrate_initial, phase="update")
            stream.launch(halo_forward, phase="comm")
            if reneighbor:
                stream.launch(neighbor_bin, phase="neighbor")
                stream.launch(neighbor_build, phase="neighbor")
            stream.launch(pair, phase="force")
            stream.launch(langevin, phase="update")
            stream.launch(integrate_final, phase="update")
            stream.launch(halo_reverse, phase="comm")
            if step % 5 == 0:  # the colloid deck prints thermo often
                stream.launch(thermo, phase="output")
        return stream
