"""GMS: Gromacs NPT equilibration of a T4-lysozyme complex (Table I).

Models the GPU kernel stream of a Gromacs 2021 single-precision CUDA run
under the NPT ensemble.  Per MD step the engine launches nine distinct
kernels (the number the paper reports for GMS):

1. ``nbnxn_kernel_ElecEw_VdwLJ_F`` — cluster-pair non-bonded forces,
   the compute-intensive dominant kernel,
2. ``nbnxn_kernel_prune_rolling`` — dynamic pair-list pruning, also
   compute-intensive, every few steps,
3-6. the PME pipeline — ``pme_spline_and_spread``, the cuFFT radix
   kernel (one symbol, invoked for both FFT directions), the k-space
   solve and ``pme_gather`` — mostly memory-intensive,
7. ``bonded_forces`` (listed interactions),
8. ``leapfrog_integrator_npt`` (integration + Parrinello-Rahman box
   scaling, streaming),
9. ``lincs_constraints`` (iterative constraint solver, sync-heavy).

Pair search runs on the CPU in this configuration (as in Gromacs with
``-nb gpu -pme gpu`` and default bonded/search placement), so no
neighbour-build kernels appear on the GPU — exactly why GMS executes
fewer kernels than LAMMPS in the paper.
"""

from __future__ import annotations

import math

from repro.gpu.kernel import LaunchStream
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.molecular import cellkernel, forces
from repro.workloads.molecular.neighbor import CellList
from repro.workloads.molecular.system import T4_LYSOZYME, ParticleSystem

#: PME grid spacing in nm (Gromacs default fourier-spacing ~ 0.12; a
#: slightly coarser tuned grid as ``gmx tune_pme`` typically selects).
_PME_SPACING_NM = 0.135

GMS_INFO = WorkloadInfo(
    name="Gromacs",
    abbr="GMS",
    suite="Cactus",
    domain="Molecular",
    description="NPT equilibration",
    dataset="T4 lysozyme",
)


class GromacsNPT(Workload):
    """The GMS workload: Gromacs NPT equilibration."""

    repetitive = True

    def __init__(
        self,
        scale: float = 1.0,
        seed: int = 0,
        steps: int = 40,
        reneighbor_interval: int = 10,
    ) -> None:
        super().__init__(GMS_INFO, scale=scale, seed=seed)
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.steps = steps
        self.reneighbor_interval = reneighbor_interval
        self.spec = T4_LYSOZYME.scaled(scale)
        # Warm the compiled pair counter at construction so a cold
        # compile never lands inside a timed launch_stream call.
        cellkernel.load_kernel()

    def launch_stream(self) -> LaunchStream:
        system = ParticleSystem(self.spec, seed=self.seed)
        cell_list = CellList(system)
        stats = cell_list.build()

        n_atoms = self.spec.n_atoms
        grid_dim = max(16, math.ceil(system.box / _PME_SPACING_NM))
        grid_points = grid_dim ** 3
        n_bonded = int(n_atoms * self.spec.bonded_terms_per_atom)
        n_constraints = int(n_atoms * 0.6)  # H-bond constraints

        # Stream-invariant kernels: identical shape every step, so build
        # each once and replay the frozen instance.
        spread = forces.charge_spread_kernel(
            "pme_spline_and_spread", n_atoms, grid_points
        )
        # cuFFT launches the same radix kernel for both directions.
        fft = forces.fft_3d_kernel("pme_cufft_radix4", grid_points)
        solve = forces.poisson_solve_kernel("pme_solve", grid_points)
        gather = forces.force_gather_kernel("pme_gather", n_atoms, grid_points)
        bonded = forces.bonded_kernel("bonded_forces", n_bonded, n_atoms)
        integrate = forces.integrate_kernel(
            "leapfrog_integrator_npt", n_atoms,
            thread_insts_per_atom=45.0,  # + pressure scaling
        )
        constraints = forces.constraint_kernel(
            "lincs_constraints", n_constraints
        )

        def pair_kernels(stats):
            # Rebuilt only when re-neighbouring refreshes the pair list.
            nonbonded = forces.nonbonded_pair_kernel(
                "nbnxn_kernel_ElecEw_VdwLJ_F",
                n_atoms,
                stats.total_pairs,
                thread_insts_per_pair=145.0,
                imbalance_cv=stats.imbalance_cv,
            )
            prune = forces.pairlist_prune_kernel(
                "nbnxn_kernel_prune_rolling",
                n_atoms,
                stats.total_pairs * 3,  # skin inflates the list
                thread_insts_per_pair=40.0,
            )
            return nonbonded, prune

        nonbonded, prune = pair_kernels(stats)
        stream = LaunchStream()
        for step in range(self.steps):
            if step > 0 and step % self.reneighbor_interval == 0:
                # CPU pair search; GPU sees refreshed pair counts only.
                system.perturb(0.01)
                stats = cell_list.build()
                nonbonded, prune = pair_kernels(stats)

            stream.launch(nonbonded, phase="force")
            if step % 4 == 0:
                # Rolling pruning of the (skinned) pair list.
                stream.launch(prune, phase="force")
            stream.launch(spread, phase="pme")
            stream.launch(fft, phase="pme")
            stream.launch(solve, phase="pme")
            stream.launch(fft, phase="pme")
            stream.launch(gather, phase="pme")
            stream.launch(bonded, phase="force")
            stream.launch(integrate, phase="update")
            stream.launch(constraints, phase="update")
        return stream
