"""GCN: graph-convolutional-network training on the social graph.

The workload the paper's taxonomy does not yet cover: a single
application that *combines* the graph substrate's irregular
neighbourhood gathers (SpMM over the adjacency) with the ML substrate's
dense GEMMs and autograd — per layer, ``H' = ReLU(A_hat @ H @ W)``.

The launch stream therefore mixes both behavioural worlds in one
profile: scattered low-coalescence aggregation kernels next to
tile-reusing dense GEMMs, trained with cross-entropy + Adam.
"""

from __future__ import annotations

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    LaunchStream,
    MemoryFootprint,
)
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.generator import social_network
from repro.workloads.ml import kernels as K
from repro.workloads.ml.optimizers import Adam
from repro.workloads.ml.trace import Trace

GCN_INFO = WorkloadInfo(
    name="GCN",
    abbr="GCN",
    suite="CactusExt",
    domain="GraphML",
    description="Train a 2-layer graph convolutional network",
    dataset="SOC-Twitter10 + node features",
)

_SOCIAL_VERTICES = 21_000_000
_MIN_VERTICES = 20_000
_FEATURES = 512  # Reddit-style node features
_HIDDEN = 256
_CLASSES = 41


def _spmm_kernel(
    n: int, edges: int, width: int, backward: bool = False
) -> KernelCharacteristics:
    """Neighbourhood aggregation: SpMM of A_hat with an n x width dense
    matrix — one scattered row-gather per edge."""
    direction = "backward" if backward else "forward"
    return KernelCharacteristics(
        name=f"gcn_spmm_aggregate_{direction}",
        grid_blocks=max(1, edges // 64),
        threads_per_block=256,
        warp_insts=max(1.0, edges * (width / 2.0 + 8.0) / 32.0),
        mix=InstructionMix(fp32=0.30, ld_st=0.40, branch=0.06, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=edges * (width * 4.0 * 0.5 + 8.0) + n * width * 4.0,
            bytes_written=n * width * 4.0,
            reuse_factor=2.0,  # popular rows re-hit in L2
            l1_locality=0.15,
            coalescence=0.4,  # row gathers are contiguous per row
        ),
        ilp=2.0,
        mlp=4.0,
        tags=("graph", "ml", "spmm"),
    )


class GCNTraining(Workload):
    """GCN: full-batch training of a 2-layer GCN."""

    repetitive = True

    def __init__(self, scale: float = 1.0, seed: int = 0, epochs: int = 6) -> None:
        super().__init__(GCN_INFO, scale=scale, seed=seed)
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.epochs = epochs
        params = (
            _FEATURES * _HIDDEN + _HIDDEN + _HIDDEN * _CLASSES + _CLASSES
        )
        self.optimizer = Adam(params)

    def _build_graph(self) -> CSRGraph:
        n = max(_MIN_VERTICES, int(_SOCIAL_VERTICES * self.scale))
        return social_network(n, seed=self.seed)

    def launch_stream(self) -> LaunchStream:
        graph = self._build_graph()
        n = graph.num_vertices
        edges = graph.num_edges

        stream = LaunchStream()
        trace = Trace(stream, phase="setup")
        trace.add(K.fill_kernel(self.optimizer.parameter_count, op="normal"))
        trace.add(K.elementwise_kernel(
            "degree_normalize", float(n), insts_per_elem=6.0))

        for epoch in range(self.epochs):
            trace = Trace(stream, phase=f"epoch{epoch}")
            self.optimizer.zero_grad(trace)

            # Layer 1: aggregate raw features, project, activate.
            trace.add(_spmm_kernel(n, edges, _FEATURES))
            trace.add(K.gemm_kernel(n, _HIDDEN, _FEATURES))
            trace.add(K.elementwise_kernel(
                "relu", float(n * _HIDDEN), insts_per_elem=3.0))
            trace.add(K.dropout_kernel(float(n * _HIDDEN)))

            # Layer 2: aggregate hidden states, project to classes.
            trace.add(_spmm_kernel(n, edges, _HIDDEN))
            trace.add(K.gemm_kernel(n, _CLASSES, _HIDDEN))

            # Loss over the labelled subset (10% of the nodes).
            labelled = max(1, n // 10)
            trace.add(K.log_softmax_kernel(labelled, _CLASSES))
            trace.add(K.loss_kernel("nll", float(labelled)))
            trace.add(K.loss_kernel("nll", float(labelled), backward=True))
            trace.add(K.log_softmax_kernel(labelled, _CLASSES, backward=True))

            # Backward: mirrored GEMMs and SpMM aggregations.
            trace.add(K.gemm_kernel(n, _HIDDEN, _CLASSES, transposed=True))
            trace.add(K.gemm_kernel(_HIDDEN, _CLASSES, n, transposed=True))
            trace.add(_spmm_kernel(n, edges, _HIDDEN, backward=True))
            trace.add(K.dropout_kernel(float(n * _HIDDEN), backward=True))
            trace.add(K.elementwise_kernel(
                "relu_backward", float(n * _HIDDEN), inputs=2,
                insts_per_elem=3.0))
            trace.add(K.gemm_kernel(_FEATURES, _HIDDEN, n, transposed=True))
            trace.add(_spmm_kernel(n, edges, _FEATURES, backward=True))

            self.optimizer.step(trace)
        return stream
