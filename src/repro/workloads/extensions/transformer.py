"""TRF: BERT-style transformer encoder pre-training.

A 6-layer encoder (hidden 512, 8 heads, FFN 2048) on 128-token
sequences, trained with masked-LM cross-entropy and Adam.  Per layer
and step the model launches the canonical transformer kernel menu:
QKV/output projections, batched attention GEMMs, softmax over the
attention scores, layer normalization, GELU, and the residual adds —
plus their backward counterparts.
"""

from __future__ import annotations

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
)
from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import Embedding
from repro.workloads.ml.optimizers import Adam
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

TRF_INFO = WorkloadInfo(
    name="Transformer",
    abbr="TRF",
    suite="CactusExt",
    domain="MachineLearning",
    description="Pre-train a BERT-style encoder (masked LM)",
    dataset="WikiText-style corpus",
)

_VOCAB = 16_000
_HIDDEN = 512
_HEADS = 8
_FFN = 2_048
_LAYERS = 6
_SEQ = 128


def layernorm_kernel(numel: float, backward: bool = False) -> KernelCharacteristics:
    """Layer normalization: a fused two-pass rowwise kernel."""
    direction = "backward" if backward else "forward"
    return KernelCharacteristics(
        name=f"layer_norm_{direction}",
        grid_blocks=max(1, int(numel // (4 * 256))),
        threads_per_block=256,
        warp_insts=max(1.0, numel * (10.0 if backward else 7.0) / 32.0),
        mix=InstructionMix(fp32=0.40, ld_st=0.35, branch=0.01, sync=0.05),
        memory=MemoryFootprint(
            bytes_read=numel * 4.0 * (3.0 if backward else 1.0),
            bytes_written=numel * 4.0,
            reuse_factor=2.0,
            l1_locality=0.8,
            coalescence=1.0,
            l2_carry_in=K._carry_in(numel * 8.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "norm"),
    )


class TransformerTraining(MLTrainingWorkload):
    """TRF: masked-LM pre-training of a small BERT encoder."""

    base_batch = 32

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 6) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.embedding = Embedding(_VOCAB, _HIDDEN)
        per_layer = (
            4 * _HIDDEN * _HIDDEN  # QKV + output projections
            + 2 * _HIDDEN * _FFN  # FFN up/down
            + 4 * _HIDDEN  # layernorm gains/biases
        )
        params = self.embedding.parameter_count + _LAYERS * per_layer
        self.optimizer = Adam(params)

    def _info(self) -> WorkloadInfo:
        return TRF_INFO

    def setup(self, trace: Trace) -> None:
        trace.add(K.fill_kernel(self.optimizer.parameter_count, op="normal"))

    # ------------------------------------------------------------------
    def _attention_block(self, trace: Trace, rows: int, batch: int) -> None:
        # Fused QKV projection.
        trace.add(K.gemm_kernel(rows, 3 * _HIDDEN, _HIDDEN))
        # Batched score and context GEMMs (per head, batched symbol).
        trace.add(
            K.gemm_kernel(batch * _HEADS * _SEQ, _SEQ, _HIDDEN // _HEADS,
                          name_prefix="bmm_sgemm")
        )
        trace.add(K.softmax_kernel(batch * _HEADS * _SEQ, _SEQ))
        trace.add(K.dropout_kernel(float(batch * _HEADS * _SEQ * _SEQ)))
        trace.add(
            K.gemm_kernel(batch * _HEADS * _SEQ, _HIDDEN // _HEADS, _SEQ,
                          name_prefix="bmm_sgemm")
        )
        # Output projection + residual + norm.
        trace.add(K.gemm_kernel(rows, _HIDDEN, _HIDDEN))
        trace.add(
            K.elementwise_kernel("residual_add", float(rows * _HIDDEN),
                                 inputs=2, insts_per_elem=2.0)
        )
        trace.add(layernorm_kernel(float(rows * _HIDDEN)))

    def _ffn_block(self, trace: Trace, rows: int) -> None:
        trace.add(K.gemm_kernel(rows, _FFN, _HIDDEN))
        trace.add(
            K.elementwise_kernel("gelu", float(rows * _FFN),
                                 insts_per_elem=11.0)
        )
        trace.add(K.gemm_kernel(rows, _HIDDEN, _FFN))
        trace.add(
            K.elementwise_kernel("residual_add", float(rows * _HIDDEN),
                                 inputs=2, insts_per_elem=2.0)
        )
        trace.add(layernorm_kernel(float(rows * _HIDDEN)))

    def _attention_backward(self, trace: Trace, rows: int, batch: int) -> None:
        trace.add(layernorm_kernel(float(rows * _HIDDEN), backward=True))
        trace.add(K.gemm_kernel(rows, _HIDDEN, _HIDDEN, transposed=True))
        trace.add(
            K.gemm_kernel(batch * _HEADS * _SEQ, _SEQ, _HIDDEN // _HEADS,
                          transposed=True, name_prefix="bmm_sgemm")
        )
        trace.add(K.dropout_kernel(float(batch * _HEADS * _SEQ * _SEQ),
                                   backward=True))
        trace.add(K.softmax_kernel(batch * _HEADS * _SEQ, _SEQ,
                                   backward=True))
        trace.add(
            K.gemm_kernel(batch * _HEADS * _SEQ, _HIDDEN // _HEADS, _SEQ,
                          transposed=True, name_prefix="bmm_sgemm")
        )
        trace.add(K.gemm_kernel(rows, 3 * _HIDDEN, _HIDDEN, transposed=True))
        trace.add(K.gemm_kernel(3 * _HIDDEN, _HIDDEN, rows, transposed=True))

    def _ffn_backward(self, trace: Trace, rows: int) -> None:
        trace.add(layernorm_kernel(float(rows * _HIDDEN), backward=True))
        trace.add(K.gemm_kernel(rows, _FFN, _HIDDEN, transposed=True))
        trace.add(
            K.elementwise_kernel("gelu_backward", float(rows * _FFN),
                                 inputs=2, insts_per_elem=11.0)
        )
        trace.add(K.gemm_kernel(rows, _HIDDEN, _FFN, transposed=True))
        trace.add(K.gemm_kernel(_FFN, _HIDDEN, rows, transposed=True))

    # ------------------------------------------------------------------
    def training_step(self, trace: Trace) -> None:
        batch = self.batch
        rows = batch * _SEQ
        tokens = TensorSpec((_SEQ, batch))

        self.optimizer.zero_grad(trace)
        trace.add(K.copy_kernel(float(tokens.numel), op="copy"))
        # Masked-LM corruption of 15% of the tokens.
        trace.add(K.fill_kernel(float(tokens.numel), op="bernoulli"))
        trace.add(
            K.elementwise_kernel("mask_tokens", float(tokens.numel),
                                 inputs=2, insts_per_elem=3.0)
        )

        self.embedding(trace, tokens)
        trace.add(
            K.elementwise_kernel("add_position_embeddings",
                                 float(rows * _HIDDEN), inputs=2,
                                 insts_per_elem=2.0)
        )
        trace.add(layernorm_kernel(float(rows * _HIDDEN)))

        for _ in range(_LAYERS):
            self._attention_block(trace, rows, batch)
            self._ffn_block(trace, rows)

        # Masked-LM head over the masked positions only (~15%).
        masked = max(1, int(rows * 0.15))
        trace.add(K.copy_kernel(float(masked * _HIDDEN), op="gather_masked"))
        trace.add(K.gemm_kernel(masked, _VOCAB, _HIDDEN))
        trace.add(K.log_softmax_kernel(masked, _VOCAB))
        trace.add(K.loss_kernel("nll", float(masked)))
        trace.add(K.loss_kernel("nll", float(masked), backward=True))
        trace.add(K.log_softmax_kernel(masked, _VOCAB, backward=True))
        trace.add(K.gemm_kernel(masked, _HIDDEN, _VOCAB, transposed=True))

        for _ in range(_LAYERS):
            self._ffn_backward(trace, rows)
            self._attention_backward(trace, rows, batch)

        trace.backward()  # embedding gradients
        trace.add(K.reduce_kernel(float(self.optimizer.parameter_count),
                                  name="reduce_grad_norm"))
        trace.add(
            K.elementwise_kernel("clip_grad_scale",
                                 float(self.optimizer.parameter_count),
                                 insts_per_elem=3.0)
        )
        self.optimizer.step(trace)
