"""PGR: Gunrock-style PageRank over the social graph.

Unlike BFS, PageRank keeps *every* edge active every iteration: the
per-iteration kernel stream is an all-edges SpMV-style advance, a rank
update, and a convergence reduction — a second graph pattern with a
very different dominance profile (few, fat, perfectly repetitive
launches) that complements GST/GRU.

The iteration count is real: the workload runs power iterations over
the generated graph until the L1 rank delta crosses the tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    LaunchStream,
    MemoryFootprint,
)
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.generator import social_network

PGR_INFO = WorkloadInfo(
    name="PageRank",
    abbr="PGR",
    suite="CactusExt",
    domain="Graph",
    description="PageRank power iteration (Gunrock-style)",
    dataset="SOC-Twitter10",
)

_SOCIAL_VERTICES = 21_000_000
_MIN_VERTICES = 20_000


def _spmv_advance_kernel(n: int, edges: int) -> KernelCharacteristics:
    """rank' += rank[src]/deg[src] over every edge (scattered gather)."""
    return KernelCharacteristics(
        name="pagerank_spmv_advance",
        grid_blocks=max(1, edges // 256),
        threads_per_block=256,
        warp_insts=max(1.0, edges * 14.0 / 32.0),
        mix=InstructionMix(fp32=0.25, ld_st=0.40, branch=0.06, sync=0.01),
        memory=MemoryFootprint(
            bytes_read=edges * 8.0 + n * 12.0,
            bytes_written=n * 4.0,
            reuse_factor=1.8,  # rank vector re-hit through L2
            l1_locality=0.1,
            coalescence=0.3,
        ),
        ilp=1.6,
        mlp=4.0,
        tags=("graph", "pagerank"),
    )


def _rank_update_kernel(n: int) -> KernelCharacteristics:
    """rank = (1-d)/N + d * accum (streaming)."""
    return KernelCharacteristics(
        name="pagerank_rank_update",
        grid_blocks=max(1, n // 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 6.0 / 32.0),
        mix=InstructionMix(fp32=0.40, ld_st=0.40, branch=0.01, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n * 8.0, bytes_written=n * 4.0, coalescence=1.0
        ),
        ilp=4.0,
        mlp=8.0,
        tags=("graph", "pagerank"),
    )


def _delta_reduce_kernel(n: int) -> KernelCharacteristics:
    """Convergence check: sum |rank' - rank|."""
    return KernelCharacteristics(
        name="pagerank_delta_reduce",
        grid_blocks=max(1, n // 512),
        threads_per_block=512,
        warp_insts=max(4.0, n * 3.0 / 32.0),
        mix=InstructionMix(fp32=0.30, ld_st=0.32, branch=0.03, sync=0.08),
        memory=MemoryFootprint(
            bytes_read=n * 8.0, bytes_written=512.0, coalescence=1.0
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("graph", "pagerank"),
    )


class PageRankWorkload(Workload):
    """PGR: power-iteration PageRank on the social graph."""

    repetitive = True
    damping = 0.85
    tolerance = 1e-4
    max_iterations = 60

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        super().__init__(PGR_INFO, scale=scale, seed=seed)

    def _build_graph(self) -> CSRGraph:
        n = max(_MIN_VERTICES, int(_SOCIAL_VERTICES * self.scale))
        return social_network(n, seed=self.seed)

    def launch_stream(self) -> LaunchStream:
        graph = self._build_graph()
        n = graph.num_vertices
        edges = graph.num_edges
        degrees = np.maximum(1, graph.out_degrees()).astype(np.float64)

        rank = np.full(n, 1.0 / n)
        stream = LaunchStream()
        stream.launch(_rank_update_kernel(n), phase="init")

        for iteration in range(self.max_iterations):
            # The actual power iteration (dangling mass folded into the
            # teleport term).
            contribution = rank / degrees
            accumulated = np.zeros(n)
            np.add.at(accumulated, graph.indices,
                      np.repeat(contribution, np.diff(graph.indptr)))
            updated = (1.0 - self.damping) / n + self.damping * accumulated
            updated /= updated.sum()
            delta = float(np.abs(updated - rank).sum())
            rank = updated

            phase = f"iter{iteration}"
            stream.launch(_spmv_advance_kernel(n, edges), phase=phase)
            stream.launch(_rank_update_kernel(n), phase=phase)
            stream.launch(_delta_reduce_kernel(n), phase=phase)
            if delta < self.tolerance:
                break
        return stream

    # ------------------------------------------------------------------
    def reference_ranks(self) -> np.ndarray:
        """The converged PageRank vector (for correctness tests)."""
        graph = self._build_graph()
        n = graph.num_vertices
        degrees = np.maximum(1, graph.out_degrees()).astype(np.float64)
        rank = np.full(n, 1.0 / n)
        for _ in range(self.max_iterations):
            contribution = rank / degrees
            accumulated = np.zeros(n)
            np.add.at(accumulated, graph.indices,
                      np.repeat(contribution, np.diff(graph.indptr)))
            updated = (1.0 - self.damping) / n + self.damping * accumulated
            updated /= updated.sum()
            if float(np.abs(updated - rank).sum()) < self.tolerance:
                return updated
            rank = updated
        return rank
