"""Extension workloads (the paper's future work, Section VI).

The paper plans to "extend Cactus by analyzing and including additional
modern-day applications".  This package adds three, registered under
the ``CactusExt`` suite:

* :class:`TransformerTraining` (TRF) — BERT-style encoder pre-training,
  the dominant ML workload to emerge after the paper's snapshot;
* :class:`PageRankWorkload` (PGR) — Gunrock-style PageRank over the
  social graph (a second, all-edges-active graph pattern);
* :class:`GCNTraining` (GCN) — graph-convolutional-network training,
  which mixes the graph substrate's irregular gathers with the ML
  substrate's dense GEMMs in a single application.
"""

from repro.workloads.extensions.gcn import GCNTraining
from repro.workloads.extensions.pagerank import PageRankWorkload
from repro.workloads.extensions.transformer import TransformerTraining

__all__ = ["GCNTraining", "PageRankWorkload", "TransformerTraining"]
