"""Registration of the ten Cactus workloads (Table I)."""

from __future__ import annotations

from repro.workloads.graphs.bfs import RoadBFS, SocialBFS
from repro.workloads.ml.models.dcgan import DCGANTraining
from repro.workloads.ml.models.dqn import ReinforcementLearningTraining
from repro.workloads.ml.models.neural_style import NeuralStyleTraining
from repro.workloads.ml.models.seq2seq import LanguageTranslationTraining
from repro.workloads.ml.models.spatial_transformer import (
    SpatialTransformerTraining,
)
from repro.workloads.molecular.gromacs import GromacsNPT
from repro.workloads.molecular.lammps import LammpsColloid, LammpsRhodopsin
from repro.workloads.registry import register_workload

for abbr, cls in (
    ("GMS", GromacsNPT),
    ("LMR", LammpsRhodopsin),
    ("LMC", LammpsColloid),
    ("GST", SocialBFS),
    ("GRU", RoadBFS),
    ("DCG", DCGANTraining),
    ("NST", NeuralStyleTraining),
    ("RFL", ReinforcementLearningTraining),
    ("SPT", SpatialTransformerTraining),
    ("LGT", LanguageTranslationTraining),
):
    register_workload(abbr, "Cactus", cls)
