"""Registration of the extension workloads (future-work suite)."""

from __future__ import annotations

from repro.workloads.extensions.gcn import GCNTraining
from repro.workloads.extensions.pagerank import PageRankWorkload
from repro.workloads.extensions.transformer import TransformerTraining
from repro.workloads.registry import register_workload

for abbr, cls in (
    ("TRF", TransformerTraining),
    ("PGR", PageRankWorkload),
    ("GCN", GCNTraining),
):
    register_workload(abbr, "CactusExt", cls)
