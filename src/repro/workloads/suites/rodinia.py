"""The eighteen Rodinia benchmarks of Table III.

Kernel structures follow the Rodinia sources.  The paper's Fig. 4
observations are encoded algorithmically: only LUD mixes memory- and
compute-intensive kernels; B+tree's two kernels are both compute-side;
Kmeans and SRAD v1 run two memory-side kernels; everything else is a
single-dominant-kernel benchmark.
"""

from __future__ import annotations

from repro.workloads.registry import register_workload
from repro.workloads.suites.common import KernelSpec, benchmark_factory

_SUITE = "Rodinia"


def _register(abbr, name, problem_size, kernels, description="", iterations=16):
    register_workload(
        abbr,
        _SUITE,
        benchmark_factory(
            name, abbr, _SUITE, problem_size, kernels,
            description=description, iterations=iterations,
        ),
    )


# B+tree: two query kernels (point and range), both compute-side — the
# tree fits in cache and the work is key comparisons.
_register(
    "BTREE", "b+tree", 1_000_000,
    [
        KernelSpec("findK", "compute",
                   thread_insts_per_elem=260.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=2.0),
        KernelSpec("findRangeK", "compute", elems=0.6,
                   thread_insts_per_elem=280.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=2.0),
    ],
    description="B+tree queries",
)

# Backprop: a forward layer pass and a weight adjustment, both
# streaming over the weight matrix.
_register(
    "BACKPROP", "backprop", 4_000_000,
    [
        KernelSpec("bpnn_layerforward_CUDA", "stream",
                   thread_insts_per_elem=24.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=4.0),
        KernelSpec("bpnn_adjust_weights_cuda", "stream", elems=0.8,
                   thread_insts_per_elem=18.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=8.0),
    ],
    description="Neural-network training",
)

# Rodinia BFS: the classic two-kernel level-synchronous formulation.
_register(
    "R-BFS", "bfs", 1_000_000,
    [
        KernelSpec("Kernel", "irregular",
                   thread_insts_per_elem=22.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=4.0),
        KernelSpec("Kernel2", "irregular", elems=0.7,
                   thread_insts_per_elem=10.0,
                   bytes_read_per_elem=6.0, bytes_written_per_elem=3.0),
    ],
    description="Breadth-first search",
)

# CFD solver: flux computation dominates, arithmetic-dense.
_register(
    "CFD", "cfd", 200_000,
    [
        KernelSpec("cuda_compute_flux", "compute",
                   thread_insts_per_elem=640.0,
                   bytes_read_per_elem=18.0, bytes_written_per_elem=10.0),
        KernelSpec("cuda_time_step", "compute", elems=0.1,
                   thread_insts_per_elem=420.0,
                   bytes_read_per_elem=6.0, bytes_written_per_elem=4.0),
    ],
    description="Euler CFD solver",
)

# 2D discrete wavelet transform: streaming filter over the image.
_register(
    "DWT2D", "dwt2d", 3_000_000,
    [
        KernelSpec("fdwt53Kernel", "stream",
                   thread_insts_per_elem=30.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=8.0),
    ],
    description="2D discrete wavelet transform",
)

# Gaussian elimination (4K matrix): the row-update Fan2 kernel is a
# huge streaming pass; Fan1 is a sliver.
_register(
    "GAUSSIAN", "gaussian (4K)", 4_000_000,
    [
        KernelSpec("Fan2", "stream",
                   thread_insts_per_elem=14.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=4.0),
        KernelSpec("Fan1", "stream", elems=0.002,
                   thread_insts_per_elem=8.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
    ],
    description="Gaussian elimination",
)

# Heart-wall tracking: dense per-point template correlation.
_register(
    "HEARTWALL", "heartwall", 150_000,
    [
        KernelSpec("heartwall_kernel", "compute",
                   thread_insts_per_elem=1100.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=4.0),
    ],
    description="Heart-wall tracking",
)

# Hotspot3D: 3D thermal stencil, bandwidth-bound.
_register(
    "HOTSPOT3D", "hotspot3d", 4_000_000,
    [
        KernelSpec("hotspotOpt1", "stream",
                   thread_insts_per_elem=26.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=4.0),
    ],
    description="3D thermal simulation",
)

# Huffman decoding: serial bit-twiddling with data-dependent control.
_register(
    "HUFFMAN", "huffman", 2_000_000,
    [
        KernelSpec("vlc_encode_kernel_sm64huff", "irregular",
                   thread_insts_per_elem=34.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
    ],
    description="Huffman encoding",
)

# Kmeans: distance kernel + membership inversion, both memory-side.
_register(
    "KMEANS", "kmeans", 1_000_000,
    [
        KernelSpec("kmeansPoint", "stream",
                   thread_insts_per_elem=70.0,
                   bytes_read_per_elem=140.0, bytes_written_per_elem=4.0),
        KernelSpec("invert_mapping", "stream", elems=0.9,
                   thread_insts_per_elem=10.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=12.0),
    ],
    description="K-means clustering",
)

# LavaMD: particle interactions inside neighbour boxes, FMA-dense.
_register(
    "LAVAMD", "lavamd", 250_000,
    [
        KernelSpec("kernel_gpu_cuda", "compute",
                   thread_insts_per_elem=1500.0,
                   bytes_read_per_elem=22.0, bytes_written_per_elem=16.0),
    ],
    description="N-body molecular dynamics",
)

# Leukocyte tracking: per-cell iterative snake evolution, compute-side.
_register(
    "LEUKOCYTE", "leukocyte", 120_000,
    [
        KernelSpec("IMGVF_kernel", "compute",
                   thread_insts_per_elem=1300.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=8.0),
    ],
    description="Leukocyte tracking",
)

# LUD: the paper's named exception — a memory-intensive perimeter
# kernel and a compute-intensive internal kernel (plus the tiny
# diagonal factorization).  Three kernels for 70 % of the time.
_register(
    "LUD", "lud", 2_000_000,
    [
        KernelSpec("lud_internal", "compute",
                   thread_insts_per_elem=500.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
        KernelSpec("lud_perimeter", "stream", elems=1.0,
                   thread_insts_per_elem=24.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=8.0),
        KernelSpec("lud_diagonal", "stream", elems=1.0,
                   thread_insts_per_elem=20.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=8.0),
    ],
    description="LU decomposition",
)

# Nearest neighbour: one streaming distance pass over the records.
_register(
    "NN", "nn", 4_000_000,
    [
        KernelSpec("euclid", "stream",
                   thread_insts_per_elem=16.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
    ],
    description="k-nearest neighbours",
)

# Needleman-Wunsch: anti-diagonal wavefront over the score matrix.
_register(
    "NW", "nw", 2_000_000,
    [
        KernelSpec("needle_cuda_shared_1", "stream",
                   thread_insts_per_elem=28.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=8.0),
        KernelSpec("needle_cuda_shared_2", "stream", elems=0.08,
                   thread_insts_per_elem=28.0,
                   bytes_read_per_elem=16.0, bytes_written_per_elem=8.0),
    ],
    description="Needleman-Wunsch alignment",
)

# Pathfinder: dynamic-programming row sweep, bandwidth-bound.
_register(
    "PATHFINDER", "pathfinder", 4_000_000,
    [
        KernelSpec("dynproc_kernel", "stream",
                   thread_insts_per_elem=18.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=4.0),
    ],
    description="Grid dynamic programming",
)

# SRAD v1: the two diffusion kernels, both memory-side (Fig. 4).
_register(
    "SRAD", "srad_v1", 3_000_000,
    [
        KernelSpec("srad_cuda_1", "stream",
                   thread_insts_per_elem=30.0,
                   bytes_read_per_elem=24.0, bytes_written_per_elem=16.0),
        KernelSpec("srad_cuda_2", "stream", elems=0.9,
                   thread_insts_per_elem=26.0,
                   bytes_read_per_elem=24.0, bytes_written_per_elem=8.0),
    ],
    description="Speckle-reducing anisotropic diffusion",
)

# Streamcluster: distance evaluations against candidate centres.
_register(
    "STREAMCLUSTER", "streamcluster", 1_000_000,
    [
        KernelSpec("kernel_compute_cost", "stream",
                   thread_insts_per_elem=60.0,
                   bytes_read_per_elem=70.0, bytes_written_per_elem=4.0),
    ],
    description="Online clustering",
)
