"""Benchmark-suite registrations.

Importing this package registers every workload: the ten Cactus
applications (Table I) and the 32 Parboil/Rodinia/Tango baselines
(Table III).
"""

import repro.workloads.suites.cactus  # noqa: F401
import repro.workloads.suites.extensions  # noqa: F401
import repro.workloads.suites.parboil  # noqa: F401
import repro.workloads.suites.rodinia  # noqa: F401
import repro.workloads.suites.tango  # noqa: F401

from repro.workloads.suites.common import (
    BottomUpBenchmark,
    KernelSpec,
    benchmark_factory,
)

__all__ = ["BottomUpBenchmark", "KernelSpec", "benchmark_factory"]
