"""Bottom-up benchmark machinery for the Parboil/Rodinia/Tango models.

The baseline suites are kernel-centric by design (Section II.B): each
benchmark runs one to three kernels with *unambiguous* behaviour.  We
model every Table III benchmark as a :class:`BottomUpBenchmark` built
from a few :class:`KernelSpec` records whose per-element costs follow
the benchmark's algorithm (a GEMM is FMA-dense with tile reuse, a
stencil streams its grid, a BFS gathers randomly, ...).

Four behavioural archetypes cover the suites:

``compute``
    FMA-dense with on-chip tile reuse (GEMM, n-body, cutoff potentials).
``stream``
    Bandwidth-bound unit-stride traffic (LBM, stencils, reductions).
``irregular``
    Data-dependent gathers with poor coalescing (BFS, SpMV, Huffman).
``atomic``
    Conflict-heavy scattered updates (histogramming, gridding).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    LaunchStream,
    MemoryFootprint,
)
from repro.workloads.base import Workload, WorkloadInfo

#: Archetype profiles: (mix, reuse, l1_locality, coalescence, ilp, mlp).
_PROFILES: Dict[str, Tuple[InstructionMix, float, float, float, float, float]] = {
    "compute": (
        InstructionMix(fp32=0.55, ld_st=0.15, branch=0.04, sync=0.03),
        4.0, 0.85, 1.0, 3.0, 4.0,
    ),
    "stream": (
        InstructionMix(fp32=0.30, ld_st=0.40, branch=0.03, sync=0.01),
        1.0, 0.3, 1.0, 3.0, 8.0,
    ),
    "irregular": (
        InstructionMix(fp32=0.10, ld_st=0.40, branch=0.14, sync=0.02),
        1.3, 0.15, 0.25, 1.4, 2.0,
    ),
    "atomic": (
        InstructionMix(fp32=0.15, ld_st=0.42, branch=0.08, sync=0.04),
        1.5, 0.1, 0.3, 1.6, 2.5,
    ),
}


@dataclass(frozen=True)
class KernelSpec:
    """Per-element cost model for one benchmark kernel."""

    name: str
    profile: str
    #: Elements this kernel processes, as a fraction of the benchmark's
    #: problem size (e.g. the small second kernel of BFS touches only
    #: the frontier, not the whole graph).
    elems: float = 1.0
    thread_insts_per_elem: float = 20.0
    bytes_read_per_elem: float = 8.0
    bytes_written_per_elem: float = 4.0
    threads_per_block: int = 256
    #: Launches per benchmark iteration.
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.profile not in _PROFILES:
            raise ValueError(
                f"unknown profile {self.profile!r}; known: {sorted(_PROFILES)}"
            )
        if self.elems <= 0 or self.thread_insts_per_elem <= 0:
            raise ValueError("elems and instruction costs must be positive")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    def _jitter(self, index: int, low: float, high: float) -> float:
        """Deterministic per-kernel perturbation factor in [low, high].

        Every real benchmark has its own instruction mix and latency
        characteristics even within an archetype; a stable hash of the
        kernel name provides that idiosyncrasy without randomness.
        """
        digest = hashlib.md5(self.name.encode()).digest()
        fraction = digest[index % len(digest)] / 255.0
        return low + fraction * (high - low)

    def build(self, problem_size: int) -> KernelCharacteristics:
        """Materialize the kernel for a given problem size."""
        n = max(1.0, problem_size * self.elems)
        base_mix, reuse, l1, coal, ilp, mlp = _PROFILES[self.profile]
        # Per-kernel idiosyncrasy on mix/latency knobs only; the
        # bytes/coalescence that determine instruction intensity stay
        # as specified.
        mix = InstructionMix(
            fp32=min(0.7, base_mix.fp32 * self._jitter(0, 0.7, 1.3)),
            ld_st=min(0.55, base_mix.ld_st * self._jitter(1, 0.7, 1.35)),
            branch=min(0.2, base_mix.branch * self._jitter(2, 0.4, 1.8)),
            sync=min(0.1, base_mix.sync * self._jitter(3, 0.3, 2.0)),
        )
        l1 = min(0.95, max(0.0, l1 + self._jitter(6, -0.12, 0.12)))
        return KernelCharacteristics(
            name=self.name,
            grid_blocks=max(1, math.ceil(n / self.threads_per_block)),
            threads_per_block=self.threads_per_block,
            warp_insts=max(1.0, n * self.thread_insts_per_elem / 32.0),
            mix=mix,
            memory=MemoryFootprint(
                bytes_read=max(4.0, n * self.bytes_read_per_elem),
                bytes_written=n * self.bytes_written_per_elem,
                reuse_factor=reuse,
                l1_locality=l1,
                coalescence=coal,
            ),
            ilp=ilp * self._jitter(4, 0.7, 1.5),
            mlp=mlp * self._jitter(5, 0.6, 1.6),
            tags=("bottom-up", self.profile),
        )


class BottomUpBenchmark(Workload):
    """A Parboil/Rodinia/Tango-style benchmark: few kernels, iterated."""

    repetitive = True

    def __init__(
        self,
        info: WorkloadInfo,
        problem_size: int,
        kernels: Sequence[KernelSpec],
        iterations: int = 16,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        super().__init__(info, scale=scale, seed=seed)
        if problem_size < 1:
            raise ValueError("problem_size must be >= 1")
        if not kernels:
            raise ValueError("a benchmark needs at least one kernel")
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.problem_size = max(1024, int(problem_size * scale))
        self.kernels = tuple(kernels)
        self.iterations = iterations

    def launch_stream(self) -> LaunchStream:
        stream = LaunchStream()
        for iteration in range(self.iterations):
            for spec in self.kernels:
                kernel = spec.build(self.problem_size)
                for _ in range(spec.repeats):
                    stream.launch(kernel, phase=f"iter{iteration}")
        return stream


def benchmark_factory(
    name: str,
    abbr: str,
    suite: str,
    problem_size: int,
    kernels: Sequence[KernelSpec],
    description: str = "",
    iterations: int = 16,
):
    """Create a registry factory for one bottom-up benchmark."""
    info = WorkloadInfo(
        name=name,
        abbr=abbr,
        suite=suite,
        domain="BottomUp",
        description=description,
    )

    def factory(scale: float = 1.0, seed: int = 0) -> BottomUpBenchmark:
        return BottomUpBenchmark(
            info,
            problem_size=problem_size,
            kernels=kernels,
            iterations=iterations,
            scale=scale,
            seed=seed,
        )

    return factory
