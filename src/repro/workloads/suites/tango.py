"""The three Tango DNN benchmarks of Table III (AN, RN, SN).

Tango implements its networks with hand-written CUDA kernels (no
CuDNN), so each network runs a *few generic* layer kernels rather than
dozens of specialized ones — the bottom-up structure the paper
contrasts Cactus against.  Per Fig. 4: SN's and RN's kernels are all
compute-intensive; AN is the exception with two compute-intensive
convolution kernels and one memory-intensive fully-connected kernel.
"""

from __future__ import annotations

from repro.workloads.registry import register_workload
from repro.workloads.suites.common import KernelSpec, benchmark_factory

_SUITE = "Tango"


def _register(abbr, name, problem_size, kernels, description=""):
    register_workload(
        abbr,
        _SUITE,
        benchmark_factory(
            name, abbr, _SUITE, problem_size, kernels,
            description=description, iterations=12,
        ),
    )


# AlexNet: big early convolutions (compute) + the fat fc6/fc7 layers
# that stream enormous weight matrices (memory) — the mixed exception.
_register(
    "AN", "alexnet", 800_000,
    [
        KernelSpec("conv_layer_kernel_large", "compute",
                   thread_insts_per_elem=700.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=6.0),
        KernelSpec("conv_layer_kernel_small", "compute", elems=0.8,
                   thread_insts_per_elem=620.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=6.0),
        KernelSpec("fc_layer_kernel", "stream", elems=0.5,
                   thread_insts_per_elem=20.0,
                   bytes_read_per_elem=52.0, bytes_written_per_elem=2.0),
    ],
    description="AlexNet inference (custom CUDA)",
)

# ResNet: the 3x3 and 1x1 convolution kernels, both compute-side.
_register(
    "RN", "resnet", 900_000,
    [
        KernelSpec("conv3x3_layer_kernel", "compute",
                   thread_insts_per_elem=560.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=5.0),
        KernelSpec("conv1x1_layer_kernel", "compute", elems=0.7,
                   thread_insts_per_elem=380.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=5.0),
    ],
    description="ResNet inference (custom CUDA)",
)

# SqueezeNet: fire-module squeeze/expand kernels, both compute-side.
_register(
    "SN", "squeezenet", 700_000,
    [
        KernelSpec("fire_expand_kernel", "compute",
                   thread_insts_per_elem=480.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=5.0),
        KernelSpec("fire_squeeze_kernel", "compute", elems=0.6,
                   thread_insts_per_elem=360.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=5.0),
    ],
    description="SqueezeNet inference (custom CUDA)",
)
