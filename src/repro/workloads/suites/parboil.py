"""The eleven Parboil benchmarks of Table III.

Each model follows the benchmark's published algorithm structure:
kernel count, per-element arithmetic/byte costs, and access pattern.
Most spend >= 70 % of GPU time in a single kernel (Fig. 2), and each
benchmark's kernels sit on one side of the roofline elbow (Fig. 4).
"""

from __future__ import annotations

from repro.workloads.registry import register_workload
from repro.workloads.suites.common import KernelSpec, benchmark_factory

_SUITE = "Parboil"


def _register(abbr, name, problem_size, kernels, description="", iterations=16):
    register_workload(
        abbr,
        _SUITE,
        benchmark_factory(
            name, abbr, _SUITE, problem_size, kernels,
            description=description, iterations=iterations,
        ),
    )


# BFS on a 1M-node graph: irregular frontier expansion dominates; a tiny
# flag-reset kernel runs each level.  All kernels memory-intensive.
_register(
    "P-BFS", "bfs (1M)", 1_000_000,
    [
        KernelSpec("BFS_kernel", "irregular",
                   thread_insts_per_elem=24.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=4.0),
        KernelSpec("BFS_flag_reset", "stream", elems=0.02,
                   thread_insts_per_elem=4.0,
                   bytes_read_per_elem=1.0, bytes_written_per_elem=4.0),
    ],
    description="Breadth-first search",
)

# Cutoff Coulomb potential: dense short-range interactions, on-chip
# reuse of the atom bins -> strongly compute-intensive.
_register(
    "CUTCP", "cutcp", 500_000,
    [
        KernelSpec("cuda_cutoff_potential_lattice", "compute",
                   thread_insts_per_elem=420.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=4.0),
    ],
    description="Cutoff Coulombic potential",
)

# Histogramming: conflict-heavy atomic scatter plus a small final
# accumulation; both memory-intensive (Fig. 4 exception list).
_register(
    "HISTO", "histo", 4_000_000,
    [
        KernelSpec("histo_main_kernel", "atomic",
                   thread_insts_per_elem=16.0,
                   bytes_read_per_elem=4.0, bytes_written_per_elem=2.0),
        KernelSpec("histo_final_kernel", "stream", elems=0.03,
                   thread_insts_per_elem=8.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
    ],
    description="Saturating histogram",
)

# Lattice-Boltzmann: one big streaming stencil over the fluid lattice.
_register(
    "LBM", "lbm", 3_000_000,
    [
        KernelSpec("performStreamCollide_kernel", "stream",
                   thread_insts_per_elem=90.0,
                   bytes_read_per_elem=76.0, bytes_written_per_elem=76.0),
    ],
    description="Lattice-Boltzmann method",
)

# MRI gridding: scattered sample deposition onto the Cartesian grid.
_register(
    "MRI-G", "mri-gridding", 2_000_000,
    [
        KernelSpec("binning_kernel", "atomic",
                   thread_insts_per_elem=30.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=6.0),
        KernelSpec("reorder_kernel", "stream", elems=0.05,
                   thread_insts_per_elem=6.0,
                   bytes_read_per_elem=8.0, bytes_written_per_elem=8.0),
    ],
    description="MRI gridding",
)

# MRI-Q: Fourier-transform Q computation; trigonometry-dense.
_register(
    "MRI-Q", "mri-q", 2_000_000,
    [
        KernelSpec("ComputeQ_GPU", "compute",
                   thread_insts_per_elem=760.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=8.0),
        KernelSpec("ComputePhiMag_GPU", "compute", elems=0.02,
                   thread_insts_per_elem=280.0,
                   bytes_read_per_elem=6.0, bytes_written_per_elem=3.0),
    ],
    description="MRI Q-matrix",
)

# Sum of absolute differences (video encoding): integer-dense with
# sliding-window reuse but large frame traffic -> memory side.
_register(
    "SAD", "sad", 2_500_000,
    [
        KernelSpec("mb_sad_calc", "stream",
                   thread_insts_per_elem=40.0,
                   bytes_read_per_elem=24.0, bytes_written_per_elem=8.0),
        KernelSpec("larger_sad_calc", "stream", elems=0.1,
                   thread_insts_per_elem=10.0,
                   bytes_read_per_elem=10.0, bytes_written_per_elem=4.0),
    ],
    description="Sum of absolute differences",
)

# Dense single-precision GEMM (the canonical compute kernel).
_register(
    "SGEMM", "sgemm", 1_048_576,
    [
        KernelSpec("mysgemmNT", "compute",
                   thread_insts_per_elem=1024.0,  # the k-loop
                   bytes_read_per_elem=8.0, bytes_written_per_elem=4.0),
    ],
    description="Dense matrix multiply",
)

# Sparse matrix-vector product: gather x[col[j]] at random.
_register(
    "SPMV", "spmv", 1_500_000,
    [
        KernelSpec("spmv_jds_naive", "irregular",
                   thread_insts_per_elem=28.0,
                   bytes_read_per_elem=14.0, bytes_written_per_elem=4.0),
    ],
    description="Sparse matrix-vector multiply",
)

# 7-point 3D stencil: classic bandwidth-bound kernel.
_register(
    "STENCIL", "stencil", 4_000_000,
    [
        KernelSpec("block2D_hybrid_coarsen_x", "stream",
                   thread_insts_per_elem=22.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=4.0),
    ],
    description="3D 7-point stencil",
)

# Two-point angular correlation: histogram of pairwise angles, but the
# per-pair math dominates -> compute-intensive.
_register(
    "TPACF", "tpacf", 200_000,
    [
        KernelSpec("gen_hists", "compute",
                   thread_insts_per_elem=900.0,
                   bytes_read_per_elem=12.0, bytes_written_per_elem=2.0),
    ],
    description="Two-point angular correlation",
)
