"""Workload abstraction.

A workload describes itself (name, suite, domain, input data set — the
columns of Tables I and III) and produces a kernel launch stream when
run.  Scale is controlled by a ``scale`` parameter in (0, 1]: 1.0 is the
paper's input size; smaller values shrink the problem proportionally so
the full pipeline runs on a laptop.  Workload models must keep their
*structure* (which kernels run, in what ratios) invariant under scaling.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.gpu.kernel import LaunchStream


@dataclass(frozen=True)
class WorkloadInfo:
    """Static description of a workload (Table I / Table III columns)."""

    name: str
    abbr: str
    suite: str
    domain: str
    description: str = ""
    dataset: str = ""


class Workload(abc.ABC):
    """Base class for all benchmark models."""

    #: Repetitive workloads (MD steps, training iterations) are cropped
    #: to a steady-state window by the profiler, like in the paper.
    repetitive: bool = False

    def __init__(self, info: WorkloadInfo, scale: float = 1.0, seed: int = 0) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        self.info = info
        self.scale = scale
        self.seed = seed

    # -- identity -------------------------------------------------------
    @property
    def name(self) -> str:
        return self.info.name

    @property
    def abbr(self) -> str:
        return self.info.abbr

    @property
    def suite(self) -> str:
        return self.info.suite

    @property
    def domain(self) -> str:
        return self.info.domain

    @property
    def dataset(self) -> str:
        return self.info.dataset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(abbr={self.abbr!r}, suite={self.suite!r}, "
            f"scale={self.scale})"
        )

    # -- behaviour --------------------------------------------------------
    @abc.abstractmethod
    def launch_stream(self) -> LaunchStream:
        """Run the workload model and emit its kernel launches."""
