"""Workload substrate: the benchmarks themselves.

Every benchmark analysed in the paper is modelled as a
:class:`~repro.workloads.base.Workload` that, when run, produces a
kernel :class:`~repro.gpu.kernel.LaunchStream`.  The Cactus workloads
are full application models (an MD engine, a Gunrock-style BFS, a
shape-level deep-learning framework); the Parboil/Rodinia/Tango
baselines are bottom-up kernel benchmarks.
"""

from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.registry import (
    cactus_workloads,
    get_workload,
    list_suites,
    list_workloads,
    prt_workloads,
    register_workload,
)

__all__ = [
    "Workload",
    "WorkloadInfo",
    "cactus_workloads",
    "get_workload",
    "list_suites",
    "list_workloads",
    "prt_workloads",
    "register_workload",
]
