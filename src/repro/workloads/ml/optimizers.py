"""Optimizers: zero-grad + the unfused per-op update kernels.

PyTorch 1.7's optimizers are *not* fused: each step launches a short
sequence of pointwise kernels over the parameter tensors (``mul_``,
``add_``, ``addcmul_``, ``addcdiv_``, ``sqrt``, ...), which is both why
the optimizer rarely shows up as a single dominant kernel and why ML
traces contain so many distinct elementwise symbols.
"""

from __future__ import annotations

from repro.workloads.ml import kernels as K
from repro.workloads.ml.trace import Trace


class Optimizer:
    """Base optimizer over a parameter count."""

    def __init__(self, parameter_count: int) -> None:
        if parameter_count < 1:
            raise ValueError("parameter_count must be >= 1")
        self.parameter_count = parameter_count

    def zero_grad(self, trace: Trace) -> None:
        trace.add(K.fill_kernel(self.parameter_count, op="zero"))

    def step(self, trace: Trace) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum: three pointwise passes over the parameters."""

    def step(self, trace: Trace) -> None:
        p = float(self.parameter_count)
        # buf = momentum * buf
        trace.add(K.elementwise_kernel("mul_scalar", p, insts_per_elem=2.0))
        # buf += grad
        trace.add(
            K.elementwise_kernel("add_tensor", p, inputs=2, insts_per_elem=2.0)
        )
        # param -= lr * buf
        trace.add(
            K.elementwise_kernel("axpy", p, inputs=2, insts_per_elem=3.0)
        )


class Adam(Optimizer):
    """Adam: the classic six-kernel unfused update sequence."""

    def step(self, trace: Trace) -> None:
        p = float(self.parameter_count)
        # exp_avg = beta1 * exp_avg  /  exp_avg_sq = beta2 * exp_avg_sq
        trace.add(K.elementwise_kernel("mul_scalar", p, insts_per_elem=2.0))
        trace.add(K.elementwise_kernel("mul_scalar", p, insts_per_elem=2.0))
        # exp_avg += (1 - beta1) * grad
        trace.add(
            K.elementwise_kernel("add_tensor", p, inputs=2, insts_per_elem=2.0)
        )
        # exp_avg_sq += (1 - beta2) * grad * grad
        trace.add(
            K.elementwise_kernel("addcmul", p, inputs=3, insts_per_elem=3.0)
        )
        # denom = sqrt(exp_avg_sq) + eps
        trace.add(K.elementwise_kernel("sqrt_add", p, insts_per_elem=4.0))
        # param -= lr * exp_avg / denom
        trace.add(
            K.elementwise_kernel("addcdiv", p, inputs=3, insts_per_elem=5.0)
        )
