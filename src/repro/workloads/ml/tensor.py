"""Tensor shape metadata.

The framework never materializes tensor *values* — kernels are costed
entirely from shapes, which is all a profiler-level reproduction needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TensorSpec:
    """Shape (and element size) of a tensor flowing through the model."""

    shape: Tuple[int, ...]
    dtype_bytes: int = 4  # fp32, as in the paper's single-precision runs

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("shape must be non-empty")
        if any(dim <= 0 for dim in self.shape):
            raise ValueError(f"shape dims must be positive, got {self.shape}")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def numel(self) -> int:
        return math.prod(self.shape)

    @property
    def bytes(self) -> int:
        return self.numel * self.dtype_bytes

    @property
    def batch(self) -> int:
        return self.shape[0]

    def reshape(self, *shape: int) -> "TensorSpec":
        """Reshape with one optional -1 wildcard (numel-preserving)."""
        shape_list = list(shape)
        if shape_list.count(-1) > 1:
            raise ValueError("at most one -1 allowed in reshape")
        if -1 in shape_list:
            known = math.prod(d for d in shape_list if d != -1)
            if known == 0 or self.numel % known:
                raise ValueError(
                    f"cannot reshape {self.shape} to {tuple(shape)}"
                )
            shape_list[shape_list.index(-1)] = self.numel // known
        result = TensorSpec(tuple(shape_list), self.dtype_bytes)
        if result.numel != self.numel:
            raise ValueError(
                f"reshape changes element count: {self.shape} -> {tuple(shape)}"
            )
        return result

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(d) for d in self.shape)
