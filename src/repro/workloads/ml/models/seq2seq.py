"""LGT: sequence-to-sequence translation training (Table I).

The torchtext tutorial model the paper profiles: a German-to-English
encoder/decoder with Bahdanau attention on a Spacy-tokenized corpus —
a *bidirectional GRU* encoder, a per-step attentive GRU decoder with a
large vocabulary projection, teacher forcing, padding masks, gradient
clipping and Adam.

The hand-written per-timestep loop is what gives LGT the largest kernel
menu of the suite (Table I: 66 distinct kernels): every decoder step
launches projection GEMMs at several shapes, attention score/softmax/
context kernels, *unfused* GRU gate kernels, slicing/concatenation
utilities, and the output projection; PyTorch 1.7's unfused Adam adds
its six pointwise kernels on top.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import Embedding
from repro.workloads.ml.optimizers import Adam
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

LGT_INFO = WorkloadInfo(
    name="Language Translation",
    abbr="LGT",
    suite="Cactus",
    domain="MachineLearning",
    description="Train seq2seq model to translate sentences",
    dataset="Spacy German news",
)

_SRC_VOCAB = 7_853  # Multi30k German vocabulary
_TGT_VOCAB = 5_893  # Multi30k English vocabulary
_EMBED = 256
_HIDDEN = 512
_SRC_LEN = 24
_TGT_LEN = 22
_GATES = 3  # GRU


class LanguageTranslationTraining(MLTrainingWorkload):
    """LGT: attentive GRU seq2seq training."""

    base_batch = 64

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 4) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.src_embedding = Embedding(_SRC_VOCAB, _EMBED)
        self.tgt_embedding = Embedding(_TGT_VOCAB, _EMBED)
        params = (
            self.src_embedding.parameter_count
            + self.tgt_embedding.parameter_count
            # encoder GRU (both directions) + bridge fc
            + 2 * _GATES * _HIDDEN * (_EMBED + _HIDDEN + 2)
            + 2 * _HIDDEN * _HIDDEN
            # attention fc + v
            + (2 * _HIDDEN + _HIDDEN) * _HIDDEN + _HIDDEN
            # decoder GRU + output projection
            + _GATES * _HIDDEN * (_EMBED + _HIDDEN + _HIDDEN + 2)
            + (_EMBED + 2 * _HIDDEN) * _TGT_VOCAB
        )
        self.optimizer = Adam(params)

    def _info(self) -> WorkloadInfo:
        return LGT_INFO

    def setup(self, trace: Trace) -> None:
        trace.add(K.fill_kernel(self.optimizer.parameter_count, op="normal"))

    # -- building blocks -------------------------------------------------
    def _gru_cell_forward(self, trace: Trace, batch: int, input_dim: int) -> None:
        """One GRU step: input & recurrent projections + unfused gates."""
        trace.add(K.gemm_kernel(batch, _GATES * _HIDDEN, input_dim))
        trace.add(K.gemm_kernel(batch, _GATES * _HIDDEN, _HIDDEN))
        trace.add(
            K.elementwise_kernel("add_gate_projections",
                                 float(batch * _GATES * _HIDDEN),
                                 inputs=2, insts_per_elem=2.0)
        )
        trace.add(
            K.copy_kernel(float(batch * _GATES * _HIDDEN), op="chunk_gates")
        )
        for kernel in K.rnn_gate_kernels(batch, _HIDDEN, kind="gru"):
            trace.add(kernel)

    def _gru_cell_backward(self, trace: Trace, batch: int, input_dim: int) -> None:
        for kernel in K.rnn_gate_kernels(batch, _HIDDEN, kind="gru",
                                         backward=True):
            trace.add(kernel)
        trace.add(
            K.gemm_kernel(batch, input_dim, _GATES * _HIDDEN, transposed=True)
        )
        trace.add(
            K.gemm_kernel(_GATES * _HIDDEN, _HIDDEN, batch, transposed=True)
        )

    def _attention_forward(self, trace: Trace, batch: int) -> None:
        """Bahdanau attention: energy fc + v-dot + softmax + context."""
        rows = batch * _SRC_LEN
        # energy = tanh(W [h ; enc_outputs])
        trace.add(K.gemm_kernel(rows, _HIDDEN, 2 * _HIDDEN))
        trace.add(
            K.elementwise_kernel("tanh", float(rows * _HIDDEN),
                                 insts_per_elem=8.0)
        )
        # scores = v . energy  (a GEMV over the hidden dimension), with
        # the padding positions masked out before the softmax.
        trace.add(K.gemm_kernel(rows, 1, _HIDDEN, name_prefix="gemv2T_kernel"))
        trace.add(
            K.elementwise_kernel("attn_masked_fill", float(rows),
                                 insts_per_elem=2.0)
        )
        trace.add(K.softmax_kernel(batch, _SRC_LEN))
        # context = attention-weighted sum of encoder states: a batched
        # product — every batch item owns its encoder-output matrix.
        trace.add(K.batched_gemm_kernel(batch, 1, _HIDDEN, _SRC_LEN,
                                        name_prefix="attn_sgemm"))

    def _attention_backward(self, trace: Trace, batch: int) -> None:
        rows = batch * _SRC_LEN
        trace.add(K.batched_gemm_kernel(batch, 1, _SRC_LEN, _HIDDEN,
                                        transposed=True,
                                        name_prefix="attn_sgemm"))
        trace.add(K.softmax_kernel(batch, _SRC_LEN, backward=True))
        trace.add(K.gemm_kernel(rows, _HIDDEN, 1, transposed=True,
                                name_prefix="gemv2T_kernel"))
        trace.add(
            K.elementwise_kernel("tanh_backward", float(rows * _HIDDEN),
                                 inputs=2, insts_per_elem=8.0)
        )
        trace.add(K.gemm_kernel(rows, 2 * _HIDDEN, _HIDDEN, transposed=True))

    # -- the training step -------------------------------------------------
    def training_step(self, trace: Trace) -> None:
        batch = self.batch
        src_tokens = TensorSpec((_SRC_LEN, batch))
        tgt_tokens = TensorSpec((_TGT_LEN, batch))
        dec_input_dim = _EMBED + _HIDDEN  # [embedding ; context]

        self.optimizer.zero_grad(trace)
        # Batch staging: host copy, length-sort (BucketIterator), padding
        # mask construction.
        trace.add(K.copy_kernel(float(src_tokens.numel), op="copy"))
        trace.add(K.copy_kernel(float(src_tokens.numel), op="index_select_sort"))
        trace.add(
            K.elementwise_kernel("ne_scalar", float(src_tokens.numel),
                                 insts_per_elem=2.0)
        )
        trace.add(
            K.copy_kernel(float(src_tokens.numel * _EMBED), op="pack_padded")
        )

        # ---- encoder (bidirectional GRU) -----------------------------
        self.src_embedding(trace, src_tokens)
        trace.add(K.dropout_kernel(float(src_tokens.numel * _EMBED)))
        trace.add(K.fill_kernel(float(2 * batch * _HIDDEN), op="zeros"))
        trace.add(
            K.copy_kernel(float(src_tokens.numel * _EMBED), op="flip_sequence")
        )
        for _ in range(_SRC_LEN):
            self._gru_cell_forward(trace, batch, _EMBED)  # forward dir
            self._gru_cell_forward(trace, batch, _EMBED)  # backward dir
        # Bridge: concat final fwd/bwd states -> decoder initial hidden.
        trace.add(K.copy_kernel(float(batch * 2 * _HIDDEN), op="cat"))
        trace.add(K.gemm_kernel(batch, _HIDDEN, 2 * _HIDDEN))
        trace.add(
            K.elementwise_kernel("tanh", float(batch * _HIDDEN),
                                 insts_per_elem=8.0)
        )
        # Unpack + reshape: (src_len, batch, 2H) -> (batch, src_len, 2H).
        trace.add(
            K.copy_kernel(float(_SRC_LEN * batch * 2 * _HIDDEN),
                          op="pad_packed")
        )
        trace.add(K.transpose_kernel(float(_SRC_LEN * batch * 2 * _HIDDEN)))
        trace.add(
            K.copy_kernel(float(_SRC_LEN * batch * 2 * _HIDDEN),
                          op="contiguous")
        )

        # ---- decoder (teacher forcing, one step per target token) ----
        self.tgt_embedding(trace, tgt_tokens)
        trace.add(K.fill_kernel(float(_TGT_LEN), op="bernoulli"))
        trace.add(
            K.elementwise_kernel("lt_scalar", float(_TGT_LEN),
                                 insts_per_elem=2.0)
        )
        for _ in range(_TGT_LEN):
            trace.add(
                K.copy_kernel(float(batch * _EMBED), op="narrow")  # token t
            )
            # hidden.unsqueeze(1).repeat(1, src_len, 1) feeds the energy fc
            trace.add(
                K.copy_kernel(float(batch * _SRC_LEN * _HIDDEN),
                              op="repeat_hidden")
            )
            self._attention_forward(trace, batch)
            trace.add(
                K.copy_kernel(float(batch * dec_input_dim), op="cat")
            )
            self._gru_cell_forward(trace, batch, dec_input_dim)
            # Project [h ; context ; embedding] to the target vocabulary.
            trace.add(K.gemm_kernel(batch, _TGT_VOCAB, _EMBED + 2 * _HIDDEN))
            # Stack this step's logits into the (tgt_len, batch, vocab)
            # output tensor, then the greedy next-token pick (used when
            # teacher forcing is off).
            trace.add(
                K.copy_kernel(float(batch * _TGT_VOCAB), op="stack_outputs")
            )
            trace.add(
                K.reduce_kernel(float(batch * _TGT_VOCAB),
                                name="reduce_argmax")
            )

        # ---- loss with padding mask ----------------------------------
        rows = _TGT_LEN * batch
        trace.add(K.log_softmax_kernel(rows, _TGT_VOCAB))
        trace.add(
            K.elementwise_kernel("masked_fill", float(rows),
                                 inputs=2, insts_per_elem=2.0)
        )
        trace.add(K.reduce_kernel(float(rows), name="reduce_count_nonpad"))
        trace.add(K.loss_kernel("nll", float(rows)))
        trace.add(
            K.elementwise_kernel("div_scalar", float(rows),
                                 insts_per_elem=2.0)
        )
        trace.add(K.loss_kernel("nll", float(rows), backward=True))
        trace.add(K.log_softmax_kernel(rows, _TGT_VOCAB, backward=True))

        # ---- decoder backward (reverse time) -------------------------
        for _ in range(_TGT_LEN):
            trace.add(
                K.gemm_kernel(batch, _EMBED + 2 * _HIDDEN, _TGT_VOCAB,
                              transposed=True)
            )
            self._gru_cell_backward(trace, batch, dec_input_dim)
            self._attention_backward(trace, batch)
        # Output-projection weight gradient (accumulated over steps).
        trace.add(
            K.gemm_kernel(_EMBED + 2 * _HIDDEN, _TGT_VOCAB, rows,
                          transposed=True)
        )

        # ---- encoder backward ----------------------------------------
        trace.add(K.gemm_kernel(batch, 2 * _HIDDEN, _HIDDEN, transposed=True))
        for _ in range(_SRC_LEN):
            self._gru_cell_backward(trace, batch, _EMBED)
            self._gru_cell_backward(trace, batch, _EMBED)
        trace.add(K.dropout_kernel(float(src_tokens.numel * _EMBED),
                                   backward=True))
        # Embedding gradients + the tape (embeddings recorded themselves).
        trace.backward()

        # ---- clip + step ----------------------------------------------
        trace.add(
            K.elementwise_kernel("square", float(self.optimizer.parameter_count),
                                 insts_per_elem=2.0)
        )
        trace.add(K.reduce_kernel(float(self.optimizer.parameter_count),
                                  name="reduce_grad_norm"))
        trace.add(
            K.elementwise_kernel("clip_grad_scale",
                                 float(self.optimizer.parameter_count),
                                 insts_per_elem=3.0)
        )
        trace.add(K.reduce_kernel(float(self.optimizer.parameter_count / 100),
                                  name="reduce_bias_grad"))
        self.optimizer.step(trace)
        trace.add(K.reduce_kernel(float(rows), name="reduce_loss_mean"))
