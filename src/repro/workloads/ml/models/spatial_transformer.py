"""SPT: spatial transformer network training on MNIST (Table I).

The PyTorch spatial-transformer tutorial: a small localization network
regresses an affine transform, ``affine_grid`` + ``grid_sample`` warp
the input, and a LeNet-style classifier is trained with NLL loss and
SGD.  The sampler kernels (coordinate generation and bilinear
gathering) are what distinguish SPT's kernel menu from a plain CNN.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import (
    Activation,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Sequential,
)
from repro.workloads.ml.optimizers import SGD
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

SPT_INFO = WorkloadInfo(
    name="Spatial Transformation",
    abbr="SPT",
    suite="Cactus",
    domain="MachineLearning",
    description="Train a spatial transformer network",
    dataset="MNIST",
)


class _SpatialSampler(Module):
    """affine_grid + grid_sample, with their backward kernels."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        batch, _, h, w = x.shape
        grid_points = float(batch * h * w)
        trace.add(
            K.elementwise_kernel("affine_grid_generator", grid_points,
                                 inputs=1, outputs=2, insts_per_elem=12.0)
        )
        trace.add(K.grid_sample_kernel(float(x.numel)))
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(K.grid_sample_kernel(float(ctx.numel), backward=True))
        batch, _, h, w = ctx.shape
        trace.add(
            K.elementwise_kernel("affine_grid_backward", float(batch * h * w),
                                 inputs=2, insts_per_elem=10.0)
        )


class SpatialTransformerTraining(MLTrainingWorkload):
    """SPT: STN training with SGD on MNIST."""

    base_batch = 64

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 8) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.localization = Sequential(
            Conv2d(1, 8, 7),
            MaxPool2d(2),
            Activation("relu"),
            Conv2d(8, 10, 5),
            MaxPool2d(2),
            Activation("relu"),
            Flatten(),
            Linear(10 * 7 * 7, 32),
            Activation("relu"),
            Linear(32, 6),
        )
        self.sampler = _SpatialSampler()
        self.classifier = Sequential(
            Conv2d(1, 10, 5),
            MaxPool2d(2),
            Activation("relu"),
            Conv2d(10, 20, 5),
            Dropout(),
            MaxPool2d(2),
            Activation("relu"),
            Flatten(),
            Linear(20 * 7 * 7, 50),
            Activation("relu"),
            Dropout(),
            Linear(50, 10),
        )
        params = (
            self.localization.parameter_count
            + self.classifier.parameter_count
        )
        self.optimizer = SGD(params)

    def _info(self) -> WorkloadInfo:
        return SPT_INFO

    def setup(self, trace: Trace) -> None:
        trace.add(
            K.fill_kernel(self.optimizer.parameter_count, op="normal")
        )

    def training_step(self, trace: Trace) -> None:
        x = TensorSpec((self.batch, 1, 28, 28))
        self.optimizer.zero_grad(trace)
        trace.add(K.copy_kernel(x.numel, op="copy"))  # batch staging

        theta = self.localization(trace, x)
        del theta  # feeds the sampler's affine grid
        warped = self.sampler(trace, x)
        logits = self.classifier(trace, warped)

        trace.add(K.softmax_kernel(self.batch, logits.shape[-1]))
        trace.add(K.loss_kernel("nll", float(self.batch)))
        trace.add(K.loss_kernel("nll", float(self.batch), backward=True))
        trace.add(K.softmax_kernel(self.batch, logits.shape[-1], backward=True))
        trace.backward()
        self.optimizer.step(trace)
