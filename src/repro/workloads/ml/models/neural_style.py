"""NST: neural style transfer training (Table I).

The PyTorch neural-style tutorial: a VGG-19 feature extractor with
style (gram-matrix MSE) losses at conv1_1..conv5_1 and a content loss
at conv4_2; the *input image* is the trainable parameter, optimized
with an LBFGS-style optimizer (each step evaluates the network and
performs several vector operations for the line search/history).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import Activation, Conv2d, MaxPool2d, Module
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

NST_INFO = WorkloadInfo(
    name="Neural Style",
    abbr="NST",
    suite="Cactus",
    domain="MachineLearning",
    description="Train a CNN to generate artistic image",
    dataset="Original and artistic images",
)

#: VGG-19 feature blocks up to conv5_1 with style/content tap points:
#: (out_channels, convs_in_block).
_VGG_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 2),
    (128, 2),
    (256, 4),
    (512, 4),
    (512, 1),  # only conv5_1 is needed for the last style loss
)


class _GramLoss(Module):
    """Style loss: gram matrix (C x C GEMM over HW) + MSE."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        batch, c, h, w = x.shape
        trace.add(K.gemm_kernel(c, c, h * w, name_prefix="gram_sgemm"))
        trace.add(K.loss_kernel("mse", float(c * c)))
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        batch, c, h, w = ctx.shape
        trace.add(K.loss_kernel("mse", float(c * c), backward=True))
        # dL/dx of the gram product: another GEMM back to C x HW.
        trace.add(
            K.gemm_kernel(c, h * w, c, transposed=True, name_prefix="gram_sgemm")
        )


class _ContentLoss(Module):
    """Content loss: plain MSE on the feature map."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        trace.add(K.loss_kernel("mse", x.numel))
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(K.loss_kernel("mse", ctx.numel, backward=True))


class NeuralStyleTraining(MLTrainingWorkload):
    """NST: optimize an image against style + content losses."""

    #: The tutorial optimizes a single 512x512 image; scale shrinks the
    #: image edge instead of a batch dimension.
    base_batch = 1
    base_image = 512

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 8) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.image = max(64, int(self.base_image * (scale ** 0.5)))
        self.layers: List[Module] = []
        c_in = 3
        for block_index, (c_out, convs) in enumerate(_VGG_BLOCKS):
            for conv_index in range(convs):
                self.layers.append(Conv2d(c_in, c_out, 3))
                self.layers.append(Activation("relu"))
                c_in = c_out
                if conv_index == 0:
                    self.layers.append(_GramLoss())  # style tap at convN_1
                if block_index == 3 and conv_index == 1:
                    self.layers.append(_ContentLoss())  # conv4_2
            if block_index < len(_VGG_BLOCKS) - 1:
                self.layers.append(MaxPool2d(2))

    def _info(self) -> WorkloadInfo:
        return NST_INFO

    def setup(self, trace: Trace) -> None:
        # Clone the content image into the trainable input.
        trace.add(K.copy_kernel(3.0 * self.image * self.image, op="copy"))

    def training_step(self, trace: Trace) -> None:
        x = TensorSpec((1, 3, self.image, self.image))
        # VGG expects ImageNet-normalized inputs.
        trace.add(
            K.elementwise_kernel("normalize_images", x.numel, inputs=3,
                                 insts_per_elem=4.0)
        )
        for layer in self.layers:
            x = layer(trace, x)
        # Total-variation regularizer on the image.
        pixels_tv = 3.0 * self.image * self.image
        trace.add(
            K.elementwise_kernel("tv_loss", pixels_tv, inputs=2,
                                 insts_per_elem=6.0)
        )
        trace.backward()
        trace.add(
            K.elementwise_kernel("tv_loss_backward", pixels_tv, inputs=2,
                                 insts_per_elem=6.0)
        )
        # LBFGS closure bookkeeping: history dot products and the
        # direction update over the image parameter.
        pixels = 3.0 * self.image * self.image
        for _ in range(2):
            trace.add(K.reduce_kernel(pixels, name="reduce_dot"))
        trace.add(
            K.elementwise_kernel("lbfgs_direction", pixels, inputs=3,
                                 insts_per_elem=6.0)
        )
        trace.add(
            K.elementwise_kernel("clamp_image", pixels, insts_per_elem=3.0)
        )
        # The normalization layer back-propagates into the image, and the
        # tutorial reports both loss terms every step.
        trace.add(
            K.elementwise_kernel("normalize_images_backward", pixels,
                                 inputs=2, insts_per_elem=4.0)
        )
        trace.add(K.reduce_kernel(16.0, name="reduce_loss_mean"))
        trace.add(K.reduce_kernel(pixels, name="reduce_bias_grad"))
