"""RFL: Deep-Q-Network training on the Flappy Bird game (Table I).

The DeepMind DQN architecture on 84x84x4 frame stacks with two actions
(flap / don't).  One training step reproduces the full RL loop, which
is what makes RFL launch so many *small* kernels (Table I: 50 kernels,
2.1 M warp instructions per kernel on average — the smallest in the ML
group):

1. act: policy forward at batch 1 + argmax (epsilon-greedy),
2. replay buffer: frame preprocessing and minibatch assembly copies,
3. target network forward (no grad) + max over actions,
4. TD target + Huber/MSE loss, policy backward, Adam step,
5. periodic target-network sync (parameter copy).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import (
    Activation,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Sequential,
)
from repro.workloads.ml.optimizers import Adam
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

RFL_INFO = WorkloadInfo(
    name="Reinforcement Learning",
    abbr="RFL",
    suite="Cactus",
    domain="MachineLearning",
    description="Train a CNN with Deep-Q network",
    dataset="Flappy bird game",
)

_ACTIONS = 2
_FRAME = 80  # the Flappy Bird DQN uses 80x80 grayscale frame stacks


def _q_network() -> Sequential:
    return Sequential(
        Conv2d(4, 32, 8, stride=4),  # 80 -> 20
        Activation("relu"),
        MaxPool2d(2),  # 20 -> 10
        Conv2d(32, 64, 4, stride=2),  # 10 -> 5
        Activation("relu"),
        Conv2d(64, 64, 3, stride=1),  # winograd-eligible
        Activation("relu"),
        Flatten(),
        Linear(64 * 5 * 5, 512),
        Activation("relu"),
        Linear(512, _ACTIONS),
    )


class ReinforcementLearningTraining(MLTrainingWorkload):
    """RFL: DQN training loop."""

    base_batch = 32
    #: Sync the target network every N steps (DQN standard practice).
    target_sync_interval = 4

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 8) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.policy = _q_network()
        self.target = _q_network()
        self.optimizer = Adam(self.policy.parameter_count)
        self._step_count = 0

    def _info(self) -> WorkloadInfo:
        return RFL_INFO

    def setup(self, trace: Trace) -> None:
        trace.add(K.fill_kernel(self.policy.parameter_count, op="normal"))
        trace.add(K.copy_kernel(self.policy.parameter_count, op="param_sync"))

    def training_step(self, trace: Trace) -> None:
        batch = self.batch
        frame = TensorSpec((1, 4, _FRAME, _FRAME))
        minibatch = TensorSpec((batch, 4, _FRAME, _FRAME))

        # 1. act: preprocess the new frame, stack it, pick an action
        #    (epsilon-greedy with a device-side RNG draw).
        trace.add(
            K.elementwise_kernel("resize_bilinear", float(_FRAME * _FRAME),
                                 inputs=2, insts_per_elem=9.0)
        )
        trace.add(
            K.elementwise_kernel("cast_uint8_float", float(_FRAME * _FRAME),
                                 insts_per_elem=2.0)
        )
        trace.add(
            K.elementwise_kernel("frame_to_gray", float(_FRAME * _FRAME),
                                 inputs=3, insts_per_elem=5.0)
        )
        trace.add(K.copy_kernel(frame.numel, op="frame_stack"))
        with trace.no_grad():
            q_online = self.policy(trace, frame)
        trace.add(K.fill_kernel(64.0, op="uniform"))  # epsilon draw
        trace.add(K.reduce_kernel(float(q_online.numel), name="reduce_argmax"))
        trace.add(
            K.elementwise_kernel("where_action", 64.0, inputs=3,
                                 insts_per_elem=3.0)
        )

        # 2. replay: binarize + store the new transition, then gather
        #    the training minibatch from the buffer.
        trace.add(
            K.elementwise_kernel("threshold_binarize", float(_FRAME * _FRAME),
                                 insts_per_elem=2.0)
        )
        trace.add(
            K.elementwise_kernel("cast_float_uint8", frame.numel,
                                 insts_per_elem=2.0)
        )
        trace.add(K.copy_kernel(frame.numel, op="store_transition"))
        trace.add(K.copy_kernel(minibatch.numel, op="replay_gather"))
        trace.add(K.copy_kernel(minibatch.numel, op="replay_gather"))  # s'

        # 3. target values.
        with trace.no_grad():
            q_next = self.target(trace, minibatch)
        trace.add(K.reduce_kernel(float(q_next.numel), name="reduce_max_rows"))
        trace.add(
            K.elementwise_kernel("clamp_reward", float(batch),
                                 insts_per_elem=3.0)
        )
        trace.add(
            K.elementwise_kernel("mul_done_mask", float(batch), inputs=2,
                                 insts_per_elem=2.0)
        )
        trace.add(
            K.elementwise_kernel("td_target", float(batch), inputs=3,
                                 insts_per_elem=5.0)
        )

        # 4. learn.
        self.optimizer.zero_grad(trace)
        q_pred = self.policy(trace, minibatch)
        trace.add(
            K.elementwise_kernel("gather_q_actions", float(batch), inputs=2,
                                 insts_per_elem=4.0)
        )
        trace.add(K.loss_kernel("mse", float(batch)))
        trace.add(K.loss_kernel("mse", float(batch), backward=True))
        trace.backward()
        self.optimizer.step(trace)
        trace.add(K.reduce_kernel(float(batch), name="reduce_loss_mean"))
        trace.add(K.copy_kernel(float(batch), op="loss_readback"))

        # 5. periodic target sync.
        self._step_count += 1
        if self._step_count % self.target_sync_interval == 0:
            trace.add(
                K.copy_kernel(self.policy.parameter_count, op="param_sync")
            )
