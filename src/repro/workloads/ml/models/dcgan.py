"""DCG: DCGAN training on CelebA (Table I).

The PyTorch DCGAN tutorial model: a five-layer transposed-convolution
generator and a five-layer strided-convolution discriminator on
64x64x3 images, trained with BCE loss and two Adam optimizers.  One
training step performs the classic three passes: D on real, D on fake
(detached), then G through D — which is why DCGAN launches so many
distinct convolution kernels (forward, dgrad and wgrad variants of
every layer, at several tile configurations).
"""

from __future__ import annotations

from repro.workloads.base import WorkloadInfo
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import (
    Activation,
    BatchNorm2d,
    Conv2d,
    ConvTranspose2d,
    Sequential,
)
from repro.workloads.ml.optimizers import Adam
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace
from repro.workloads.ml.training import MLTrainingWorkload

DCG_INFO = WorkloadInfo(
    name="DCGAN",
    abbr="DCG",
    suite="Cactus",
    domain="MachineLearning",
    description="Train a GAN network",
    dataset="Celeba",
)

_LATENT = 100
_NGF = 64
_NDF = 64


def _generator() -> Sequential:
    return Sequential(
        ConvTranspose2d(_LATENT, _NGF * 8, 4, stride=4),  # 1 -> 4
        BatchNorm2d(_NGF * 8),
        Activation("relu"),
        ConvTranspose2d(_NGF * 8, _NGF * 4, 4, stride=2),  # 4 -> 8
        BatchNorm2d(_NGF * 4),
        Activation("relu"),
        ConvTranspose2d(_NGF * 4, _NGF * 2, 4, stride=2),  # 8 -> 16
        BatchNorm2d(_NGF * 2),
        Activation("relu"),
        ConvTranspose2d(_NGF * 2, _NGF, 4, stride=2),  # 16 -> 32
        BatchNorm2d(_NGF),
        Activation("relu"),
        ConvTranspose2d(_NGF, 3, 4, stride=2),  # 32 -> 64
        Activation("tanh"),
    )


def _discriminator() -> Sequential:
    return Sequential(
        Conv2d(3, _NDF, 4, stride=2),  # 64 -> 32
        Activation("leaky_relu"),
        Conv2d(_NDF, _NDF * 2, 4, stride=2),  # 32 -> 16
        BatchNorm2d(_NDF * 2),
        Activation("leaky_relu"),
        Conv2d(_NDF * 2, _NDF * 4, 4, stride=2),  # 16 -> 8
        BatchNorm2d(_NDF * 4),
        Activation("leaky_relu"),
        Conv2d(_NDF * 4, _NDF * 8, 4, stride=2),  # 8 -> 4
        BatchNorm2d(_NDF * 8),
        Activation("leaky_relu"),
        Conv2d(_NDF * 8, 1, 4, stride=4),  # 4 -> 1
        Activation("sigmoid"),
    )


class DCGANTraining(MLTrainingWorkload):
    """DCG: one epoch of DCGAN training (steady-state window)."""

    base_batch = 128

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 8) -> None:
        super().__init__(scale=scale, seed=seed, iterations=iterations)
        self.generator = _generator()
        self.discriminator = _discriminator()
        self.opt_g = Adam(self.generator.parameter_count)
        self.opt_d = Adam(self.discriminator.parameter_count)
        self._step_count = 0

    def _info(self) -> WorkloadInfo:
        return DCG_INFO

    def setup(self, trace: Trace) -> None:
        for params in (
            self.generator.parameter_count,
            self.discriminator.parameter_count,
        ):
            trace.add(K.fill_kernel(params, op="normal"))

    def training_step(self, trace: Trace) -> None:
        batch = self.batch
        real = TensorSpec((batch, 3, 64, 64))
        noise = TensorSpec((batch, _LATENT, 1, 1))

        # ---- D step: real batch ------------------------------------
        self.opt_d.zero_grad(trace)
        trace.add(K.copy_kernel(real.numel, op="copy"))  # H2D staging
        # torchvision pipeline: crop/flip + normalization on device.
        trace.add(
            K.elementwise_kernel("random_flip", real.numel, insts_per_elem=3.0)
        )
        trace.add(
            K.elementwise_kernel("normalize_images", real.numel, inputs=3,
                                 insts_per_elem=4.0)
        )
        trace.add(K.fill_kernel(float(batch), op="ones"))  # real labels
        d_real = self.discriminator(trace, real)
        trace.add(K.loss_kernel("bce", d_real.numel))
        trace.add(K.loss_kernel("bce", d_real.numel, backward=True))
        trace.backward()

        # ---- D step: fake batch (G runs without grad tape) ---------
        trace.add(K.fill_kernel(noise.numel, op="normal"))
        trace.add(K.fill_kernel(float(batch), op="zeros"))  # fake labels
        with trace.no_grad():
            fake = self.generator(trace, noise)
        d_fake = self.discriminator(trace, fake)
        trace.add(K.loss_kernel("bce", d_fake.numel))
        trace.add(K.loss_kernel("bce", d_fake.numel, backward=True))
        trace.backward()
        self.opt_d.step(trace)

        # ---- G step: through D -------------------------------------
        self.opt_g.zero_grad(trace)
        fake = self.generator(trace, noise)
        d_out = self.discriminator(trace, fake)
        trace.add(K.loss_kernel("bce", d_out.numel))
        trace.add(K.loss_kernel("bce", d_out.numel, backward=True))
        trace.backward()
        self.opt_g.step(trace)

        # Per-layer conv bias gradients (column reductions) and the
        # loss scalars reported every iteration.
        trace.add(K.reduce_kernel(float(batch) * 512, name="reduce_bias_grad"))
        trace.add(K.reduce_kernel(float(batch), name="reduce_loss_mean"))
        # Periodic sample-grid snapshot, as the tutorial renders fakes.
        if self._step_count % 4 == 0:
            trace.add(
                K.elementwise_kernel("denormalize_images", fake.numel,
                                     insts_per_elem=4.0)
            )
            trace.add(K.copy_kernel(fake.numel, op="image_grid"))
        self._step_count += 1
