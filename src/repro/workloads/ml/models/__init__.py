"""The five Cactus machine-learning training workloads (Table I)."""
