"""Training-loop driver shared by the five ML workloads.

The paper profiles the *training phase* of each model for a steady-state
window of iterations; accordingly each workload runs a setup phase
(weight initialization) followed by ``iterations`` identical training
steps, and the profiler's steady-state selection crops to whole steps.
"""

from __future__ import annotations

import math

from repro.gpu.kernel import LaunchStream
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.ml.trace import Trace


class MLTrainingWorkload(Workload):
    """Base class: N identical training iterations after a setup phase."""

    repetitive = True

    #: Batch size (or other scale carrier) at paper scale; the workload
    #: ``scale`` multiplies it (minimum of 2 to keep shapes sane).
    base_batch: int = 64

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 8) -> None:
        super().__init__(self._info(), scale=scale, seed=seed)
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.iterations = iterations
        self.batch = max(2, int(math.floor(self.base_batch * scale)))

    # -- hooks ---------------------------------------------------------
    def _info(self) -> WorkloadInfo:
        raise NotImplementedError

    def setup(self, trace: Trace) -> None:
        """One-time kernels (weight init); cropped as warm-up."""

    def training_step(self, trace: Trace) -> None:
        raise NotImplementedError

    # -- Workload interface -----------------------------------------------
    def launch_stream(self) -> LaunchStream:
        stream = LaunchStream()
        self.setup(Trace(stream, phase="setup"))
        for i in range(self.iterations):
            self.training_step(Trace(stream, phase=f"iter{i}"))
        return stream
