"""CuDNN/cuBLAS-style kernel lowering.

Every ML operation lowers to one or more GPU kernels whose names follow
the symbols a real PyTorch 1.7 + CuDNN 8.1 trace shows (``ampere_sgemm_
128x64_nn``, ``implicit_convolve_sgemm``, winograd kernels, vectorized
elementwise kernels, batch-norm kernels, ...).  Costs are computed from
shapes:

* GEMM-family kernels count one FMA instruction per two FLOPs plus a
  ~25-35 % loop/address overhead; tile-level reuse is captured on-SM
  (shared memory/L1), which is what puts them near the compute roof
  (Fig. 7) — except for thin layers (small reduction dimension) which
  are genuinely memory-bound.
* Elementwise/normalization/optimizer kernels are pure streaming: bytes
  in + bytes out at full coalescing — these pin to the memory roof,
  producing the paper's memory-bandwidth-bound dominant kernels.
* Small working sets enjoy producer-consumer reuse through L2
  (``l2_carry_in``): tiny models such as SPT stay cache-resident, which
  is why they measure compute-side despite modest arithmetic.

Kernel *names* encode the algorithm, tile configuration and channel
template parameters exactly like CuDNN symbols do, so different layer
shapes naturally map to different kernel identities — the mechanism
behind the paper's 37-66 distinct kernels per training workload.
"""

from __future__ import annotations

import math

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
)

_WARP = 32.0

#: Usable share of the RTX 3080's 5 MB L2 for inter-kernel reuse.
_L2_RESIDENT_BYTES = 4_000_000.0

#: Mix used by dense math kernels (GEMM / conv).
_GEMM_MIX = InstructionMix(fp32=0.62, ld_st=0.12, branch=0.02, sync=0.04)
#: Mix used by streaming elementwise kernels.
_ELEMENTWISE_MIX = InstructionMix(fp32=0.35, ld_st=0.40, branch=0.02, sync=0.0)


def _carry_in(unique_bytes: float) -> float:
    """Producer-consumer L2 residency for a tensor of *unique_bytes*.

    Training pipelines read what the previous kernel just wrote; when
    the working set fits in L2 (small models such as SPT/RFL), most of
    the "compulsory" traffic is served on-chip.
    """
    return 0.85 * min(1.0, _L2_RESIDENT_BYTES / max(1.0, unique_bytes))


def _blocks(threads_total: float, threads_per_block: int) -> int:
    return max(1, math.ceil(max(1.0, threads_total) / threads_per_block))


# ---------------------------------------------------------------------------
# GEMM family
# ---------------------------------------------------------------------------

def _gemm_tile(m: int, n: int) -> str:
    """cuBLAS tile-config selection (by output matrix shape)."""
    if m <= 32 or n <= 32:
        return "32x32"
    if n <= 64:
        return "64x32" if m <= 2048 else "128x32"
    if m <= 64:
        return "64x64" if n <= 512 else "64x128"
    if n <= 128:
        return "64x64" if m <= 256 else "128x64"
    if m <= 128:
        return "64x256" if n >= 2048 else "32x128"
    if n >= 1024 and m >= 1024:
        return "256x128"
    return "128x128"


def _gemm_variant(k: int) -> str:
    """cuBLAS k-loop variant (deep reductions use sliced kernels)."""
    if k >= 4096:
        return "_sliced1x8"
    if k >= 2048:
        return "_sliced1x4"
    if k >= 512:
        return "_sliced1x2"
    return ""


def gemm_kernel(
    m: int,
    n: int,
    k: int,
    transposed: bool = False,
    name_prefix: str = "ampere_sgemm",
) -> KernelCharacteristics:
    """Dense single-precision GEMM (cuBLAS)."""
    if min(m, n, k) < 1:
        raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
    tile = _gemm_tile(m, n)
    layout = "tn" if transposed else "nn"
    # cuBLAS selects split-K variants for thin-and-deep problems and
    # sliced variants for deep reductions.
    split = "_splitK" if k > 8 * max(m, n) else _gemm_variant(k)
    name = f"{name_prefix}_{tile}_{layout}{split}"

    fmas = float(m) * n * k
    thread_insts = fmas * 1.25  # FMA + amortized address/loop overhead
    tile_m, tile_n = (int(t) for t in tile.split("x"))
    unique = (m * k + k * n + m * n) * 4.0
    # Each input tile is re-read once per output tile row/column.
    access = (
        m * k * max(1.0, n / tile_n) + k * n * max(1.0, m / tile_m) + 2.0 * m * n
    ) * 4.0
    # Producer-consumer L2 reuse applies to the *activations* (the m x k
    # input the previous kernel just wrote and the m x n output); the
    # k x n weight matrix is evicted between iterations by the training
    # pipeline's larger streams.
    activation_share = (m * k + m * n) / (m * k + k * n + m * n)
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(math.ceil(m / tile_m) * math.ceil(n / tile_n), 1),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=_GEMM_MIX,
        memory=MemoryFootprint(
            bytes_read=(m * k + k * n) * 4.0,
            bytes_written=m * n * 4.0,
            reuse_factor=max(1.0, access / unique),
            # Square problems reuse within blocks; thin problems re-read
            # the small matrix across blocks (L2-range reuse).
            l1_locality=0.93 if min(m, n) >= 256 else (0.6 if min(m, n) >= 128 else 0.5),
            coalescence=1.0,
            l2_carry_in=_carry_in(unique) * activation_share,
        ),
        ilp=4.0,
        mlp=4.0,
        tags=("ml", "gemm"),
    )


def batched_gemm_kernel(
    batch_count: int,
    m: int,
    n: int,
    k: int,
    transposed: bool = False,
    name_prefix: str = "bmm_sgemm",
) -> KernelCharacteristics:
    """Batched GEMM (cuBLAS ``gemmStridedBatched``): every batch item
    multiplies its *own* pair of matrices, so the unique footprint and
    the FLOPs both scale with the batch count — unlike a plain GEMM,
    where one operand is shared.  This is what attention context/score
    products lower to."""
    if batch_count < 1:
        raise ValueError("batch_count must be >= 1")
    base = gemm_kernel(m, n, k, transposed=transposed,
                       name_prefix=name_prefix)
    fmas = float(batch_count) * m * n * k
    unique = batch_count * (m * k + k * n + m * n) * 4.0
    memory = MemoryFootprint(
        bytes_read=batch_count * (m * k + k * n) * 4.0,
        bytes_written=batch_count * m * n * 4.0,
        # Per-item matrices are small: reuse happens within the tile.
        reuse_factor=base.memory.reuse_factor,
        l1_locality=0.85,
        coalescence=1.0,
        l2_carry_in=_carry_in(unique),
    )
    import dataclasses

    return dataclasses.replace(
        base,
        grid_blocks=max(base.grid_blocks, batch_count),
        warp_insts=max(1.0, fmas * 1.25 / _WARP),
        memory=memory,
    )


# ---------------------------------------------------------------------------
# Convolutions
# ---------------------------------------------------------------------------

def conv2d_forward_kernel(
    batch: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    kernel_size: int,
    stride: int = 1,
) -> KernelCharacteristics:
    """Forward convolution: Winograd for 3x3/stride-1, implicit GEMM else.

    The algorithm — and hence the kernel symbol, which carries the
    channel template parameters as real CuDNN binaries do — is
    input-dependent, exactly as CuDNN 8's heuristics behave.
    """
    oh, ow = h // stride, w // stride
    m = batch * oh * ow
    n = c_out
    k = c_in * kernel_size * kernel_size
    fmas = float(m) * n * k

    if kernel_size == 3 and stride == 1 and c_in >= 16:
        # Winograd F(2x2, 3x3): 2.25x fewer multiplies, plus transforms.
        name = f"ampere_scudnn_winograd_128x128_ldg1_ldg4_c{c_in}k{c_out}"
        thread_insts = fmas / 2.25 * 1.35
    elif kernel_size == 1:
        return gemm_kernel(m, n, k)
    elif m < 1024:
        # CuDNN's heuristics pick the explicit-GEMM engine for tiny
        # problems (e.g. the batch-1 action pass of a DQN).
        tile = _gemm_tile(m, n)
        name = f"explicit_convolve_sgemm_{tile}_r{kernel_size}_c{c_in}"
        thread_insts = fmas * 1.5
    else:
        tile = _gemm_tile(m, n)
        name = f"implicit_convolve_sgemm_{tile}_r{kernel_size}_c{c_in}"
        thread_insts = fmas * 1.3

    in_bytes = batch * c_in * h * w * 4.0
    weight_bytes = c_out * k * 4.0
    out_bytes = batch * c_out * oh * ow * 4.0
    # Workspace traffic: Winograd materializes the transformed U/V/M
    # matrices in global memory; the implicit-GEMM path stages input
    # patches.  This is real DRAM traffic a profiler sees.
    workspace = (2.0 if "winograd" in name else 1.2) * (in_bytes + out_bytes)
    unique = in_bytes + weight_bytes + out_bytes + workspace
    access = fmas / 16.0 * 4.0 + unique  # tile-level refetch
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(m / 32.0, 8),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=_GEMM_MIX,
        memory=MemoryFootprint(
            bytes_read=in_bytes + weight_bytes + workspace / 2.0,
            bytes_written=out_bytes + workspace / 2.0,
            reuse_factor=max(1.0, access / unique),
            l1_locality=0.93,
            coalescence=1.0,
            l2_carry_in=_carry_in(unique),
        ),
        ilp=4.0,
        mlp=4.0,
        tags=("ml", "conv"),
    )


def uses_winograd(c_in: int, kernel_size: int, stride: int) -> bool:
    """Whether the forward algorithm is Winograd (transform launches)."""
    return kernel_size == 3 and stride == 1 and c_in >= 16


def rnn_gate_kernels(
    cells: float, hidden: int, kind: str = "lstm", backward: bool = False
):
    """The unfused per-gate pointwise kernels of a manual LSTM/GRU cell.

    A hand-written (tutorial-style) recurrent cell launches separate
    sigmoid/tanh/update kernels per step rather than one fused kernel —
    a large contributor to LGT's 66 distinct kernel names.
    """
    numel = cells * hidden
    direction = "bwd" if backward else "fwd"
    ops = (
        ("sigmoid_gates", 3.0 if kind == "lstm" else 2.0, 8.0)
        , ("tanh_gates", 1.0, 8.0)
        , ("cellstate_update", 1.0, 5.0)
        , ("hidden_update", 1.0, 5.0)
    )
    kernels = []
    for op, width, cost in ops:
        kernels.append(
            elementwise_kernel(
                f"{kind}_{op}_{direction}",
                numel * width,
                inputs=2,
                insts_per_elem=cost,
            )
        )
    return kernels


def winograd_transform_kernel(
    numel: float, direction: str = "input"
) -> KernelCharacteristics:
    """Winograd data/output transform (separate launch in CuDNN)."""
    return KernelCharacteristics(
        name=f"winograd_{direction}_transform",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * 7.0 / _WARP),
        mix=InstructionMix(fp32=0.45, ld_st=0.35, branch=0.02, sync=0.04),
        memory=MemoryFootprint(
            bytes_read=max(4.0, numel * 4.0),
            bytes_written=numel * 4.0 * 2.25,  # 4x4 tiles from 2x2 outputs
            coalescence=0.9,
            l2_carry_in=_carry_in(numel * 13.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "conv"),
    )


def conv2d_dgrad_kernel(
    batch: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    kernel_size: int,
    stride: int = 1,
) -> KernelCharacteristics:
    """Backward-data convolution (also ConvTranspose forward)."""
    oh, ow = h // stride, w // stride
    m = batch * h * w
    n = c_in
    k = c_out * kernel_size * kernel_size
    fmas = float(batch) * oh * ow * c_out * c_in * kernel_size * kernel_size
    tile = _gemm_tile(m, n)
    name = f"dgrad2d_alg1_{tile}_r{kernel_size}_c{c_in}"
    grad_out_bytes = batch * c_out * oh * ow * 4.0
    weight_bytes = c_out * c_in * kernel_size * kernel_size * 4.0
    grad_in_bytes = batch * c_in * h * w * 4.0
    workspace = 1.2 * (grad_out_bytes + grad_in_bytes)
    unique = grad_out_bytes + weight_bytes + grad_in_bytes + workspace
    access = fmas / 16.0 * 4.0 + unique
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(m / 32.0, 8),
        threads_per_block=256,
        warp_insts=max(1.0, fmas * 1.3 / _WARP),
        mix=_GEMM_MIX,
        memory=MemoryFootprint(
            bytes_read=grad_out_bytes + weight_bytes + workspace / 2.0,
            bytes_written=grad_in_bytes + workspace / 2.0,
            reuse_factor=max(1.0, access / unique),
            l1_locality=0.9,
            coalescence=0.9,
            l2_carry_in=_carry_in(unique),
        ),
        ilp=4.0,
        mlp=4.0,
        tags=("ml", "conv"),
    )


def conv2d_wgrad_kernel(
    batch: int,
    c_in: int,
    h: int,
    w: int,
    c_out: int,
    kernel_size: int,
    stride: int = 1,
) -> KernelCharacteristics:
    """Backward-filter convolution (weight gradients)."""
    oh, ow = h // stride, w // stride
    fmas = float(batch) * oh * ow * c_out * c_in * kernel_size * kernel_size
    name = f"wgrad_alg0_engine_r{kernel_size}_c{c_in}"
    in_bytes = batch * c_in * h * w * 4.0
    grad_out_bytes = batch * c_out * oh * ow * 4.0
    weight_bytes = c_out * c_in * kernel_size * kernel_size * 4.0
    # Weight gradients accumulate partial sums in a workspace and
    # reduce them (CuDNN's multi-pass wgrad engines).
    workspace = 1.6 * (in_bytes + grad_out_bytes)
    unique = in_bytes + grad_out_bytes + weight_bytes + workspace
    access = fmas / 14.0 * 4.0 + unique
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(c_out * c_in / 4.0, 4),
        threads_per_block=256,
        warp_insts=max(1.0, fmas * 1.35 / _WARP),
        mix=InstructionMix(fp32=0.58, ld_st=0.14, branch=0.02, sync=0.06),
        memory=MemoryFootprint(
            bytes_read=in_bytes + grad_out_bytes + workspace / 2.0,
            bytes_written=weight_bytes + workspace / 2.0,
            reuse_factor=max(1.0, access / unique),
            l1_locality=0.9,
            coalescence=0.9,
            l2_carry_in=_carry_in(unique),
        ),
        ilp=3.5,
        mlp=4.0,
        tags=("ml", "conv"),
    )


# ---------------------------------------------------------------------------
# Streaming / normalization / misc kernels
# ---------------------------------------------------------------------------

def elementwise_kernel(
    op: str,
    numel: float,
    inputs: int = 1,
    outputs: int = 1,
    insts_per_elem: float = 4.0,
) -> KernelCharacteristics:
    """Vectorized pointwise kernel (activation, add, scale, copy, ...)."""
    if numel < 1:
        raise ValueError("numel must be >= 1")
    bytes_read = numel * 4.0 * inputs
    bytes_written = numel * 4.0 * outputs
    return KernelCharacteristics(
        name=f"vectorized_elementwise_{op}",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * insts_per_elem / _WARP),
        mix=_ELEMENTWISE_MIX,
        memory=MemoryFootprint(
            bytes_read=max(4.0, bytes_read),
            bytes_written=bytes_written,
            coalescence=1.0,
            l2_carry_in=_carry_in(bytes_read + bytes_written),
        ),
        ilp=4.0,
        mlp=8.0,
        tags=("ml", "elementwise"),
    )


def batchnorm_kernel(
    numel: float, channels: int, backward: bool = False
) -> KernelCharacteristics:
    """Batch/instance normalization (multi-pass streaming + reduction)."""
    base = "bn_bw_1C11_kernel_NCHW" if backward else "bn_fw_tr_1C11_kernel_NCHW"
    name = f"{base}_c{channels}"
    passes = 3.0 if backward else 2.0
    io_factor = 3.0 if backward else 2.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=max(1, channels),
        threads_per_block=512,
        warp_insts=max(1.0, numel * passes * 5.0 / _WARP),
        mix=InstructionMix(fp32=0.35, ld_st=0.38, branch=0.02, sync=0.05),
        memory=MemoryFootprint(
            bytes_read=numel * 4.0 * (io_factor - 1.0),
            bytes_written=numel * 4.0,
            reuse_factor=passes / 2.0 + 0.5,
            l1_locality=0.1,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 4.0 * io_factor),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "norm"),
    )


def pooling_kernel(
    out_numel: float, window: int, backward: bool = False
) -> KernelCharacteristics:
    """Max/avg pooling forward or backward."""
    name = "pooling_bwd_4d_kernel" if backward else "pooling_fwd_4d_kernel"
    in_factor = float(window * window)
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(out_numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, out_numel * (in_factor + 4.0) / _WARP),
        mix=InstructionMix(fp32=0.20, ld_st=0.42, branch=0.10, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=out_numel * 4.0 * in_factor,
            bytes_written=out_numel * 4.0 * (in_factor if backward else 1.0),
            reuse_factor=1.2,
            l1_locality=0.6,
            coalescence=0.8,
            l2_carry_in=_carry_in(out_numel * 4.0 * in_factor),
        ),
        ilp=2.5,
        mlp=6.0,
        tags=("ml", "pool"),
    )


def softmax_kernel(
    rows: int, cols: int, backward: bool = False
) -> KernelCharacteristics:
    """Row-wise (log-)softmax: three passes over each row."""
    name = "softmax_warp_backward" if backward else "softmax_warp_forward"
    numel = float(rows) * cols
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(rows, 4),
        threads_per_block=128,
        warp_insts=max(1.0, numel * 9.0 / _WARP),
        mix=InstructionMix(fp32=0.40, ld_st=0.30, branch=0.03, sync=0.06),
        memory=MemoryFootprint(
            bytes_read=numel * 4.0 * (2.0 if backward else 1.0),
            bytes_written=numel * 4.0,
            reuse_factor=3.0,
            l1_locality=0.85,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 8.0),
        ),
        ilp=2.5,
        mlp=6.0,
        tags=("ml", "softmax"),
    )


def log_softmax_kernel(
    rows: int, cols: int, backward: bool = False
) -> KernelCharacteristics:
    """Row-wise log-softmax (distinct symbol from plain softmax)."""
    kernel = softmax_kernel(rows, cols, backward=backward)
    direction = "backward" if backward else "forward"
    from dataclasses import replace as _replace

    return _replace(kernel, name=f"log_softmax_warp_{direction}")


def reduce_kernel(numel: float, name: str = "reduce_kernel") -> KernelCharacteristics:
    """Full reduction (loss value, argmax, gradient norms)."""
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(numel / 8.0, 512),
        threads_per_block=512,
        warp_insts=max(4.0, numel * 2.5 / _WARP),
        mix=InstructionMix(fp32=0.30, ld_st=0.32, branch=0.04, sync=0.08),
        memory=MemoryFootprint(
            bytes_read=max(4.0, numel * 4.0),
            bytes_written=512.0,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 4.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "reduce"),
    )


def embedding_kernel(
    tokens: float, embed_dim: int, backward: bool = False,
    vocab: int = 0,
) -> KernelCharacteristics:
    """Embedding-table gather (forward) or scatter-add (backward).

    PyTorch's default (non-sparse) embedding gradient is *dense*: the
    backward pass zero-fills and scatter-adds into a full vocab x dim
    buffer, so its traffic scales with the table, not the tokens.
    """
    name = (
        "embedding_backward_feature_kernel"
        if backward
        else "indexSelectLargeIndex"
    )
    bytes_moved = tokens * embed_dim * 4.0
    table_bytes = float(vocab) * embed_dim * 4.0 if backward else 0.0
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(tokens, 4),
        threads_per_block=128,
        warp_insts=max(
            1.0,
            (tokens * (embed_dim / 4.0 + 8.0) + table_bytes / 16.0) / _WARP,
        ),
        mix=InstructionMix(fp32=0.10, ld_st=0.50, branch=0.05, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=bytes_moved + tokens * 8.0,
            bytes_written=bytes_moved + table_bytes,
            reuse_factor=1.3,
            l1_locality=0.2,
            coalescence=0.35,  # rows land at random table offsets
        ),
        ilp=2.0,
        mlp=4.0,
        tags=("ml", "embedding"),
    )


def rnn_pointwise_kernel(
    cells: float, hidden: int, kind: str = "lstm", backward: bool = False
) -> KernelCharacteristics:
    """Gate nonlinearities + state update of an LSTM/GRU cell."""
    gates = 4.0 if kind == "lstm" else 3.0
    direction = "bwd" if backward else "fwd"
    numel = cells * hidden
    return KernelCharacteristics(
        name=f"{kind}_cell_pointwise_{direction}",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * gates * 6.0 / _WARP),
        mix=InstructionMix(fp32=0.45, ld_st=0.35, branch=0.02, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=numel * 4.0 * (gates + 1.0),
            bytes_written=numel * 4.0 * 2.0,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 4.0 * (gates + 3.0)),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "rnn"),
    )


def grid_sample_kernel(
    numel_out: float, backward: bool = False
) -> KernelCharacteristics:
    """Bilinear grid sampling (spatial transformer)."""
    name = "grid_sampler_2d_backward" if backward else "grid_sampler_2d_kernel"
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(numel_out / 2.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel_out * 30.0 / _WARP),
        mix=InstructionMix(fp32=0.35, ld_st=0.35, branch=0.08, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=numel_out * 4.0 * 5.0,  # 4 corners + grid coords
            bytes_written=numel_out * 4.0 * (4.0 if backward else 1.0),
            reuse_factor=1.5,
            l1_locality=0.5,
            coalescence=0.4,  # sample points wander off the lattice
            l2_carry_in=_carry_in(numel_out * 24.0),
        ),
        ilp=2.0,
        mlp=4.0,
        tags=("ml", "sampler"),
    )


def dropout_kernel(numel: float, backward: bool = False) -> KernelCharacteristics:
    """Fused dropout (Philox RNG + mask + scale)."""
    name = "fused_dropout_backward" if backward else "fused_dropout_kernel"
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * 9.0 / _WARP),
        mix=InstructionMix(fp32=0.30, ld_st=0.35, branch=0.03, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=numel * 4.0 + numel * (1.0 if backward else 0.0),
            bytes_written=numel * 5.0,  # output + mask byte
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 9.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "dropout"),
    )


def copy_kernel(numel: float, op: str = "copy") -> KernelCharacteristics:
    """Device copy / concatenation / narrow (pure bandwidth)."""
    return KernelCharacteristics(
        name=f"cat_array_batched_{op}",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * 2.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.55, branch=0.02, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=max(4.0, numel * 4.0),
            bytes_written=numel * 4.0,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 8.0),
        ),
        ilp=4.0,
        mlp=8.0,
        tags=("ml", "copy"),
    )


def fill_kernel(numel: float, op: str = "fill") -> KernelCharacteristics:
    """Fill/zero/normal_ initialization kernels."""
    return KernelCharacteristics(
        name=f"tensor_apply_{op}",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * (6.0 if op == "normal" else 2.0) / _WARP),
        mix=InstructionMix(fp32=0.25, ld_st=0.40, branch=0.02, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=4.0,
            bytes_written=max(4.0, numel * 4.0),
            coalescence=1.0,
        ),
        ilp=4.0,
        mlp=8.0,
        tags=("ml", "fill"),
    )


def transpose_kernel(numel: float) -> KernelCharacteristics:
    """Tensor permute/transpose (tiled, partially coalesced)."""
    return KernelCharacteristics(
        name="batched_transpose_tile",
        grid_blocks=_blocks(numel / 4.0, 256),
        threads_per_block=256,
        warp_insts=max(1.0, numel * 3.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.52, branch=0.02, sync=0.05),
        memory=MemoryFootprint(
            bytes_read=max(4.0, numel * 4.0),
            bytes_written=numel * 4.0,
            coalescence=0.7,
            l2_carry_in=_carry_in(numel * 8.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "copy"),
    )


def loss_kernel(op: str, numel: float, backward: bool = False) -> KernelCharacteristics:
    """Pointwise loss evaluation (BCE/MSE/NLL) + reduction."""
    direction = "backward" if backward else "forward"
    return KernelCharacteristics(
        name=f"{op}_loss_{direction}",
        grid_blocks=_blocks(numel / 2.0, 256),
        threads_per_block=256,
        warp_insts=max(4.0, numel * 10.0 / _WARP),
        mix=InstructionMix(fp32=0.40, ld_st=0.32, branch=0.04, sync=0.04),
        memory=MemoryFootprint(
            bytes_read=max(4.0, numel * 8.0),
            bytes_written=numel * 4.0 if backward else 512.0,
            coalescence=1.0,
            l2_carry_in=_carry_in(numel * 8.0),
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("ml", "loss"),
    )
