"""Machine-learning workload substrate.

A shape-level deep-learning framework: layers, a backward tape, and
optimizers, all of which lower to CuDNN/cuBLAS-style GPU kernels with
FLOP and byte counts computed from the tensor shapes.  The five Cactus
ML workloads (DCG, NST, RFL, SPT, LGT of Table I) are PyTorch-tutorial
models rebuilt on this framework; their training loops generate the
kernel launch streams the paper profiles.
"""

from repro.workloads.ml.models.dcgan import DCGANTraining
from repro.workloads.ml.models.dqn import ReinforcementLearningTraining
from repro.workloads.ml.models.neural_style import NeuralStyleTraining
from repro.workloads.ml.models.seq2seq import LanguageTranslationTraining
from repro.workloads.ml.models.spatial_transformer import (
    SpatialTransformerTraining,
)
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace

__all__ = [
    "DCGANTraining",
    "ReinforcementLearningTraining",
    "NeuralStyleTraining",
    "LanguageTranslationTraining",
    "SpatialTransformerTraining",
    "TensorSpec",
    "Trace",
]
