"""Neural-network layers.

Each layer implements ``forward(trace, x) -> TensorSpec`` (emit forward
kernels, record a tape entry) and ``backward(trace, ctx)`` (emit
backward kernels).  ``parameter_count`` feeds the optimizer's
multi-tensor kernels.
"""

from __future__ import annotations

from typing import Tuple

from repro.workloads.ml import kernels as K
from repro.workloads.ml.tensor import TensorSpec
from repro.workloads.ml.trace import Trace


class Module:
    """Base layer/model class."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        raise NotImplementedError

    def backward(self, trace: Trace, ctx: object) -> None:
        raise NotImplementedError

    @property
    def parameter_count(self) -> int:
        return 0

    def __call__(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        return self.forward(trace, x)


class Sequential(Module):
    """Chain of modules (each records its own tape entry)."""

    def __init__(self, *modules: Module) -> None:
        self.modules: Tuple[Module, ...] = modules

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        for module in self.modules:
            x = module(trace, x)
        return x

    def backward(self, trace: Trace, ctx: object) -> None:  # pragma: no cover
        raise RuntimeError("Sequential children record themselves")

    @property
    def parameter_count(self) -> int:
        return sum(m.parameter_count for m in self.modules)


class Conv2d(Module):
    """2D convolution (NCHW)."""

    def __init__(
        self, c_in: int, c_out: int, kernel_size: int, stride: int = 1
    ) -> None:
        if min(c_in, c_out, kernel_size, stride) < 1:
            raise ValueError("conv parameters must be positive")
        self.c_in = c_in
        self.c_out = c_out
        self.kernel_size = kernel_size
        self.stride = stride

    @property
    def parameter_count(self) -> int:
        return self.c_out * self.c_in * self.kernel_size ** 2 + self.c_out

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        batch, c, h, w = x.shape
        if c != self.c_in:
            raise ValueError(
                f"Conv2d expected {self.c_in} channels, got {c} (shape {x.shape})"
            )
        winograd = K.uses_winograd(c, self.kernel_size, self.stride)
        if winograd:
            trace.add(K.winograd_transform_kernel(float(x.numel), "input"))
        trace.add(
            K.conv2d_forward_kernel(
                batch, c, h, w, self.c_out, self.kernel_size, self.stride
            )
        )
        out = TensorSpec((batch, self.c_out, h // self.stride, w // self.stride))
        if winograd:
            trace.add(K.winograd_transform_kernel(float(out.numel), "output"))
        # Bias add is a fused epilogue in CuDNN 8; no separate kernel.
        trace.record(self, (x, out))
        return out

    def backward(self, trace: Trace, ctx: Tuple[TensorSpec, TensorSpec]) -> None:
        x, _ = ctx
        batch, c, h, w = x.shape
        trace.add(
            K.conv2d_dgrad_kernel(
                batch, c, h, w, self.c_out, self.kernel_size, self.stride
            )
        )
        trace.add(
            K.conv2d_wgrad_kernel(
                batch, c, h, w, self.c_out, self.kernel_size, self.stride
            )
        )


class ConvTranspose2d(Module):
    """Transposed convolution (DCGAN generator upsampling)."""

    def __init__(
        self, c_in: int, c_out: int, kernel_size: int, stride: int = 2
    ) -> None:
        self.c_in = c_in
        self.c_out = c_out
        self.kernel_size = kernel_size
        self.stride = stride

    @property
    def parameter_count(self) -> int:
        return self.c_in * self.c_out * self.kernel_size ** 2 + self.c_out

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        batch, c, h, w = x.shape
        oh, ow = h * self.stride, w * self.stride
        # Transposed-conv forward is a dgrad computation.
        trace.add(
            K.conv2d_dgrad_kernel(
                batch, self.c_out, oh, ow, c, self.kernel_size, self.stride
            )
        )
        out = TensorSpec((batch, self.c_out, oh, ow))
        trace.record(self, (x, out))
        return out

    def backward(self, trace: Trace, ctx: Tuple[TensorSpec, TensorSpec]) -> None:
        x, out = ctx
        batch = x.batch
        oh, ow = out.shape[2], out.shape[3]
        trace.add(
            K.conv2d_forward_kernel(
                batch, self.c_out, oh, ow, self.c_in,
                self.kernel_size, self.stride,
            )
        )
        trace.add(
            K.conv2d_wgrad_kernel(
                batch, self.c_out, oh, ow, self.c_in,
                self.kernel_size, self.stride,
            )
        )


class Linear(Module):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int) -> None:
        if min(in_features, out_features) < 1:
            raise ValueError("linear features must be positive")
        self.in_features = in_features
        self.out_features = out_features

    @property
    def parameter_count(self) -> int:
        return self.in_features * self.out_features + self.out_features

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected {self.in_features} features, got {x.shape}"
            )
        rows = x.numel // self.in_features
        trace.add(K.gemm_kernel(rows, self.out_features, self.in_features))
        out = TensorSpec(x.shape[:-1] + (self.out_features,))
        trace.record(self, (x, out))
        return out

    def backward(self, trace: Trace, ctx: Tuple[TensorSpec, TensorSpec]) -> None:
        x, _ = ctx
        rows = x.numel // self.in_features
        # dX = dY @ W^T ; dW = X^T @ dY
        trace.add(
            K.gemm_kernel(rows, self.in_features, self.out_features,
                          transposed=True)
        )
        trace.add(
            K.gemm_kernel(self.in_features, self.out_features, rows,
                          transposed=True)
        )


class Activation(Module):
    """Pointwise activation (relu, leaky_relu, tanh, sigmoid, elu)."""

    _COSTS = {
        "relu": 3.0,
        "leaky_relu": 4.0,
        "tanh": 8.0,
        "sigmoid": 8.0,
        "elu": 7.0,
    }

    def __init__(self, op: str) -> None:
        if op not in self._COSTS:
            raise ValueError(f"unknown activation {op!r}")
        self.op = op

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        trace.add(
            K.elementwise_kernel(
                self.op, x.numel, insts_per_elem=self._COSTS[self.op]
            )
        )
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(
            K.elementwise_kernel(
                f"{self.op}_backward", ctx.numel, inputs=2,
                insts_per_elem=self._COSTS[self.op],
            )
        )


class BatchNorm2d(Module):
    """Batch normalization over NCHW activations."""

    def __init__(self, channels: int) -> None:
        self.channels = channels

    @property
    def parameter_count(self) -> int:
        return 2 * self.channels

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        trace.add(K.batchnorm_kernel(x.numel, self.channels))
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(K.batchnorm_kernel(ctx.numel, self.channels, backward=True))


class MaxPool2d(Module):
    """Max pooling with square window == stride."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        batch, c, h, w = x.shape
        out = TensorSpec((batch, c, h // self.window, w // self.window))
        trace.add(K.pooling_kernel(out.numel, self.window))
        trace.record(self, out)
        return out

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(K.pooling_kernel(ctx.numel, self.window, backward=True))


class Dropout(Module):
    """Fused dropout."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        trace.add(K.dropout_kernel(x.numel))
        trace.record(self, x)
        return x

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(K.dropout_kernel(ctx.numel, backward=True))


class Flatten(Module):
    """Reshape to (batch, -1): free, no kernel."""

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        return x.reshape(x.batch, -1)

    def backward(self, trace: Trace, ctx: object) -> None:
        pass


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab: int, dim: int) -> None:
        self.vocab = vocab
        self.dim = dim

    @property
    def parameter_count(self) -> int:
        return self.vocab * self.dim

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        tokens = x.numel
        trace.add(K.embedding_kernel(tokens, self.dim))
        out = TensorSpec(x.shape + (self.dim,))
        trace.record(self, x)
        return out

    def backward(self, trace: Trace, ctx: TensorSpec) -> None:
        trace.add(
            K.embedding_kernel(
                ctx.numel, self.dim, backward=True, vocab=self.vocab
            )
        )


class LSTM(Module):
    """Single-layer LSTM unrolled over time (CuDNN per-step kernels)."""

    def __init__(self, input_dim: int, hidden: int, kind: str = "lstm") -> None:
        if kind not in ("lstm", "gru"):
            raise ValueError("kind must be 'lstm' or 'gru'")
        self.input_dim = input_dim
        self.hidden = hidden
        self.kind = kind
        self.gates = 4 if kind == "lstm" else 3

    @property
    def parameter_count(self) -> int:
        g = self.gates
        return g * self.hidden * (self.input_dim + self.hidden + 2)

    def forward(self, trace: Trace, x: TensorSpec) -> TensorSpec:
        """x is (seq_len, batch, input_dim)."""
        seq_len, batch, _ = x.shape
        for _ in range(seq_len):
            # Input and recurrent projections + gate pointwise.
            trace.add(
                K.gemm_kernel(batch, self.gates * self.hidden, self.input_dim)
            )
            trace.add(
                K.gemm_kernel(batch, self.gates * self.hidden, self.hidden)
            )
            trace.add(K.rnn_pointwise_kernel(batch, self.hidden, self.kind))
        out = TensorSpec((seq_len, batch, self.hidden))
        trace.record(self, (x, out))
        return out

    def backward(self, trace: Trace, ctx: Tuple[TensorSpec, TensorSpec]) -> None:
        x, _ = ctx
        seq_len, batch, _ = x.shape
        for _ in range(seq_len):
            trace.add(
                K.rnn_pointwise_kernel(
                    batch, self.hidden, self.kind, backward=True
                )
            )
            trace.add(
                K.gemm_kernel(
                    batch, self.input_dim, self.gates * self.hidden,
                    transposed=True,
                )
            )
            trace.add(
                K.gemm_kernel(
                    self.gates * self.hidden, self.hidden, batch,
                    transposed=True,
                )
            )
