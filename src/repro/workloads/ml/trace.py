"""Execution trace with a backward tape.

:class:`Trace` is the recording context a model runs inside: layers add
their forward kernels to the launch stream and push ``(module, ctx)``
entries onto the tape; :meth:`Trace.backward` replays the tape in
reverse, letting every module emit its backward kernels — a shape-level
reproduction of PyTorch's autograd.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.gpu.kernel import KernelCharacteristics, LaunchStream


class Trace:
    """Records kernel launches and the autograd tape for one step."""

    def __init__(self, stream: LaunchStream, phase: str = "") -> None:
        self.stream = stream
        self.phase = phase
        self.tape: List[Tuple[Any, Any]] = []
        self.grad_enabled = True

    def add(self, kernel: KernelCharacteristics) -> None:
        """Launch *kernel* in the current phase."""
        self.stream.launch(kernel, phase=self.phase)

    def record(self, module: Any, ctx: Any) -> None:
        """Push a tape entry for the backward pass."""
        if self.grad_enabled:
            self.tape.append((module, ctx))

    def backward(self) -> None:
        """Replay the tape in reverse, emitting backward kernels."""
        for module, ctx in reversed(self.tape):
            module.backward(self, ctx)
        self.tape.clear()

    def no_grad(self) -> "_NoGrad":
        """Context manager disabling tape recording (inference passes)."""
        return _NoGrad(self)


class _NoGrad:
    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._previous = True

    def __enter__(self) -> Trace:
        self._previous = self.trace.grad_enabled
        self.trace.grad_enabled = False
        return self.trace

    def __exit__(self, *exc: object) -> None:
        self.trace.grad_enabled = self._previous
