"""Workload registry.

Maps workload abbreviations to factories and records suite membership,
so the pipeline, benchmarks and examples can request workloads by name
(``get_workload("GMS")``) or whole suites (``cactus_workloads()``).
Factories are registered by the suite modules at import time.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.workloads.base import Workload

WorkloadFactory = Callable[..., Workload]

_REGISTRY: Dict[str, WorkloadFactory] = {}
_SUITES: Dict[str, List[str]] = {}


def register_workload(
    abbr: str, suite: str, factory: WorkloadFactory
) -> WorkloadFactory:
    """Register *factory* under *abbr* as a member of *suite*."""
    key = abbr.upper()
    if key in _REGISTRY:
        raise ValueError(f"workload {abbr!r} already registered")
    _REGISTRY[key] = factory
    _SUITES.setdefault(suite, []).append(key)
    return factory


def _ensure_loaded() -> None:
    """Import the suite modules so their registrations run."""
    # Imported lazily to avoid import cycles at package-init time.
    import repro.workloads.suites  # noqa: F401


def get_workload(abbr: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Instantiate the workload registered under *abbr*."""
    _ensure_loaded()
    if not isinstance(abbr, str):
        # A Workload instance (or anything else) here used to surface as
        # a bare AttributeError on .upper() — name the contract instead.
        raise TypeError(
            "get_workload expects a workload abbreviation string such as "
            f"'GST', not {type(abbr).__name__!r}; pass Workload instances "
            "directly to the pipeline instead of re-resolving them"
        )
    key = abbr.upper()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown workload {abbr!r}; known: {known}")
    return _REGISTRY[key](scale=scale, seed=seed)


def list_suites() -> List[str]:
    """Names of every registered suite, in registration order."""
    _ensure_loaded()
    return list(_SUITES)


def list_workloads(suite: Optional[str] = None) -> List[str]:
    """Abbreviations of all registered workloads (optionally one suite)."""
    _ensure_loaded()
    if suite is None:
        return sorted(_REGISTRY)
    if suite not in _SUITES:
        known = ", ".join(sorted(_SUITES))
        raise KeyError(f"unknown suite {suite!r}; known: {known}")
    return list(_SUITES[suite])


def cactus_workloads(scale: float = 1.0, seed: int = 0) -> List[Workload]:
    """The ten Cactus workloads (Table I), in paper order."""
    _ensure_loaded()
    order = ["GMS", "LMR", "LMC", "GST", "GRU", "DCG", "NST", "RFL", "SPT", "LGT"]
    return [get_workload(abbr, scale=scale, seed=seed) for abbr in order]


def prt_workloads(scale: float = 1.0, seed: int = 0) -> List[Workload]:
    """All Parboil + Rodinia + Tango workloads (Table III)."""
    _ensure_loaded()
    result: List[Workload] = []
    for suite in ("Parboil", "Rodinia", "Tango"):
        for abbr in list_workloads(suite):
            result.append(get_workload(abbr, scale=scale, seed=seed))
    return result
