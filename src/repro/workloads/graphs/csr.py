"""Compressed-sparse-row graph structure.

The storage format Gunrock (and every GPU graph framework) operates on.
All BFS levels, frontier sizes and traversed-edge counts downstream are
computed on this structure with vectorized numpy operations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - availability depends on the environment
    from scipy.sparse import _sparsetools as _scipy_sparsetools
except ImportError:  # pragma: no cover
    _scipy_sparsetools = None


class CSRGraph:
    """Directed graph in CSR form (``indptr``/``indices``)."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(indptr) < 1 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({len(indices)})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    @classmethod
    def _from_trusted(cls, indptr: np.ndarray, indices: np.ndarray) -> "CSRGraph":
        """Constructor bypass for arrays already known to be valid CSR.

        Used by :meth:`from_edges`, whose counting sort produces a valid
        ``indptr`` by construction and validates vertex ranges up front —
        re-running the O(V + E) constructor checks would only re-prove
        what the build already guarantees.
        """
        graph = cls.__new__(cls)
        graph.indptr = indptr
        graph.indices = indices
        return graph

    @classmethod
    def from_edges(
        cls, num_vertices: int, src: np.ndarray, dst: np.ndarray
    ) -> "CSRGraph":
        """Build a CSR graph from parallel edge arrays (duplicates kept).

        Counting sort — ``bincount`` + prefix sum + stable scatter — so
        the build is O(V + E) instead of the O(E log E) comparison sort
        a generic ``argsort`` pays.  Edges with the same source keep
        their input order (stable), and duplicate edges are preserved,
        exactly like the argsort-based build this replaces.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        num_edges = src.size
        if num_edges and (
            src.min() < 0
            or src.max() >= num_vertices
            or dst.min() < 0
            or dst.max() >= num_vertices
        ):
            raise ValueError("edge endpoints contain out-of-range vertex ids")
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        if num_edges == 0:
            return cls._from_trusted(indptr, dst)
        if _scipy_sparsetools is not None:
            # scipy's COO→CSR kernel is this exact counting sort in C:
            # histogram the rows, prefix-sum, scatter columns stably.
            # It does NOT merge duplicates (that is a separate
            # sum_duplicates pass the high-level API adds).
            indices = np.empty(num_edges, dtype=np.int64)
            data = np.zeros(num_edges, dtype=np.int8)
            _scipy_sparsetools.coo_tocsr(
                num_vertices,
                num_vertices,
                num_edges,
                src,
                dst,
                data,
                indptr,
                indices,
                data,
            )
            return cls._from_trusted(indptr, indices)
        # Pure-numpy fallback: a stable argsort groups edges by source.
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_vertices)
        np.cumsum(counts, out=indptr[1:])
        return cls._from_trusted(indptr, dst[order])

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(1, self.num_vertices)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def frontier_edges(self, frontier: np.ndarray) -> int:
        """Total out-edges of the frontier — the advance kernel's work."""
        degrees = self.indptr[frontier + 1] - self.indptr[frontier]
        return int(degrees.sum())

    def expand(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbours of the frontier (with duplicates).

        The multi-slice gather positions are built with a single cumsum:
        fill with ones (step +1 inside a slice), scatter each slice's
        jump at its first element, and prefix-sum.  One pass over the
        output instead of the two ``np.repeat`` expansions plus
        arithmetic the naive construction needs.
        """
        starts = self.indptr[frontier]
        lengths = self.indptr[frontier + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Zero-length slices would scatter their successor's jump onto
        # the same position as another slice's — drop them first.
        nonzero = lengths > 0
        if not nonzero.all():
            starts = starts[nonzero]
            lengths = lengths[nonzero]
        positions = np.ones(total, dtype=np.int64)
        positions[0] = starts[0]
        boundaries = np.cumsum(lengths[:-1])
        positions[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
        np.cumsum(positions, out=positions)
        return self.indices[positions]

    def degree_histogram(self, bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
        """Log-spaced degree histogram (for generator validation)."""
        degrees = self.out_degrees()
        max_degree = max(1, int(degrees.max()))
        edges = np.unique(
            np.round(np.logspace(0, np.log10(max_degree + 1), bins)).astype(int)
        )
        hist, _ = np.histogram(degrees, bins=edges)
        return hist, edges
