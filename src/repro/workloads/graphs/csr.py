"""Compressed-sparse-row graph structure.

The storage format Gunrock (and every GPU graph framework) operates on.
All BFS levels, frontier sizes and traversed-edge counts downstream are
computed on this structure with vectorized numpy operations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class CSRGraph:
    """Directed graph in CSR form (``indptr``/``indices``)."""

    def __init__(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(indptr) < 1 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({len(indices)})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("indices contain out-of-range vertex ids")
        self.indptr = indptr
        self.indices = indices

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, src: np.ndarray, dst: np.ndarray
    ) -> "CSRGraph":
        """Build a CSR graph from parallel edge arrays (duplicates kept)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        dst_sorted = dst[order]
        counts = np.bincount(src_sorted, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst_sorted)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def avg_degree(self) -> float:
        return self.num_edges / max(1, self.num_vertices)

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def frontier_edges(self, frontier: np.ndarray) -> int:
        """Total out-edges of the frontier — the advance kernel's work."""
        degrees = self.indptr[frontier + 1] - self.indptr[frontier]
        return int(degrees.sum())

    def expand(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbours of the frontier (with duplicates)."""
        starts = self.indptr[frontier]
        ends = self.indptr[frontier + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        # Vectorized multi-slice gather.
        offsets = np.repeat(starts, lengths)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lengths) - lengths, lengths
        )
        return self.indices[offsets + within]

    def degree_histogram(self, bins: int = 32) -> Tuple[np.ndarray, np.ndarray]:
        """Log-spaced degree histogram (for generator validation)."""
        degrees = self.out_degrees()
        max_degree = max(1, int(degrees.max()))
        edges = np.unique(
            np.round(np.logspace(0, np.log10(max_degree + 1), bins)).astype(int)
        )
        hist, _ = np.histogram(degrees, bins=edges)
        return hist, edges
