"""Kernel builders for Gunrock-style frontier operations.

Maps *measured per-level BFS state* (frontier sizes, traversed edge
counts, unvisited totals) to kernel characteristics.  Graph kernels are
the canonical irregular GPU workload: scattered accesses (low
coalescence), data-dependent branching, low ILP — which is what pins
them to the bottom-left of the roofline in Figs. 5 and 6b.
"""

from __future__ import annotations

import math

from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    MemoryFootprint,
)

_WARP = 32.0

#: Vertex ids are 4-byte integers, as in Gunrock's default build.
_ID_BYTES = 4.0


def _blocks(items: int, threads_per_block: int) -> int:
    return max(1, math.ceil(max(1, items) / threads_per_block))


def init_distances_kernel(num_vertices: int) -> KernelCharacteristics:
    """Fill the per-vertex label/distance array (runs once)."""
    return KernelCharacteristics(
        name="init_distances",
        grid_blocks=_blocks(num_vertices, 256),
        threads_per_block=256,
        warp_insts=max(1.0, num_vertices * 4.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.45, branch=0.02, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=1.0,
            bytes_written=num_vertices * _ID_BYTES,
            coalescence=1.0,
        ),
        ilp=4.0,
        mlp=8.0,
        tags=("graph",),
    )


def output_offsets_kernel(frontier_size: int) -> KernelCharacteristics:
    """Prefix-scan of frontier out-degrees (load-balanced advance setup)."""
    n = max(1, frontier_size)
    return KernelCharacteristics(
        name="compute_output_offsets",
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 14.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.35, branch=0.05, sync=0.06),
        memory=MemoryFootprint(
            bytes_read=n * (_ID_BYTES + 8.0),  # frontier ids + indptr
            bytes_written=n * _ID_BYTES,
            coalescence=0.5,
            reuse_factor=1.5,
            l1_locality=0.6,
        ),
        ilp=2.0,
        mlp=4.0,
        tags=("graph",),
    )


def _advance_kernel(
    name: str, frontier_size: int, edges: int, coalescence: float, mlp: float
) -> KernelCharacteristics:
    frontier_size = max(1, frontier_size)
    edges = max(1, edges)
    # Per-edge work: load neighbour id, test/update the label (random
    # access), emit to the output frontier.
    thread_insts = frontier_size * 12.0 + edges * 18.0
    bytes_read = (
        frontier_size * (8.0 + _ID_BYTES)  # indptr + frontier ids
        + edges * _ID_BYTES  # adjacency lists (mostly sequential)
        + edges * _ID_BYTES  # labels (random)
    )
    return KernelCharacteristics(
        name=name,
        grid_blocks=_blocks(edges, 256),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.38, branch=0.14, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=bytes_read,
            bytes_written=edges * _ID_BYTES,
            reuse_factor=1.5,  # hub labels re-hit in L2
            l1_locality=0.1,
            coalescence=coalescence,
        ),
        ilp=1.4,
        mlp=mlp,
        tags=("graph", "advance"),
    )


def advance_twc_kernel(frontier_size: int, edges: int) -> KernelCharacteristics:
    """Per-thread/warp/CTA advance — Gunrock's small-frontier strategy."""
    return _advance_kernel("advance_kernel_twc", frontier_size, edges, 0.22, 2.0)


def advance_lb_kernel(frontier_size: int, edges: int) -> KernelCharacteristics:
    """Load-balanced advance — used for large, skewed frontiers."""
    return _advance_kernel("advance_kernel_lb", frontier_size, edges, 0.28, 3.5)


def advance_pull_kernel(
    unvisited: int, scanned_edges: int
) -> KernelCharacteristics:
    """Direction-optimized (pull) advance over the unvisited vertices."""
    unvisited = max(1, unvisited)
    scanned_edges = max(1, scanned_edges)
    thread_insts = unvisited * 10.0 + scanned_edges * 12.0
    return KernelCharacteristics(
        name="advance_kernel_pull",
        grid_blocks=_blocks(unvisited, 256),
        threads_per_block=256,
        warp_insts=max(1.0, thread_insts / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.40, branch=0.12, sync=0.01),
        memory=MemoryFootprint(
            bytes_read=unvisited * 8.0
            + scanned_edges * _ID_BYTES  # in-adjacency
            + scanned_edges * 0.5,  # visited bitmap probes
            bytes_written=unvisited * _ID_BYTES * 0.5,
            reuse_factor=1.8,  # the frontier bitmap is hot in L2
            l1_locality=0.15,
            coalescence=0.2,
            working_set_bytes=None,
        ),
        ilp=1.5,
        mlp=4.0,
        tags=("graph", "advance"),
    )


def filter_cull_kernel(output_size: int) -> KernelCharacteristics:
    """Cull visited/duplicate vertices from the raw advance output."""
    n = max(1, output_size)
    return KernelCharacteristics(
        name="filter_kernel_cull",
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 7.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.40, branch=0.12, sync=0.01),
        memory=MemoryFootprint(
            bytes_read=n * _ID_BYTES + n * 0.25,  # stream + bitmap probes
            bytes_written=n * _ID_BYTES * 0.5,
            reuse_factor=1.3,
            l1_locality=0.2,
            coalescence=0.6,
        ),
        ilp=1.8,
        mlp=4.0,
        tags=("graph", "filter"),
    )


def compact_scan_kernel(output_size: int) -> KernelCharacteristics:
    """Prefix-scan of the validity flags (stream compaction, pass 1)."""
    n = max(1, output_size)
    return KernelCharacteristics(
        name="frontier_compact_scan",
        grid_blocks=_blocks(n, 512),
        threads_per_block=512,
        warp_insts=max(1.0, n * 6.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.35, branch=0.03, sync=0.08),
        memory=MemoryFootprint(
            bytes_read=n * 1.0,
            bytes_written=n * _ID_BYTES,
            coalescence=0.95,
        ),
        ilp=2.5,
        mlp=8.0,
        tags=("graph", "compact"),
    )


def compact_scatter_kernel(output_size: int) -> KernelCharacteristics:
    """Scatter surviving vertices to the compacted frontier (pass 2)."""
    n = max(1, output_size)
    return KernelCharacteristics(
        name="frontier_compact_scatter",
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 5.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.50, branch=0.04, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n * 2.0 * _ID_BYTES,
            bytes_written=n * _ID_BYTES,
            coalescence=0.7,
        ),
        ilp=2.0,
        mlp=6.0,
        tags=("graph", "compact"),
    )


def bitmap_convert_kernel(num_vertices: int) -> KernelCharacteristics:
    """Convert frontier between queue and bitmap form (pull levels)."""
    n = max(1, num_vertices)
    return KernelCharacteristics(
        name="bitmap_convert",
        grid_blocks=_blocks(n // 8, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 2.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.45, branch=0.04, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n * 0.125,
            bytes_written=n * _ID_BYTES * 0.25,
            coalescence=0.9,
        ),
        ilp=3.0,
        mlp=8.0,
        tags=("graph",),
    )


def bitmask_update_kernel(new_frontier: int) -> KernelCharacteristics:
    """Mark the new frontier in the visited bitmask (random writes)."""
    n = max(1, new_frontier)
    return KernelCharacteristics(
        name="visited_bitmask_update",
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 5.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.45, branch=0.05, sync=0.0),
        memory=MemoryFootprint(
            bytes_read=n * _ID_BYTES,
            bytes_written=n * 0.5,
            coalescence=0.25,
        ),
        ilp=1.8,
        mlp=3.0,
        tags=("graph",),
    )


def length_reduce_kernel(frontier_size: int) -> KernelCharacteristics:
    """Reduce the frontier length (host readback for loop control)."""
    n = max(1, frontier_size)
    return KernelCharacteristics(
        name="frontier_length_reduce",
        grid_blocks=_blocks(n, 512),
        threads_per_block=512,
        warp_insts=max(1.0, n * 3.0 / _WARP + 8.0),
        mix=InstructionMix(fp32=0.0, ld_st=0.30, branch=0.05, sync=0.10),
        memory=MemoryFootprint(
            bytes_read=n * 1.0 + 64.0,
            bytes_written=64.0,
            coalescence=0.95,
        ),
        ilp=2.0,
        mlp=6.0,
        tags=("graph",),
    )


def uniquify_kernel(output_size: int) -> KernelCharacteristics:
    """Hash-based frontier deduplication (high-duplication levels)."""
    n = max(1, output_size)
    return KernelCharacteristics(
        name="uniquify_filter",
        grid_blocks=_blocks(n, 256),
        threads_per_block=256,
        warp_insts=max(1.0, n * 9.0 / _WARP),
        mix=InstructionMix(fp32=0.0, ld_st=0.42, branch=0.10, sync=0.02),
        memory=MemoryFootprint(
            bytes_read=n * 2.0 * _ID_BYTES,
            bytes_written=n * _ID_BYTES,
            reuse_factor=1.6,
            l1_locality=0.2,
            coalescence=0.3,
        ),
        ilp=1.5,
        mlp=3.0,
        tags=("graph",),
    )
