"""Synthetic graph generators for the two BFS inputs.

* :func:`social_network` — a Chung-Lu scale-free graph matching
  SOC-Twitter10's shape: power-law degrees, tiny diameter, a dense core.
  BFS on it produces a handful of levels with two or three *enormous*
  frontiers.
* :func:`road_network` — a degree-bounded, near-planar lattice with
  (Road-USA's shape): uniform low degree, huge diameter.  BFS produces
  thousands of levels with tiny frontiers.

The paper's full graphs (21 M / 23 M vertices) are downscaled by the
workload ``scale`` parameter; both generators preserve average degree
and topology class, so frontier *shapes* — the property every figure
depends on — survive the scaling.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.sampling import AliasTable, CdfSampler


def social_network(
    num_vertices: int,
    avg_degree: float = 12.6,
    power_law_exponent: float = 2.1,
    seed: int = 0,
    endpoint_sampler: str = "guide",
) -> CSRGraph:
    """Chung-Lu scale-free graph (SOC-Twitter10 surrogate).

    Expected vertex degrees follow ``w_i ~ i^(-1/(gamma-1))`` for
    power-law exponent ``gamma``; edges pick endpoints proportionally to
    the weights, giving the hubs + heavy tail of a social network.
    The default average degree 12.6 matches 265 M edges / 21 M vertices.

    *endpoint_sampler* selects how the 2·E weighted endpoint draws run:

    * ``"guide"`` (default) — guide-table inverse CDF, bit-for-bit the
      stream ``rng.choice`` produced historically, so every pinned
      launch-stream digest is preserved;
    * ``"alias"`` — Walker alias method, O(1) per draw with the same
      marginal distribution but a different uniform→vertex mapping, so
      it yields a *different* (equally valid) graph per seed.
    """
    if num_vertices < 2:
        raise ValueError("num_vertices must be >= 2")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    if power_law_exponent <= 1.0:
        raise ValueError("power_law_exponent must be > 1")
    if endpoint_sampler not in ("guide", "alias"):
        raise ValueError(
            "endpoint_sampler must be 'guide' or 'alias', "
            f"got {endpoint_sampler!r}"
        )
    rng = np.random.default_rng(seed)
    num_edges = int(num_vertices * avg_degree)

    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (power_law_exponent - 1.0))
    # Cap the largest expected degree at ~2% of vertices, as real social
    # graphs do (even celebrity accounts are followed by a small
    # fraction of all users).
    weights = np.minimum(weights, weights.sum() * 0.02 / avg_degree)
    probabilities = weights / weights.sum()

    if endpoint_sampler == "alias":
        sampler = AliasTable(probabilities)
    else:
        sampler = CdfSampler(probabilities)
    src = sampler.sample(rng, num_edges)
    dst = sampler.sample(rng, num_edges)
    keep = src != dst
    return CSRGraph.from_edges(num_vertices, src[keep], dst[keep])


def road_network(
    num_vertices: int,
    edge_keep_probability: float = 0.2,
    seed: int = 0,
) -> CSRGraph:
    """Near-planar lattice road network (Road-USA surrogate).

    A sqrt(n) x sqrt(n) grid that keeps all horizontal edges and only a
    fraction of the vertical ones yields average degree
    ~ 2 + 2 * keep ~ 2.4 (Road-USA: 2.4) and a diameter of O(sqrt(n)) — the thousands-of-BFS-levels regime.  A
    spanning backbone (every vertex keeps its west edge along each row
    and one north edge per row) keeps the graph connected so BFS
    reaches the whole component.
    """
    if num_vertices < 4:
        raise ValueError("num_vertices must be >= 4")
    if not 0.0 < edge_keep_probability <= 1.0:
        raise ValueError("edge_keep_probability must be in (0, 1]")
    rng = np.random.default_rng(seed)
    side = int(np.sqrt(num_vertices))
    n = side * side

    row, col = np.divmod(np.arange(n, dtype=np.int64), side)

    edges_src = []
    edges_dst = []

    # Horizontal lattice edges (always kept: the row backbone).
    horizontal = col < side - 1
    edges_src.append(np.arange(n)[horizontal])
    edges_dst.append(np.arange(n)[horizontal] + 1)

    # One vertical connector per row (kept: ties rows together).
    first_in_row = np.arange(0, n - side, side)
    edges_src.append(first_in_row)
    edges_dst.append(first_in_row + side)

    # Remaining vertical edges kept at random.
    vertical = (row < side - 1) & (col > 0)
    candidates = np.arange(n)[vertical]
    kept = candidates[
        rng.random(len(candidates)) < edge_keep_probability
    ]
    edges_src.append(kept)
    edges_dst.append(kept + side)

    src = np.concatenate(edges_src)
    dst = np.concatenate(edges_dst)
    # Road networks are undirected: add both directions.
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    return CSRGraph.from_edges(n, all_src, all_dst)
