"""Graph-analytics workload substrate.

A real CSR breadth-first search with Gunrock's frontier-centric phase
structure (advance / filter / compact), running on synthetic graphs that
reproduce the two input classes of the paper: a scale-free social
network (SOC-Twitter10) and a near-planar road network (Road-USA).
Per-level kernel launches are sized by the *actual* frontier the search
produces, which is what makes the two inputs behave so differently
(Observation #3: one fat-frontier kernel dominates the social graph;
thousands of tiny launches dominate the road graph).
"""

from repro.workloads.graphs.bfs import GunrockBFS, RoadBFS, SocialBFS
from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.generator import road_network, social_network
from repro.workloads.graphs.sampling import AliasTable, CdfSampler

__all__ = [
    "AliasTable",
    "CSRGraph",
    "CdfSampler",
    "GunrockBFS",
    "RoadBFS",
    "SocialBFS",
    "road_network",
    "social_network",
]
