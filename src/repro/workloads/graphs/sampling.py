"""Fast weighted vertex sampling for the graph generators.

The social-network generator draws tens of millions of edge endpoints
from a power-law vertex distribution.  ``numpy``'s ``Generator.choice``
implements this as a full binary search of the CDF per sample, which
profiling shows dominating GST's graph build.  This module provides two
O(1)-per-draw samplers:

* :class:`CdfSampler` — a Chen–Asau *guide table* accelerating the exact
  inverse-CDF transform.  Fed the same uniform stream, it reproduces
  ``rng.choice(n, size=size, p=p)`` **bit for bit** (it computes exactly
  ``cdf.searchsorted(u, side="right")``, just with a bucketed search),
  so every downstream launch-stream digest is unchanged.  This is the
  sampler the pipeline uses.
* :class:`AliasTable` — Walker's alias method.  Construction is O(n),
  each draw costs one uniform and two table probes.  It samples the same
  *distribution* but maps uniforms to indices differently, so it cannot
  replay an existing ``rng.choice`` stream; use it for new code where no
  digest-compatibility contract exists.

Both are seeded-deterministic: the mapping from ``(probabilities,
uniform draws)`` to samples contains no hidden state, so equal seeds
give equal graphs across processes and platforms.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _normalized_probabilities(probabilities: np.ndarray) -> np.ndarray:
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probabilities must be a non-empty 1-D array")
    if np.any(p < 0):
        raise ValueError("probabilities must be non-negative")
    total = p.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("probabilities must have a positive, finite sum")
    return p


class CdfSampler:
    """Exact-replay weighted sampler (guide-table inverse CDF).

    ``Generator.choice(n, size=k, p=p)`` internally computes::

        cdf = p.cumsum(); cdf /= cdf[-1]
        u = rng.random(k)
        idx = cdf.searchsorted(u, side="right")

    :meth:`sample` consumes the identical ``rng.random(k)`` stream and
    computes the identical ``searchsorted`` result, but resolves each
    sample through a guide table of ``K`` equal-width buckets over
    [0, 1): bucket ``j`` pre-stores the index range the search can land
    in, so the per-sample binary search collapses to one or two
    vectorized refinement rounds instead of ``log2(n)`` scalar probes.

    ``K`` is a power of two so ``floor(u * K)`` and the bucket bounds
    ``j / K`` are exact in binary floating point — the bracketing
    invariant ``guide[j] <= searchsorted(u) <= guide[j + 1]`` is then
    exact, and the refinement bisection uses the same ``cdf[mid] <= u``
    comparisons as ``searchsorted`` itself, which makes the replay
    bit-for-bit regardless of rounding in ``cdf``.
    """

    def __init__(
        self,
        probabilities: np.ndarray,
        guide_buckets: Optional[int] = None,
    ) -> None:
        p = _normalized_probabilities(probabilities)
        cdf = p.cumsum()
        cdf /= cdf[-1]
        self.cdf = cdf
        n = cdf.size
        if guide_buckets is None:
            # ~2 buckets per outcome keeps almost every bucket's index
            # range at width <= 1 while the table stays cache-friendly.
            guide_buckets = 1 << max(1, int(np.ceil(np.log2(2 * n))))
        if guide_buckets < 2 or guide_buckets & (guide_buckets - 1):
            raise ValueError(
                f"guide_buckets must be a power of two >= 2, got {guide_buckets}"
            )
        self._buckets = guide_buckets
        boundaries = (
            np.arange(guide_buckets + 1, dtype=np.float64) / guide_buckets
        )
        dtype = np.int32 if n < np.iinfo(np.int32).max else np.int64
        self._guide = cdf.searchsorted(boundaries, side="right").astype(dtype)

    def __len__(self) -> int:
        return int(self.cdf.size)

    # ------------------------------------------------------------------
    def lookup(self, u: np.ndarray) -> np.ndarray:
        """``cdf.searchsorted(u, side="right")`` for uniforms in [0, 1)."""
        u = np.asarray(u, dtype=np.float64)
        cdf = self.cdf
        bucket = (u * self._buckets).astype(self._guide.dtype)
        lo = self._guide[bucket]
        hi = self._guide[bucket + 1]
        # Vectorized bisection on the (typically empty or single-entry)
        # per-bucket index range; identical comparisons to searchsorted.
        active = np.flatnonzero(lo < hi)
        while active.size:
            alo = lo[active]
            ahi = hi[active]
            mid = (alo + ahi) >> 1
            go_right = cdf[mid] <= u[active]
            alo = np.where(go_right, mid + 1, alo)
            ahi = np.where(go_right, ahi, mid)
            lo[active] = alo
            hi[active] = ahi
            active = active[alo < ahi]
        return lo.astype(np.int64, copy=False)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* indices; bit-identical to ``rng.choice(n, size, p=p)``.

        Consumes exactly ``size`` doubles from *rng*, the same stream
        ``Generator.choice`` would consume.
        """
        return self.lookup(rng.random(size))


class AliasTable:
    """Walker alias-method sampler: O(n) build, O(1) per draw.

    Each of the *n* equal-width columns stores a threshold and an alias;
    a draw picks a column from one uniform and keeps either the column
    index or its alias.  The split/donate construction is vectorized:
    every round pairs the current under-full columns with over-full
    donors, so the build finishes in a handful of array passes.

    Samples the same distribution as :class:`CdfSampler` but consumes
    randomness differently (column + coin from one double), so streams
    are *not* interchangeable with ``Generator.choice`` — see the module
    docstring for when that matters.
    """

    def __init__(self, probabilities: np.ndarray) -> None:
        p = _normalized_probabilities(probabilities)
        p = p / p.sum()
        n = p.size
        prob = p * n
        alias = np.arange(n, dtype=np.int64)
        small = np.flatnonzero(prob < 1.0)
        large = np.flatnonzero(prob >= 1.0)
        # Pair under-full columns with donors; donors shrink and may
        # become under-full themselves, feeding the next round.
        while small.size and large.size:
            k = min(small.size, large.size)
            take_small = small[:k]
            take_large = large[:k]
            alias[take_small] = take_large
            prob[take_large] -= 1.0 - prob[take_small]
            donors_now_small = take_large[prob[take_large] < 1.0]
            donors_still_large = take_large[prob[take_large] >= 1.0]
            small = np.concatenate([small[k:], donors_now_small])
            large = np.concatenate([large[k:], donors_still_large])
        # Float residue: whatever is left fills its own column exactly.
        prob[small] = 1.0
        prob[large] = 1.0
        self.prob = prob
        self.alias = alias

    def __len__(self) -> int:
        return int(self.prob.size)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw *size* indices from the table's distribution."""
        scaled = rng.random(size) * len(self)
        column = scaled.astype(np.int64)
        coin = scaled - column
        return np.where(coin < self.prob[column], column, self.alias[column])
