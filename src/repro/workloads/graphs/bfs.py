"""GST and GRU: Gunrock BFS on a social and a road network (Table I).

The workload runs an *actual* breadth-first search over the generated
CSR graph; each BFS level emits the Gunrock operator kernels sized by
the real frontier.  Two strategy decisions are input-dependent, exactly
as in Gunrock:

* **advance strategy** — per-thread/warp/CTA for small frontiers,
  load-balanced for large ones, direction-optimized *pull* when the
  frontier covers a large fraction of the graph (only ever triggered by
  the social network);
* **compaction** — large, duplicate-heavy advance outputs go through
  scan/scatter compaction and hash uniquify; the road network's tiny
  frontiers use the fused filter path only.

This yields 12 distinct kernels for GST and 8 for GRU, with the
dominance structure of Table I (one dominant kernel covering >= 70 %
for GST; thousands of tiny launches for GRU).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.gpu.kernel import LaunchStream
from repro.workloads.base import Workload, WorkloadInfo
from repro.workloads.graphs import frontier as ops
from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.generator import road_network, social_network

GST_INFO = WorkloadInfo(
    name="BFS-Social",
    abbr="GST",
    suite="Cactus",
    domain="Graph",
    description="BFS traversal on social network",
    dataset="SOC-Twitter10",
)

GRU_INFO = WorkloadInfo(
    name="BFS-Road",
    abbr="GRU",
    suite="Cactus",
    domain="Graph",
    description="BFS traversal on road network",
    dataset="Road USA",
)

#: Paper graph sizes; the workload ``scale`` multiplies the vertex count.
_SOCIAL_VERTICES = 21_000_000
_ROAD_VERTICES = 23_000_000

#: Floors keep scaled-down graphs large enough to exhibit their shape.
_MIN_SOCIAL_VERTICES = 20_000
_MIN_ROAD_VERTICES = 20_000

#: Tractability threshold: characterizing a graph above this vertex
#: count takes minutes on one core.  Every routine surface stays below
#: it (PAPER_SCALE builds ~1.05 M / 1.15 M vertices; the CLI's
#: ``characterize --scale 0.25`` default ~5.25 M); only the implicit
#: ``scale=1.0`` default — the paper's full 21 M / 23 M vertex graphs —
#: crosses it, which is almost never what an interactive caller wants.
#: Instantiating above the threshold emits a ``UserWarning`` rather
#: than silently running for a large fraction of an hour.
TRACTABLE_VERTICES = 8_000_000


class GunrockBFS(Workload):
    """Shared BFS driver; subclasses choose the graph and strategies."""

    repetitive = False  # the paper profiles the graph runs end-to-end

    #: Beamer direction-switch factors: a level runs in pull mode when
    #: its frontier edges exceed (unexplored edges) / alpha AND the
    #: frontier holds more than vertices / beta entries (the second
    #: condition stops the shrinking tail from flipping back to pull).
    beamer_alpha: float = 14.0
    beamer_beta: float = 100.0
    #: Degree skew (max/avg out-degree within the frontier) above which
    #: the load-balanced advance replaces the per-thread/warp/CTA one —
    #: power-law frontiers need it; uniform frontiers only switch once
    #: they are large.  Size thresholds scale with sqrt(V): road-network
    #: wavefronts grow as the lattice diameter, not the vertex count.
    lb_skew: float = 16.0
    lb_size_sqrt: float = 0.8
    #: raw-output / new-frontier ratio that triggers hash uniquify
    #: (late social levels re-discover visited hubs massively).
    uniquify_duplication: float = 4.0
    #: Advance-output multiple of sqrt(V) above which compaction runs
    #: as a separate scan+scatter pair.
    compact_sqrt: float = 2.0
    #: New-frontier fraction (of vertices) above which the visited
    #: bitmask update is a separate kernel (else fused into the filter).
    bitmask_threshold: float = 0.005
    direction_optimizing: bool = True

    def __init__(self, scale: float = 1.0, seed: int = 0, source: int = 0) -> None:
        super().__init__(self._info(), scale=scale, seed=seed)
        self.source = source
        vertices = self._num_vertices()
        if vertices > TRACTABLE_VERTICES:
            warnings.warn(
                f"{self.abbr} at scale={self.scale} builds a "
                f"{vertices:,}-vertex graph (tractability threshold: "
                f"{TRACTABLE_VERTICES:,}); characterization will take "
                "minutes. Pass an explicit smaller scale (e.g. a "
                "ScalePreset's graph scale) unless the full-size graph "
                "is intended.",
                UserWarning,
                stacklevel=2,
            )

    # -- hooks ---------------------------------------------------------
    def _info(self) -> WorkloadInfo:
        raise NotImplementedError

    def _num_vertices(self) -> int:
        raise NotImplementedError

    def _build_graph(self) -> CSRGraph:
        raise NotImplementedError

    # -- the BFS itself ---------------------------------------------------
    def launch_stream(self) -> LaunchStream:
        graph = self._build_graph()
        n = graph.num_vertices
        indptr = graph.indptr
        visited = np.zeros(n, dtype=bool)
        source = int(self.source) % n
        visited[source] = True
        frontier = np.array([source], dtype=np.int64)

        stream = LaunchStream()
        stream.launch(ops.init_distances_kernel(n), phase="init")

        total_edges = max(1, graph.num_edges)
        explored_edges = 0
        # Tracked incrementally (== n - visited.sum() at each loop top):
        # a per-level population count would make the traversal
        # O(levels × V) — 2,000+ levels on the road graph.
        unvisited = n - 1
        sqrt_n = float(np.sqrt(n))
        level = 0
        while frontier.size > 0:
            level += 1
            degrees = indptr[frontier + 1] - indptr[frontier]
            edges = int(degrees.sum())
            unexplored_edges = max(1, total_edges - explored_edges)
            explored_edges += edges
            # Beamer et al.'s direction-optimization heuristic.
            use_pull = (
                self.direction_optimizing
                and edges > unexplored_edges / self.beamer_alpha
                and frontier.size > n / self.beamer_beta
            )
            # degrees sum < 2^53, so the exact int quotient equals the
            # float-accumulated degrees.mean() bit for bit.
            avg_deg = max(1.0, edges / frontier.size)
            use_lb = frontier.size > 32 and (
                float(degrees.max()) > self.lb_skew * avg_deg
                or frontier.size > self.lb_size_sqrt * sqrt_n
            )

            if use_pull:
                # Pull cost is set by the unvisited set *before* this
                # level expands (those are the vertices whose in-edges
                # get scanned).  Materialized only when the Beamer
                # pre-conditions actually hold — push-only traversals
                # never pay this O(V) scan.
                unvisited_vertices = np.flatnonzero(~visited)
                scanned = int(
                    graph.frontier_edges(unvisited_vertices) * 0.6
                )

            # The actual expansion (correctness is tested against a
            # reference BFS).
            raw_neighbors = graph.expand(frontier)
            raw_out = raw_neighbors.size
            if 4 * raw_out >= n:
                # Dense level: dedup + visited-filter via a bitmap
                # scatter, O(V) regardless of duplication.
                mask = np.zeros(n, dtype=bool)
                mask[raw_neighbors] = True
                mask &= ~visited
                next_frontier = np.flatnonzero(mask)
            else:
                # Sparse level: filter first, then sort-unique only the
                # survivors — O(r log r) in the (tiny) raw output, never
                # in V.  Same sorted set either way.
                fresh = raw_neighbors[~visited[raw_neighbors]]
                next_frontier = np.unique(fresh)
            visited[next_frontier] = True

            phase = f"level{level}"
            if use_pull:
                # The pull kernel is sized by the pre-level unvisited
                # count, matching the frontier_edges argument above.
                stream.launch(ops.bitmap_convert_kernel(n), phase=phase)
                stream.launch(
                    ops.advance_pull_kernel(unvisited, scanned), phase=phase
                )
            else:
                if use_lb:
                    # The load-balanced advance sizes its output with a
                    # prefix scan; TWC assigns work dynamically instead.
                    stream.launch(
                        ops.output_offsets_kernel(frontier.size), phase=phase
                    )
                    stream.launch(
                        ops.advance_lb_kernel(frontier.size, edges),
                        phase=phase,
                    )
                else:
                    stream.launch(
                        ops.advance_twc_kernel(frontier.size, edges),
                        phase=phase,
                    )
                stream.launch(ops.filter_cull_kernel(raw_out), phase=phase)
                duplication = raw_out / max(1, next_frontier.size)
                if (
                    duplication > self.uniquify_duplication
                    and raw_out > 0.001 * total_edges
                ):
                    stream.launch(ops.uniquify_kernel(raw_out), phase=phase)
                if raw_out > self.compact_sqrt * sqrt_n:
                    stream.launch(ops.compact_scan_kernel(raw_out), phase=phase)
                    stream.launch(
                        ops.compact_scatter_kernel(raw_out), phase=phase
                    )

            if next_frontier.size > self.bitmask_threshold * n:
                stream.launch(
                    ops.bitmask_update_kernel(next_frontier.size), phase=phase
                )
            stream.launch(
                ops.length_reduce_kernel(max(1, next_frontier.size)),
                phase=phase,
            )
            unvisited -= int(next_frontier.size)
            frontier = next_frontier
        return stream

    # -- reference for tests ----------------------------------------------
    def reference_levels(self) -> np.ndarray:
        """Plain BFS level per vertex (-1 if unreachable)."""
        graph = self._build_graph()
        n = graph.num_vertices
        levels = np.full(n, -1, dtype=np.int64)
        source = int(self.source) % n
        levels[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            depth += 1
            neighbors = np.unique(graph.expand(frontier))
            fresh = neighbors[levels[neighbors] < 0]
            levels[fresh] = depth
            frontier = fresh
        return levels


class SocialBFS(GunrockBFS):
    """GST: BFS on the scale-free social graph."""

    def _info(self) -> WorkloadInfo:
        return GST_INFO

    def _num_vertices(self) -> int:
        return max(_MIN_SOCIAL_VERTICES, int(_SOCIAL_VERTICES * self.scale))

    def _build_graph(self) -> CSRGraph:
        return social_network(self._num_vertices(), seed=self.seed)


class RoadBFS(GunrockBFS):
    """GRU: BFS on the near-planar road graph."""

    #: Road frontiers never approach the pull threshold, but the
    #: strategy machinery is identical — only the input differs.
    def _info(self) -> WorkloadInfo:
        return GRU_INFO

    def _num_vertices(self) -> int:
        return max(_MIN_ROAD_VERTICES, int(_ROAD_VERTICES * self.scale))

    def _build_graph(self) -> CSRGraph:
        return road_network(self._num_vertices(), seed=self.seed)
