"""Plain PCA and clustering-stability measurement.

Section V.D motivates FAMD over the PCA used by prior characterization
work (Adhinarayanan & Feng; Goswami et al.; Ryoo et al.): mixing the
qualitative roofline labels into the factorization and clustering on
the first few factors "provides a clustering outcome that is more
stable than if we were to apply cluster analysis on the original
execution characteristics".

This module provides the two comparison points needed to test that
claim quantitatively:

* :func:`pca` — standard PCA on the quantitative variables only
  (the prior-work baseline);
* :func:`clustering_stability` — agreement (adjusted Rand index)
  between clusterings under leave-one-out perturbations of the sample,
  the standard stability measure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.clustering import cut_tree, ward_clustering
from repro.analysis.famd import FAMDResult, _standardize_quantitative


def pca(
    quantitative: Dict[str, Sequence[float]],
    n_components: int | None = None,
) -> FAMDResult:
    """PCA on standardized quantitative variables (prior-work baseline).

    Returns the same result type as :func:`~repro.analysis.famd.famd`
    so the clustering pipeline is interchangeable.
    """
    if not quantitative:
        raise ValueError("need at least one variable")
    lengths = {len(v) for v in quantitative.values()}
    if len(lengths) != 1:
        raise ValueError("all variables must have the same sample count")
    matrix = _standardize_quantitative(
        np.column_stack(
            [np.asarray(v, dtype=float) for v in quantitative.values()]
        )
    )
    u, singular_values, vt = np.linalg.svd(matrix, full_matrices=False)
    variances = singular_values ** 2
    total = variances.sum()
    ratio = variances / total if total > 0 else variances
    k = min(n_components or len(singular_values), len(singular_values))
    return FAMDResult(
        coordinates=u[:, :k] * singular_values[:k],
        explained_variance_ratio=ratio[:k],
        column_names=tuple(quantitative.keys()),
        loadings=vt.T[:, :k],
    )


def adjusted_rand_index(a: Sequence[int], b: Sequence[int]) -> float:
    """Adjusted Rand index between two flat clusterings."""
    a = list(a)
    b = list(b)
    if len(a) != len(b):
        raise ValueError("clusterings must label the same samples")
    n = len(a)
    if n < 2:
        raise ValueError("need at least two samples")

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    contingency: Dict[tuple, int] = {}
    a_sizes: Dict[int, int] = {}
    b_sizes: Dict[int, int] = {}
    for label_a, label_b in zip(a, b):
        contingency[(label_a, label_b)] = (
            contingency.get((label_a, label_b), 0) + 1
        )
        a_sizes[label_a] = a_sizes.get(label_a, 0) + 1
        b_sizes[label_b] = b_sizes.get(label_b, 0) + 1

    index = sum(comb2(c) for c in contingency.values())
    sum_a = sum(comb2(c) for c in a_sizes.values())
    sum_b = sum(comb2(c) for c in b_sizes.values())
    expected = sum_a * sum_b / comb2(n)
    maximum = (sum_a + sum_b) / 2.0
    if maximum == expected:
        return 1.0
    return (index - expected) / (maximum - expected)


def clustering_stability(
    points: np.ndarray,
    n_clusters: int,
    drop_count: int | None = None,
) -> float:
    """Leave-one-out stability of Ward clustering on *points*.

    For each dropped sample, recluster the rest and measure the
    adjusted Rand agreement with the full clustering restricted to the
    surviving samples; return the mean agreement (1.0 = perfectly
    stable).  ``drop_count`` limits how many leave-one-out folds run
    (defaults to all samples).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n < n_clusters + 2:
        raise ValueError("not enough samples for a stability estimate")
    labels = [str(i) for i in range(n)]
    full = cut_tree(ward_clustering(points, labels), n_clusters)

    agreements: List[float] = []
    folds = range(n) if drop_count is None else range(min(drop_count, n))
    for dropped in folds:
        keep = [i for i in range(n) if i != dropped]
        sub = cut_tree(
            ward_clustering(points[keep], [labels[i] for i in keep]),
            n_clusters,
        )
        reference = [full[i] for i in keep]
        agreements.append(adjusted_rand_index(reference, sub))
    return float(np.mean(agreements))
