"""Text-table renderers for the paper's exhibits.

A small formatting toolkit shared by the CLI, the report generator and
the benchmark harnesses: fixed-width tables, Table I/III renderers, and
stacked-bar renderings of time distributions.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.distribution import Table1Row
from repro.profiler.records import ApplicationProfile


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    align_right: Optional[Sequence[bool]] = None,
) -> str:
    """Render a fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    right = align_right or [False] * len(headers)

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if right[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = [fmt(headers), "-" * (sum(widths) + 2 * (len(widths) - 1))]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Table I as a text table."""
    return format_table(
        ["abbr", "domain", "total insts", "w-avg/kernel", "k(100%)", "k(70%)"],
        [
            (
                row.abbr,
                row.domain,
                f"{row.total_warp_insts:.3e}",
                f"{row.weighted_avg_insts_per_kernel:.3e}",
                row.kernels_100,
                row.kernels_70,
            )
            for row in rows
        ],
        align_right=[False, False, True, True, True, True],
    )


def render_stacked_time(
    profile: ApplicationProfile, width: int = 50, top: int = 8
) -> str:
    """One workload's GPU time as a stacked text bar (Fig. 2 style).

    Kernels beyond *top* are folded into an ``other`` segment.
    """
    shares = [
        (k.name, k.total_time_s / profile.total_time_s)
        for k in profile.kernels
    ]
    head = shares[:top]
    other = sum(share for _, share in shares[top:])
    if other > 0:
        head.append(("other", other))

    symbols = "#=+*o.:%&@-"
    bar = ""
    legend: List[str] = []
    for index, (name, share) in enumerate(head):
        symbol = symbols[index % len(symbols)]
        bar += symbol * max(1 if share > 0.005 else 0, round(share * width))
        legend.append(f"{symbol} {name} ({share:.0%})")
    return f"[{bar[:width].ljust(width)}]\n  " + "\n  ".join(legend)


def render_dominance_histogram(histogram: dict, total: int) -> str:
    """Fig. 2's headline statistic in prose form."""
    lines = []
    for k, count in sorted(histogram.items()):
        noun = "kernel" if k == 1 else "kernels"
        lines.append(
            f"{count}/{total} workloads cover >=70% of GPU time with "
            f"{k} {noun}"
        )
    return "\n".join(lines)
