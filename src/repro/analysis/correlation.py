"""Pearson-correlation analysis (Section V.C, Fig. 8).

Correlates the four primary metrics (GIPS, instruction intensity, SM
efficiency, warp occupancy) against the Table IV profiler metrics over
a population of kernels, and bands the absolute coefficients the way
Fig. 8 colours them: black (strong, 0.5-1.0), gray (weak, 0.2-0.5),
white (none, < 0.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from repro.gpu.metrics import PRIMARY_METRICS, SECONDARY_METRICS
from repro.profiler.records import ApplicationProfile, KernelProfile


class CorrelationBand(Enum):
    """Fig. 8's three-way colour code."""

    NONE = "white"  # |PCC| in [0, 0.2)
    WEAK = "gray"  # |PCC| in [0.2, 0.5)
    STRONG = "black"  # |PCC| in [0.5, 1]

    @classmethod
    def from_value(cls, pcc: float) -> "CorrelationBand":
        magnitude = abs(pcc)
        if magnitude >= 0.5:
            return cls.STRONG
        if magnitude >= 0.2:
            return cls.WEAK
        return cls.NONE


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    if len(xs) != len(ys):
        raise ValueError("samples must have the same length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two samples")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if denominator <= 0.0:
        # A constant sample has no linear relationship to measure
        # (this also guards the underflow of var_x * var_y for
        # subnormal variances).
        return 0.0
    return max(-1.0, min(1.0, cov / denominator))


def _kernel_metric(kernel: KernelProfile, metric: str) -> float:
    if metric == "gips":
        return kernel.gips
    if metric == "instruction_intensity":
        return kernel.instruction_intensity
    return kernel.metrics.metric(metric)


@dataclass
class CorrelationMatrix:
    """|PCC| values and bands for primary x secondary metrics."""

    rows: Tuple[str, ...]
    columns: Tuple[str, ...]
    values: Dict[Tuple[str, str], float]

    def value(self, row: str, column: str) -> float:
        return self.values[(row, column)]

    def band(self, row: str, column: str) -> CorrelationBand:
        return CorrelationBand.from_value(self.values[(row, column)])

    def correlated_columns(self, row: str) -> List[str]:
        """Columns with at least weak correlation for *row* (|PCC|>=0.2)."""
        return [
            col
            for col in self.columns
            if self.band(row, col) is not CorrelationBand.NONE
        ]

    def render(self) -> str:
        """Text table with the Fig. 8 colour code (#=black, +=gray)."""
        symbol = {
            CorrelationBand.STRONG: "#",
            CorrelationBand.WEAK: "+",
            CorrelationBand.NONE: ".",
        }
        width = max(len(c) for c in self.columns)
        lines = []
        for col_index in range(width):
            header = " " * 24 + " ".join(
                (c.ljust(width)[col_index] if col_index < len(c) else " ")
                for c in self.columns
            )
            lines.append(header)
        for row in self.rows:
            cells = " ".join(
                symbol[self.band(row, col)] for col in self.columns
            )
            lines.append(f"{row:<24}{cells}")
        lines.append("# strong (|PCC|>=0.5)   + weak (0.2<=|PCC|<0.5)   . none")
        return "\n".join(lines)


def correlation_matrix(
    profiles: Sequence[ApplicationProfile],
    rows: Sequence[str] = PRIMARY_METRICS,
    columns: Sequence[str] = SECONDARY_METRICS,
    dominant_only: bool = False,
) -> CorrelationMatrix:
    """Fig. 8's correlation matrix over a suite's kernels."""
    kernels: List[KernelProfile] = []
    for profile in profiles:
        kernels.extend(
            profile.dominant_kernels if dominant_only else profile.kernels
        )
    if len(kernels) < 2:
        raise ValueError("need at least two kernels to correlate")
    values: Dict[Tuple[str, str], float] = {}
    for row in rows:
        xs = [_kernel_metric(k, row) for k in kernels]
        for column in columns:
            ys = [_kernel_metric(k, column) for k in kernels]
            values[(row, column)] = pearson(xs, ys)
    return CorrelationMatrix(
        rows=tuple(rows), columns=tuple(columns), values=values
    )
