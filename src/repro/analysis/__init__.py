"""The paper's characterization toolkit (Section V).

* :mod:`~repro.analysis.distribution` — GPU-time distribution and
  dominant-kernel statistics (Figs. 2-3, Table I).
* :mod:`~repro.analysis.roofline` — the instruction roofline model
  (Figs. 4-7).
* :mod:`~repro.analysis.correlation` — Pearson-correlation analysis
  between primary and profiler metrics (Fig. 8).
* :mod:`~repro.analysis.famd` — Factor Analysis of Mixed Data, from
  scratch (the denoising step before clustering).
* :mod:`~repro.analysis.clustering` — Ward agglomerative clustering and
  dendrogram rendering (Fig. 9).
* :mod:`~repro.analysis.survey` — the benchmark-popularity survey data
  (Fig. 1).
* :mod:`~repro.analysis.sweep` — cross-device differentials (roofline
  elbows, classification flips, dominant-kernel shifts) over a device
  sweep.
* :mod:`~repro.analysis.similarity` — kernel-similarity index
  (VP-tree nearest / k-NN / representative-subset queries over
  standardized feature vectors; backs the proxy cache tier).
"""

from repro.analysis.clustering import (
    ClusteringResult,
    cut_tree,
    render_dendrogram,
    ward_clustering,
)
from repro.analysis.correlation import (
    CorrelationBand,
    correlation_matrix,
    pearson,
)
from repro.analysis.distribution import (
    cumulative_time_curve,
    dominance_histogram,
    table1_row,
)
from repro.analysis.famd import FAMDResult, famd
from repro.analysis.roofline import (
    RooflinePoint,
    application_roofline,
    classify_intensity,
    classify_latency,
    kernel_roofline,
)
from repro.analysis.subsetting import (
    RedundancyRow,
    SubsetResult,
    coverage,
    redundancy_report,
    representatives_for_coverage,
    select_representatives,
)
from repro.analysis.similarity import (
    METRIC_FEATURES,
    STRUCTURAL_FEATURES,
    KernelIndex,
    Neighbor,
    kernel_features,
    metric_features,
)
from repro.analysis.survey import SURVEY_COUNTS, survey_table
from repro.analysis.sweep import (
    DeviceElbowRow,
    SweepAnalysis,
    WorkloadClassRow,
    analyze_sweep,
    elbow_table,
    render_sweep_markdown,
)

__all__ = [
    "ClusteringResult",
    "cut_tree",
    "render_dendrogram",
    "ward_clustering",
    "CorrelationBand",
    "correlation_matrix",
    "pearson",
    "cumulative_time_curve",
    "dominance_histogram",
    "table1_row",
    "FAMDResult",
    "famd",
    "RooflinePoint",
    "application_roofline",
    "classify_intensity",
    "classify_latency",
    "kernel_roofline",
    "RedundancyRow",
    "SubsetResult",
    "coverage",
    "redundancy_report",
    "representatives_for_coverage",
    "select_representatives",
    "METRIC_FEATURES",
    "STRUCTURAL_FEATURES",
    "KernelIndex",
    "Neighbor",
    "kernel_features",
    "metric_features",
    "SURVEY_COUNTS",
    "survey_table",
    "DeviceElbowRow",
    "SweepAnalysis",
    "WorkloadClassRow",
    "analyze_sweep",
    "elbow_table",
    "render_sweep_markdown",
]
