"""Ward agglomerative clustering + dendrogram rendering (Fig. 9).

A from-scratch implementation of Ward's minimum-variance hierarchical
clustering using the Lance-Williams recurrence, plus a text dendrogram
renderer mirroring the paper's six-primary-cluster figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters *left* and *right* join."""

    left: int
    right: int
    height: float
    size: int


@dataclass
class ClusteringResult:
    """Full Ward dendrogram over labelled samples."""

    labels: Tuple[str, ...]
    merges: Tuple[Merge, ...]

    @property
    def n_samples(self) -> int:
        return len(self.labels)

    def heights(self) -> List[float]:
        return [merge.height for merge in self.merges]


def ward_clustering(
    points: np.ndarray, labels: Sequence[str]
) -> ClusteringResult:
    """Ward's method via the Lance-Williams update.

    ``points`` is (n_samples, n_features); cluster ids 0..n-1 are the
    leaves, and merge step i creates cluster id n+i.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2D array")
    n = points.shape[0]
    if n != len(labels):
        raise ValueError("labels must match the number of points")
    if n < 2:
        raise ValueError("need at least two points")

    # Squared Euclidean distances; Ward heights follow d^2 bookkeeping.
    diff = points[:, None, :] - points[None, :, :]
    distance = (diff ** 2).sum(axis=2)

    active: Dict[int, int] = {i: 1 for i in range(n)}  # id -> size
    # Map active cluster id -> row in the distance matrix bookkeeping.
    dist: Dict[Tuple[int, int], float] = {}
    ids = list(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            dist[(i, j)] = distance[i, j]

    def get(a: int, b: int) -> float:
        return dist[(a, b) if a < b else (b, a)]

    def put(a: int, b: int, value: float) -> None:
        dist[(a, b) if a < b else (b, a)] = value

    merges: List[Merge] = []
    next_id = n
    while len(ids) > 1:
        best = None
        best_pair = None
        for index_a in range(len(ids)):
            for index_b in range(index_a + 1, len(ids)):
                a, b = ids[index_a], ids[index_b]
                d = get(a, b)
                if best is None or d < best:
                    best = d
                    best_pair = (a, b)
        a, b = best_pair  # type: ignore[misc]
        size_a, size_b = active[a], active[b]
        new_size = size_a + size_b
        height = float(np.sqrt(max(0.0, best)))

        # Lance-Williams update for Ward linkage.
        for c in ids:
            if c in (a, b):
                continue
            size_c = active[c]
            total = new_size + size_c
            updated = (
                (size_a + size_c) / total * get(a, c)
                + (size_b + size_c) / total * get(b, c)
                - size_c / total * best
            )
            put(next_id, c, updated)

        ids.remove(a)
        ids.remove(b)
        ids.append(next_id)
        active[next_id] = new_size
        merges.append(Merge(left=a, right=b, height=height, size=new_size))
        next_id += 1

    return ClusteringResult(labels=tuple(labels), merges=tuple(merges))


def cut_tree(result: ClusteringResult, n_clusters: int) -> List[int]:
    """Flat cluster assignment (0..n_clusters-1 per sample).

    Cuts the dendrogram by undoing the last ``n_clusters - 1`` merges.
    """
    n = result.n_samples
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}]")
    # Union-find over all merges except the last n_clusters-1.
    parent = list(range(n + len(result.merges)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    keep = len(result.merges) - (n_clusters - 1)
    for index, merge in enumerate(result.merges):
        new_id = n + index
        if index < keep:
            parent[find(merge.left)] = new_id
            parent[find(merge.right)] = new_id

    roots: Dict[int, int] = {}
    assignment = []
    for leaf in range(n):
        root = find(leaf)
        if root not in roots:
            roots[root] = len(roots)
        assignment.append(roots[root])
    return assignment


def cluster_members(
    result: ClusteringResult, n_clusters: int
) -> List[List[str]]:
    """Labels grouped per flat cluster."""
    assignment = cut_tree(result, n_clusters)
    groups: List[List[str]] = [[] for _ in range(max(assignment) + 1)]
    for label, cluster in zip(result.labels, assignment):
        groups[cluster].append(label)
    return groups


def render_dendrogram(
    result: ClusteringResult,
    n_clusters: int = 6,
    max_members: Optional[int] = 12,
) -> str:
    """Text rendering of the Fig. 9 dendrogram.

    Shows the primary clusters (like the paper's six), each with its
    relative dissimilarity (link height to the rest of the tree) and
    its member kernels.
    """
    groups = cluster_members(result, n_clusters)
    assignment = cut_tree(result, n_clusters)
    # Height at which each primary cluster last merged internally.
    last_internal: Dict[int, float] = {i: 0.0 for i in range(len(groups))}
    n = result.n_samples

    cluster_of_leaf = dict(zip(range(n), assignment))
    # Track which primary cluster each merged node belongs to (if pure).
    node_cluster: Dict[int, Optional[int]] = dict(cluster_of_leaf)
    for index, merge in enumerate(result.merges):
        left = node_cluster.get(merge.left)
        right = node_cluster.get(merge.right)
        pure = left if (left == right and left is not None) else None
        node_cluster[n + index] = pure
        if pure is not None:
            last_internal[pure] = max(last_internal[pure], merge.height)

    top = max(m.height for m in result.merges)
    lines = [f"Ward dendrogram cut at {n_clusters} clusters "
             f"(top link height {top:.2f}):"]
    for cluster_id, members in enumerate(groups):
        height = last_internal.get(cluster_id, 0.0)
        bar = "=" * max(1, int(24 * height / top)) if top > 0 else "="
        shown = members if max_members is None else members[:max_members]
        extra = "" if len(shown) == len(members) else f" (+{len(members) - len(shown)} more)"
        lines.append(
            f"  cluster {cluster_id + 1} |{bar:<24}| "
            f"{', '.join(shown)}{extra}"
        )
    return "\n".join(lines)
