"""Instruction roofline analysis (Section IV, Figs. 4-7).

The paper plots performance (GIPS) against instruction intensity (warp
instructions per 32-byte DRAM transaction).  A kernel left of the elbow
(21.76 insts/txn on the RTX 3080) is *memory-intensive*; right of it,
*compute-intensive*.  A kernel below 1 % of peak performance is
*latency-bound*, else *bandwidth-bound* — the two qualitative labels
the clustering step (Fig. 9) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.gpu.device import RTX_3080, DeviceSpec
from repro.profiler.records import ApplicationProfile, KernelProfile

#: The paper's latency/bandwidth threshold: 1 % of peak performance.
LATENCY_BOUND_FRACTION = 0.01


@dataclass(frozen=True)
class RooflinePoint:
    """One point in a roofline chart."""

    label: str
    workload: str
    intensity: float  # warp insts per DRAM transaction
    gips: float
    time_share: float  # fraction of its application's GPU time
    intensity_class: str  # "compute" | "memory"
    latency_class: str  # "bandwidth" | "latency"

    @property
    def is_compute_intensive(self) -> bool:
        return self.intensity_class == "compute"

    def distance_to_roof(self, device: DeviceSpec = RTX_3080) -> float:
        """Achieved fraction of the applicable roof (<= 1)."""
        roof = min(
            device.peak_gips, self.intensity * device.peak_gtxn_per_s
        )
        return self.gips / roof if roof > 0 else 0.0


def classify_intensity(
    intensity: float, device: DeviceSpec = RTX_3080
) -> str:
    """Memory- vs compute-intensive by the roofline elbow."""
    return "compute" if intensity > device.roofline_elbow else "memory"


def classify_latency(gips: float, device: DeviceSpec = RTX_3080) -> str:
    """Latency- vs bandwidth-bound by the 1 %-of-peak threshold."""
    threshold = LATENCY_BOUND_FRACTION * device.peak_gips
    return "bandwidth" if gips > threshold else "latency"


def kernel_roofline(
    profile: ApplicationProfile,
    kernels: Sequence[KernelProfile] | None = None,
    device: DeviceSpec = RTX_3080,
) -> List[RooflinePoint]:
    """Roofline points for (a subset of) a workload's kernels.

    Pass ``profile.dominant_kernels`` to reproduce the dominant-only
    panels (Figs. 6c and 7c).
    """
    total_time = profile.total_time_s
    points = []
    for kernel in kernels if kernels is not None else profile.kernels:
        intensity = kernel.instruction_intensity
        gips = kernel.gips
        points.append(
            RooflinePoint(
                label=kernel.name,
                workload=profile.workload,
                intensity=intensity,
                gips=gips,
                time_share=kernel.total_time_s / total_time,
                intensity_class=classify_intensity(intensity, device),
                latency_class=classify_latency(gips, device),
            )
        )
    return points


def application_roofline(
    profile: ApplicationProfile, device: DeviceSpec = RTX_3080
) -> RooflinePoint:
    """Aggregate (whole-application) roofline point — Fig. 5."""
    intensity = profile.instruction_intensity
    gips = profile.gips
    return RooflinePoint(
        label=profile.workload,
        workload=profile.workload,
        intensity=intensity,
        gips=gips,
        time_share=1.0,
        intensity_class=classify_intensity(intensity, device),
        latency_class=classify_latency(gips, device),
    )


def render_roofline_ascii(
    points: Sequence[RooflinePoint],
    device: DeviceSpec = RTX_3080,
    width: int = 72,
    height: int = 20,
) -> str:
    """Text rendering of a roofline chart (log-log axes).

    Used by the benchmark harnesses to print the figures' series.
    """
    import math

    if not points:
        return "(no points)"
    min_x = min(p.intensity for p in points if p.intensity > 0)
    max_x = max(max(p.intensity for p in points), device.roofline_elbow * 4)
    min_y = min(p.gips for p in points if p.gips > 0)
    max_y = device.peak_gips * 1.2
    min_x = max(min_x / 2, 1e-3)
    min_y = max(min_y / 2, 1e-3)

    def col(x: float) -> int:
        t = (math.log10(x) - math.log10(min_x)) / (
            math.log10(max_x) - math.log10(min_x)
        )
        return min(width - 1, max(0, int(t * (width - 1))))

    def row(y: float) -> int:
        t = (math.log10(y) - math.log10(min_y)) / (
            math.log10(max_y) - math.log10(min_y)
        )
        return min(height - 1, max(0, int((1 - t) * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    # Roofs: memory slope then compute flat.
    for c in range(width):
        x = 10 ** (
            math.log10(min_x)
            + c / (width - 1) * (math.log10(max_x) - math.log10(min_x))
        )
        y = min(device.peak_gips, x * device.peak_gtxn_per_s)
        grid[row(y)][c] = "-" if x > device.roofline_elbow else "/"
    for point in points:
        r, c = row(max(point.gips, min_y)), col(max(point.intensity, min_x))
        grid[r][c] = "C" if point.is_compute_intensive else "M"

    lines = ["".join(r) for r in grid]
    lines.append(
        f"x: II {min_x:.3g}..{max_x:.3g} insts/txn (elbow "
        f"{device.roofline_elbow:.2f}) | y: GIPS {min_y:.3g}.."
        f"{max_y:.3g} | C=compute-side M=memory-side"
    )
    return "\n".join(lines)
