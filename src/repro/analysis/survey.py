"""The benchmark-popularity survey (Fig. 1).

Fig. 1 counts GPU-related papers in ISCA/MICRO/ASPLOS/HPCA from 2010
to 2020 by the benchmark suite they evaluate with.  This is literature
data, not a measurement, so we reproduce it as a dataset (transcribed
from the figure's visual proportions) plus rendering code.  The
load-bearing facts are ordinal: Rodinia first, Parboil second,
CUDA-SDK third, then LoneStar/PolyBench/SHOC.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Papers per suite per year (2010-2020), transcribed from Fig. 1.
SURVEY_COUNTS: Dict[str, Tuple[int, ...]] = {
    #               2010 11  12  13  14  15  16  17  18  19  20
    "Rodinia":      (1,  2,  4,  6, 10, 12, 14, 16, 15, 14, 12),
    "Parboil":      (1,  2,  3,  5,  6,  8,  8,  7,  6,  5,  4),
    "CUDA-SDK":     (2,  2,  3,  3,  4,  5,  5,  4,  4,  3,  3),
    "LoneStar":     (0,  1,  1,  2,  2,  3,  3,  3,  3,  2,  2),
    "PolyBench":    (0,  0,  1,  1,  2,  3,  3,  3,  2,  2,  2),
    "SHOC":         (0,  1,  1,  2,  2,  2,  2,  2,  2,  1,  1),
}

YEARS: Tuple[int, ...] = tuple(range(2010, 2021))


def total_papers(suite: str) -> int:
    """Total usage count for one suite across the decade."""
    if suite not in SURVEY_COUNTS:
        known = ", ".join(sorted(SURVEY_COUNTS))
        raise KeyError(f"unknown suite {suite!r}; known: {known}")
    return sum(SURVEY_COUNTS[suite])


def popularity_ranking() -> List[Tuple[str, int]]:
    """Suites ranked by total usage, most popular first."""
    return sorted(
        ((suite, total_papers(suite)) for suite in SURVEY_COUNTS),
        key=lambda item: item[1],
        reverse=True,
    )


def survey_table() -> str:
    """Text table of Fig. 1's data."""
    header = "suite        " + " ".join(f"{y % 100:>3}" for y in YEARS) + "  total"
    lines = [header, "-" * len(header)]
    for suite, total in popularity_ranking():
        counts = " ".join(f"{c:>3}" for c in SURVEY_COUNTS[suite])
        lines.append(f"{suite:<13}{counts}  {total:>5}")
    return "\n".join(lines)
