"""Benchmark subsetting and redundancy analysis.

The paper's related work (Adhinarayanan & Feng; Ryoo et al., "GPGPU
benchmark suites: how well do they sample the performance spectrum?")
selects *representative subsets* of kernels from a characterized
population.  This module implements that workflow on top of the FAMD
factor space used for Fig. 9:

* :func:`select_representatives` — k-medoids selection of K kernels
  that minimize the total distance from every kernel to its nearest
  representative;
* :func:`coverage` — how much of the population's dispersion a subset
  explains (1 - within-subset distance / total dispersion);
* :func:`redundancy_report` — per-suite redundancy: how many kernels a
  suite could drop while keeping a given coverage.

Together these quantify the paper's Observation 12 from the other
direction: a suite that covers a *larger space* needs *more*
representatives for the same coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class SubsetResult:
    """Outcome of a representative-selection run."""

    representative_indices: Tuple[int, ...]
    representative_labels: Tuple[str, ...]
    #: Index of the representative assigned to each sample.
    assignment: Tuple[int, ...]
    coverage: float


def _pairwise_sq_distances(points: np.ndarray) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    return (diff ** 2).sum(axis=2)


def coverage(points: np.ndarray, subset: Sequence[int]) -> float:
    """Fraction of total dispersion explained by *subset*.

    Defined as ``1 - sum_i min_j d2(i, subset_j) / sum_i d2(i, mean)``:
    1.0 when every point coincides with a representative, 0.0 when the
    subset explains nothing beyond the global mean.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty 2D array")
    if not subset:
        raise ValueError("subset must be non-empty")
    subset = list(subset)
    baseline = ((points - points.mean(axis=0)) ** 2).sum()
    if baseline <= 0:
        return 1.0
    to_subset = (
        (points[:, None, :] - points[subset][None, :, :]) ** 2
    ).sum(axis=2)
    residual = to_subset.min(axis=1).sum()
    return float(max(0.0, 1.0 - residual / baseline))


def select_representatives(
    points: np.ndarray,
    labels: Sequence[str],
    k: int,
    max_iterations: int = 50,
) -> SubsetResult:
    """Greedy-init k-medoids over the factor-space points.

    Deterministic: initialization is farthest-point (starting from the
    medoid of the whole population), refinement is standard alternating
    assignment/medoid update.
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n != len(labels):
        raise ValueError("labels must match points")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}]")

    d2 = _pairwise_sq_distances(points)

    # Farthest-point initialization from the global medoid.
    medoid0 = int(np.argmin(d2.sum(axis=1)))
    chosen = [medoid0]
    while len(chosen) < k:
        dist_to_chosen = d2[:, chosen].min(axis=1)
        chosen.append(int(np.argmax(dist_to_chosen)))

    for _ in range(max_iterations):
        assignment = np.asarray(d2[:, chosen]).argmin(axis=1)
        updated = []
        for cluster_index in range(k):
            members = np.flatnonzero(assignment == cluster_index)
            if members.size == 0:
                updated.append(chosen[cluster_index])
                continue
            within = d2[np.ix_(members, members)].sum(axis=1)
            updated.append(int(members[np.argmin(within)]))
        if updated == chosen:
            break
        chosen = updated

    assignment = np.asarray(d2[:, chosen]).argmin(axis=1)
    return SubsetResult(
        representative_indices=tuple(chosen),
        representative_labels=tuple(labels[i] for i in chosen),
        assignment=tuple(int(a) for a in assignment),
        coverage=coverage(points, chosen),
    )


def representatives_for_coverage(
    points: np.ndarray,
    labels: Sequence[str],
    target: float,
) -> SubsetResult:
    """Smallest K whose k-medoids subset reaches *target* coverage."""
    if not 0.0 < target <= 1.0:
        raise ValueError("target must be in (0, 1]")
    n = len(points)
    result = None
    for k in range(1, n + 1):
        result = select_representatives(points, labels, k)
        if result.coverage >= target:
            return result
    assert result is not None
    return result


@dataclass(frozen=True)
class RedundancyRow:
    """Per-suite redundancy summary."""

    suite: str
    kernels: int
    representatives_needed: int
    coverage: float

    @property
    def redundancy(self) -> float:
        """Fraction of kernels a suite could drop at this coverage."""
        return 1.0 - self.representatives_needed / self.kernels


def redundancy_report(
    groups: dict,
    target: float = 0.9,
) -> List[RedundancyRow]:
    """Representatives needed per group of (points, labels).

    ``groups`` maps a suite name to ``(points, labels)``.  A suite with
    higher redundancy samples a smaller part of the space per kernel —
    the quantitative counterpart of Observation 12.
    """
    rows = []
    for suite, (points, labels) in groups.items():
        result = representatives_for_coverage(points, labels, target)
        rows.append(
            RedundancyRow(
                suite=suite,
                kernels=len(labels),
                representatives_needed=len(result.representative_indices),
                coverage=result.coverage,
            )
        )
    return rows
