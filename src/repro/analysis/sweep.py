"""Cross-device sweep analysis: what changes when the platform does.

The single-device analyses (roofline, Table I, dominant kernels) each
describe one platform.  A device sweep produces the same artifacts for
every :class:`~repro.gpu.device.DeviceSpec` in a zoo, and the questions
worth asking are *differential*:

* **Where does the roofline elbow sit per device?**  The elbow
  (``peak_gips / peak_gtxn_per_s``) is the compute/memory boundary; a
  bandwidth-rich part (H100 at ~10 insts/txn) pushes it far left of a
  bandwidth-starved one (RTX 4090 at ~41), so the same workload can sit
  on opposite sides on different hardware.
* **Which workloads flip classification?**  A workload that is
  compute-intensive on one device and memory-intensive on another is
  exactly the kind of platform-sensitive application the paper's
  subsetting methodology must keep.
* **Does the dominant-kernel set shift?**  Per-kernel durations change
  with the device balance, so the kernels covering the top-N% of GPU
  time can differ — a warning that single-device kernel subsetting does
  not transfer.

Everything here consumes a
:class:`~repro.core.sweep.SweepRunReport` (or its plain
``{abbr: {device: Characterization}}`` results) and is pure analysis —
no simulation, no I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.gpu.device import DeviceSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.characterize import Characterization

__all__ = [
    "DeviceElbowRow",
    "SweepAnalysis",
    "WorkloadClassRow",
    "analyze_sweep",
    "dominant_kernel_shifts",
    "elbow_table",
    "render_sweep_markdown",
]


@dataclass(frozen=True)
class DeviceElbowRow:
    """One device's roofline geometry."""

    name: str
    peak_gips: float
    peak_gtxn_per_s: float
    elbow: float  # warp insts per 32B transaction at the roof corner


@dataclass(frozen=True)
class WorkloadClassRow:
    """One workload's aggregate intensity class on every device."""

    abbr: str
    #: ``device name -> "compute" | "memory"`` (sweep device order).
    classes: Tuple[Tuple[str, str], ...]

    @property
    def flips(self) -> bool:
        return len({cls for _, cls in self.classes}) > 1

    def class_on(self, device_name: str) -> str:
        for name, cls in self.classes:
            if name == device_name:
                return cls
        raise KeyError(device_name)


@dataclass
class SweepAnalysis:
    """The differential summary of one device sweep."""

    devices: List[DeviceSpec]
    baseline: str  # device name the shift columns compare against
    elbows: List[DeviceElbowRow]
    classes: List[WorkloadClassRow]
    #: ``abbr -> device name -> (added, removed)`` dominant-kernel names
    #: relative to the baseline device (devices with no shift omitted).
    dominant_shifts: Dict[str, Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]] = field(
        default_factory=dict
    )

    @property
    def flipped_workloads(self) -> List[str]:
        return [row.abbr for row in self.classes if row.flips]

    @property
    def shifted_workloads(self) -> List[str]:
        return [abbr for abbr, shifts in self.dominant_shifts.items() if shifts]


def elbow_table(devices: Sequence[DeviceSpec]) -> List[DeviceElbowRow]:
    """Roofline-elbow positions, sorted from memory-rich to -starved.

    A low elbow means the device's bandwidth roof reaches peak compute
    at low intensity — more of the intensity axis is compute-side.
    """
    rows = [
        DeviceElbowRow(
            name=d.name,
            peak_gips=d.peak_gips,
            peak_gtxn_per_s=d.peak_gtxn_per_s,
            elbow=d.roofline_elbow,
        )
        for d in devices
    ]
    return sorted(rows, key=lambda r: r.elbow)


def _dominant_names(char: "Characterization") -> Tuple[str, ...]:
    return tuple(sorted(p.label for p in char.dominant_points))


def dominant_kernel_shifts(
    per_device: Dict[str, "Characterization"], baseline: str
) -> Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]:
    """Per-device (added, removed) dominant kernels vs *baseline*.

    Devices whose dominant set matches the baseline's are omitted, so an
    empty dict means the selection is platform-stable for this workload.
    """
    base = set(_dominant_names(per_device[baseline]))
    shifts: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {}
    for name, char in per_device.items():
        if name == baseline:
            continue
        here = set(_dominant_names(char))
        if here != base:
            shifts[name] = (
                tuple(sorted(here - base)),
                tuple(sorted(base - here)),
            )
    return shifts


def analyze_sweep(
    results: Dict[str, Dict[str, "Characterization"]],
    devices: Sequence[DeviceSpec],
    baseline: Optional[str] = None,
) -> SweepAnalysis:
    """Differential analysis of sweep *results* across *devices*.

    *results* is the ``SweepRunReport.results`` mapping; *baseline*
    names the comparison device for dominant-kernel shifts (default:
    ``"RTX 3080"`` — the paper's platform — when swept, else the first
    device).
    """
    names = [d.name for d in devices]
    if baseline is None:
        baseline = "RTX 3080" if "RTX 3080" in names else names[0]
    if baseline not in names:
        raise KeyError(f"baseline {baseline!r} not in sweep ({names})")

    classes: List[WorkloadClassRow] = []
    shifts: Dict[str, Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]]] = {}
    for abbr, per_device in results.items():
        classes.append(
            WorkloadClassRow(
                abbr=abbr,
                classes=tuple(
                    (name, per_device[name].aggregate_point.intensity_class)
                    for name in names
                    if name in per_device
                ),
            )
        )
        if baseline in per_device:
            workload_shifts = dominant_kernel_shifts(per_device, baseline)
            if workload_shifts:
                shifts[abbr] = workload_shifts
    return SweepAnalysis(
        devices=list(devices),
        baseline=baseline,
        elbows=elbow_table(devices),
        classes=classes,
        dominant_shifts=shifts,
    )


def render_sweep_markdown(analysis: SweepAnalysis) -> str:
    """The sweep report section: elbows, class matrix, flips, shifts."""
    lines: List[str] = ["## Device sweep", ""]

    lines.append("### Roofline elbows")
    lines.append("")
    lines.append(
        "| Device | Peak GIPS | Peak GTxn/s | Elbow (insts/txn) |"
    )
    lines.append("|---|---:|---:|---:|")
    for row in analysis.elbows:
        lines.append(
            f"| {row.name} | {row.peak_gips:.1f} | "
            f"{row.peak_gtxn_per_s:.2f} | {row.elbow:.2f} |"
        )
    lines.append("")

    names = [d.name for d in analysis.devices]
    lines.append("### Aggregate intensity class per device")
    lines.append("")
    lines.append("| Workload | " + " | ".join(names) + " | Flips |")
    lines.append("|---|" + "---|" * len(names) + "---|")
    for row in analysis.classes:
        cells = []
        lookup = dict(row.classes)
        for name in names:
            cls = lookup.get(name, "-")
            cells.append("C" if cls == "compute" else "M" if cls == "memory" else cls)
        flag = "yes" if row.flips else ""
        lines.append(
            f"| {row.abbr} | " + " | ".join(cells) + f" | {flag} |"
        )
    lines.append("")

    flipped = analysis.flipped_workloads
    if flipped:
        lines.append(
            f"Classification flips across the sweep: "
            f"**{', '.join(flipped)}** — platform-sensitive; a "
            f"single-device compute/memory label does not transfer."
        )
    else:
        lines.append(
            "No workload flips classification across the sweep."
        )
    lines.append("")

    lines.append(
        f"### Dominant-kernel shifts vs {analysis.baseline}"
    )
    lines.append("")
    if not analysis.dominant_shifts:
        lines.append(
            "Dominant-kernel sets are identical on every device."
        )
    else:
        for abbr in sorted(analysis.dominant_shifts):
            for device_name, (added, removed) in sorted(
                analysis.dominant_shifts[abbr].items()
            ):
                parts = []
                if added:
                    parts.append("+" + ", +".join(added))
                if removed:
                    parts.append("-" + ", -".join(removed))
                lines.append(
                    f"- **{abbr}** on {device_name}: {'; '.join(parts)}"
                )
    lines.append("")
    return "\n".join(lines)
