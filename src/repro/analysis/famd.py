"""Factor Analysis of Mixed Data (FAMD), from scratch.

The paper uses FAMD (via R's FactoMineR) as a denoising step before
hierarchical clustering: quantitative profiler metrics *and* the two
qualitative roofline labels (memory/compute-intensive,
latency/bandwidth-bound) are projected onto a few dominant factors.

FAMD is PCA on a mixed design matrix:

* each quantitative variable is standardized (zero mean, unit variance);
* each qualitative variable is one-hot encoded, with indicator column j
  scaled by ``1 / sqrt(p_j)`` (p_j = category proportion) and centred —
  which makes the one-hot block equivalent to running MCA on it.

The factorization itself is an SVD of the combined matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class FAMDResult:
    """Outcome of a FAMD factorization."""

    #: Row coordinates in factor space (n_samples x n_components).
    coordinates: np.ndarray
    #: Fraction of total variance captured by each component.
    explained_variance_ratio: np.ndarray
    #: Names of the design-matrix columns, in order.
    column_names: Tuple[str, ...]
    #: Component loadings (n_columns x n_components).
    loadings: np.ndarray

    @property
    def n_components(self) -> int:
        return self.coordinates.shape[1]

    def components_for_variance(self, target: float) -> int:
        """Smallest k whose cumulative explained variance >= target."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        cumulative = np.cumsum(self.explained_variance_ratio)
        return int(np.searchsorted(cumulative, target - 1e-12) + 1)


def standardize_columns(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Zero-mean / unit-variance standardization, column-wise.

    Returns ``(standardized, mean, std)`` where degenerate columns
    (zero variance) keep ``std = 1`` so they standardize to exactly 0
    instead of NaN.  This is the quantitative-block preprocessing FAMD
    applies before its SVD; :mod:`repro.analysis.similarity` reuses the
    same fit to place kernel feature vectors in a comparable space.
    """
    matrix = np.asarray(matrix, dtype=float)
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    return (matrix - mean) / std, mean, std


def _standardize_quantitative(matrix: np.ndarray) -> np.ndarray:
    standardized, _, _ = standardize_columns(matrix)
    return standardized


def _encode_qualitative(
    values: Sequence[str], name: str
) -> Tuple[np.ndarray, List[str]]:
    categories = sorted(set(values))
    n = len(values)
    columns = []
    names = []
    for category in categories:
        indicator = np.array(
            [1.0 if v == category else 0.0 for v in values]
        )
        proportion = indicator.mean()
        scaled = indicator / np.sqrt(proportion)
        columns.append(scaled - scaled.mean())
        names.append(f"{name}={category}")
    return np.column_stack(columns), names


def famd(
    quantitative: Dict[str, Sequence[float]],
    qualitative: Dict[str, Sequence[str]] | None = None,
    n_components: int | None = None,
) -> FAMDResult:
    """Run FAMD on named quantitative and qualitative variables.

    Parameters
    ----------
    quantitative:
        Mapping of variable name to per-sample values.
    qualitative:
        Mapping of variable name to per-sample category labels.
    n_components:
        Number of factors to keep (default: all).
    """
    if not quantitative:
        raise ValueError("need at least one quantitative variable")
    lengths = {len(v) for v in quantitative.values()}
    if qualitative:
        lengths |= {len(v) for v in qualitative.values()}
    if len(lengths) != 1:
        raise ValueError("all variables must have the same sample count")
    n_samples = lengths.pop()
    if n_samples < 2:
        raise ValueError("need at least two samples")

    names: List[str] = list(quantitative.keys())
    blocks = [
        _standardize_quantitative(
            np.column_stack([np.asarray(quantitative[k], dtype=float)
                             for k in quantitative])
        )
    ]
    if qualitative:
        for name, values in qualitative.items():
            encoded, encoded_names = _encode_qualitative(values, name)
            blocks.append(encoded)
            names.extend(encoded_names)

    design = np.column_stack(blocks)
    # SVD-based PCA (the design matrix is already centred).
    u, singular_values, vt = np.linalg.svd(design, full_matrices=False)
    variances = singular_values ** 2
    total = variances.sum()
    ratio = variances / total if total > 0 else variances

    k = n_components or len(singular_values)
    k = min(k, len(singular_values))
    coordinates = u[:, :k] * singular_values[:k]
    return FAMDResult(
        coordinates=coordinates,
        explained_variance_ratio=ratio[:k],
        column_names=tuple(names),
        loadings=vt.T[:, :k],
    )
