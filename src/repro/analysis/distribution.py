"""GPU-time distribution analysis (Figs. 2-3, Table I).

Operates on :class:`~repro.profiler.records.ApplicationProfile` objects
and produces the paper's distribution exhibits: stacked per-kernel time
shares, cumulative time-vs-kernel-count curves, dominance histograms,
and Table I rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.profiler.records import ApplicationProfile


def cumulative_time_curve(
    profile: ApplicationProfile, max_kernels: Optional[int] = None
) -> List[Tuple[int, float]]:
    """(kernel count, cumulative GPU-time fraction) pairs — Fig. 3."""
    fractions = profile.cumulative_time_fractions(max_kernels=max_kernels)
    return [(index + 1, value) for index, value in enumerate(fractions)]


def dominance_histogram(
    profiles: Sequence[ApplicationProfile], fraction: float = 0.70
) -> Dict[int, int]:
    """How many workloads need k kernels to cover *fraction* — Fig. 2.

    Returns ``{k: count}`` for the observed values of k.
    """
    histogram: Dict[int, int] = {}
    for profile in profiles:
        k = profile.num_kernels_for_fraction(fraction)
        histogram[k] = histogram.get(k, 0) + 1
    return dict(sorted(histogram.items()))


def time_share_table(
    profile: ApplicationProfile, top: int = 10
) -> List[Tuple[str, float]]:
    """Top-N (kernel, time share) rows for the stacked bars of Fig. 2."""
    shares = [
        (k.name, k.total_time_s / profile.total_time_s)
        for k in profile.kernels
    ]
    return shares[:top]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I."""

    workload: str
    abbr: str
    domain: str
    total_warp_insts: float
    weighted_avg_insts_per_kernel: float
    kernels_100: int
    kernels_70: int


def table1_row(profile: ApplicationProfile, abbr: str = "") -> Table1Row:
    """Compute one Table I row from a profile."""
    return Table1Row(
        workload=profile.workload,
        abbr=abbr or profile.workload,
        domain=profile.domain,
        total_warp_insts=profile.total_warp_insts,
        weighted_avg_insts_per_kernel=profile.weighted_avg_insts_per_kernel,
        kernels_100=profile.num_kernels,
        kernels_70=profile.num_kernels_for_fraction(0.70),
    )
