"""Kernel-similarity index over characterized-kernel feature vectors.

The content-addressed result cache is an ever-growing corpus of
characterized kernels, but exact-key lookups only ever reuse a result
for a *bit-identical* kernel.  Most launches in a suite are
near-duplicates of kernels already simulated (a BFS level with a
slightly different frontier, an MD step with a handful more pairs), so
similarity search over the corpus answers two new kinds of question:

* **analysis** — "which known kernel is this most like?", "what is the
  smallest representative subset of this corpus?" (the subsetting
  workflow of :mod:`repro.analysis.subsetting`, now sublinear);
* **reuse** — "is a cached result close enough to stand in for this
  kernel?" (the proxy tier in :mod:`repro.core.proxy`).

Feature space
-------------

:func:`kernel_features` maps a pre-simulation
:class:`~repro.gpu.kernel.KernelCharacteristics` to a fixed vector of
**every quantity the analytical timing model reads** — geometry,
instruction mix, ILP/MLP, and the memory footprint (sizes in log10 so
a 2x work difference is the same distance at every scale).  Two kernels
with equal feature vectors therefore produce bit-identical metrics,
which is what makes a zero-tolerance proxy exact.
:func:`metric_features` is the post-simulation counterpart over
:class:`~repro.gpu.metrics.KernelMetrics` (roofline coordinates plus
the Table IV vocabulary) for corpus analytics.

Vectors are standardized with the same zero-mean/unit-variance fit
FAMD applies to its quantitative block
(:func:`repro.analysis.famd.standardize_columns`), so distances weigh
each feature by its corpus-wide spread rather than its unit.

Index structure
---------------

:class:`KernelIndex` holds ``(key, raw vector, payload)`` items and
answers nearest / k-NN / representative-subset queries through a
**vantage-point tree** over the standardized vectors — sublinear node
visits on clustered corpora — with a brute-force scan as the reference
implementation (``use_tree=False``); the two are differentially pinned
to return identical answers.  Determinism contract: the fit and the
tree are always built from items sorted by key, ties are broken by
``(distance, key)``, so **answers are invariant to insertion order**.
The index is rebuilt lazily on the first query after a mutation
(additions arrive in bursts — one per simulated wave — so rebuilds are
rare and O(n log n)).

``distance_evals`` counts vector-distance computations, the
machine-independent cost measure ``benchmarks/bench_similarity.py``
uses to demonstrate sublinear query scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.famd import standardize_columns
from repro.analysis.subsetting import (
    SubsetResult,
    representatives_for_coverage,
    select_representatives,
)
from repro.gpu.kernel import KernelCharacteristics
from repro.gpu.metrics import KernelMetrics

__all__ = [
    "STRUCTURAL_FEATURES",
    "METRIC_FEATURES",
    "KernelIndex",
    "Neighbor",
    "kernel_features",
    "metric_features",
]

#: Pre-simulation feature names, in vector order.  Complete over the
#: timing-model inputs: equal vectors ⇒ bit-identical simulated metrics.
STRUCTURAL_FEATURES: Tuple[str, ...] = (
    "log_warp_insts",
    "log_grid_blocks",
    "warps_per_block",
    "ilp",
    "mlp",
    "mix_fp32",
    "mix_ld_st",
    "mix_branch",
    "mix_sync",
    "log_bytes_read",
    "log_bytes_written",
    "log_reuse_factor",
    "l1_locality",
    "coalescence",
    "l2_carry_in",
    "log_working_set",
)

#: Post-simulation feature names (corpus analytics / CLI queries).
METRIC_FEATURES: Tuple[str, ...] = (
    "log_gips",
    "log_instruction_intensity",
    "warp_occupancy",
    "sm_efficiency",
    "l1_hit_rate",
    "l2_hit_rate",
    "ld_st_utilization",
    "sp_utilization",
    "fraction_branches",
    "fraction_ld_st",
    "execution_stall",
    "pipe_stall",
    "sync_stall",
    "memory_stall",
)


def _log10p(value: float) -> float:
    return math.log10(1.0 + value)


def kernel_features(kernel: KernelCharacteristics) -> np.ndarray:
    """Structural feature vector of one kernel (STRUCTURAL_FEATURES order)."""
    memory = kernel.memory
    return np.array(
        [
            math.log10(kernel.warp_insts),
            math.log10(kernel.grid_blocks),
            float(kernel.warps_per_block),
            kernel.ilp,
            kernel.mlp,
            kernel.mix.fp32,
            kernel.mix.ld_st,
            kernel.mix.branch,
            kernel.mix.sync,
            _log10p(memory.bytes_read),
            _log10p(memory.bytes_written),
            math.log10(memory.reuse_factor),
            memory.l1_locality,
            memory.coalescence,
            memory.l2_carry_in,
            _log10p(memory.effective_working_set),
        ],
        dtype=np.float64,
    )


def metric_features(metrics: KernelMetrics) -> np.ndarray:
    """Post-simulation feature vector (METRIC_FEATURES order)."""
    return np.array(
        [
            _log10p(metrics.gips),
            _log10p(metrics.instruction_intensity),
            metrics.warp_occupancy,
            metrics.sm_efficiency,
            metrics.l1_hit_rate,
            metrics.l2_hit_rate,
            metrics.ld_st_utilization,
            metrics.sp_utilization,
            metrics.fraction_branches,
            metrics.fraction_ld_st,
            metrics.execution_stall,
            metrics.pipe_stall,
            metrics.sync_stall,
            metrics.memory_stall,
        ],
        dtype=np.float64,
    )


@dataclass(frozen=True)
class Neighbor:
    """One similarity-query answer."""

    key: str
    #: Euclidean distance in the standardized feature space.
    distance: float
    payload: Any
    #: True when the *raw* feature vectors are exactly equal — stronger
    #: than ``distance == 0`` (a zero-variance column standardizes every
    #: value to 0, hiding raw differences).  This is the condition the
    #: zero-tolerance proxy requires for bit-exact reuse.
    exact: bool


_LEAF_SIZE = 16


class _Node:
    """One vantage-point tree node over standardized row indices."""

    __slots__ = ("vantage", "radius", "inside", "outside", "leaf")

    def __init__(
        self,
        vantage: int = -1,
        radius: float = 0.0,
        inside: Optional["_Node"] = None,
        outside: Optional["_Node"] = None,
        leaf: Optional[np.ndarray] = None,
    ) -> None:
        self.vantage = vantage
        self.radius = radius
        self.inside = inside
        self.outside = outside
        self.leaf = leaf


class KernelIndex:
    """Similarity index over named kernel feature vectors.

    Parameters
    ----------
    feature_names:
        Names of the vector components (defaults to the structural
        space); only used for validation and introspection.
    use_tree:
        ``True`` (default) answers queries through the VP-tree;
        ``False`` is the brute-force reference path.  Both return
        identical answers (differentially tested) — the flag exists so
        the equivalence is checkable and the benchmark has a baseline.
    """

    def __init__(
        self,
        feature_names: Sequence[str] = STRUCTURAL_FEATURES,
        use_tree: bool = True,
    ) -> None:
        self.feature_names = tuple(feature_names)
        self.use_tree = use_tree
        self._items: Dict[str, Tuple[np.ndarray, Any]] = {}
        self._dirty = True
        # Built state (valid when not dirty):
        self._keys: List[str] = []
        self._raw: Optional[np.ndarray] = None
        self._points: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None
        self._root: Optional[_Node] = None
        #: Vector-distance computations across all queries so far — the
        #: machine-independent query-cost measure.
        self.distance_evals = 0
        #: Full (fit + tree) rebuilds performed.
        self.builds = 0

    # -- corpus management --------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def add(self, key: str, vector: np.ndarray, payload: Any = None) -> None:
        """Insert (or replace) one item.  O(1); the next query rebuilds."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (len(self.feature_names),):
            raise ValueError(
                f"expected a {len(self.feature_names)}-feature vector, "
                f"got shape {vector.shape}"
            )
        if not np.isfinite(vector).all():
            raise ValueError(f"non-finite feature vector for {key!r}")
        self._items[key] = (vector, payload)
        self._dirty = True

    def keys(self) -> List[str]:
        return sorted(self._items)

    # -- build ---------------------------------------------------------
    def build(self) -> None:
        """(Re)fit standardization and rebuild the tree.

        Deterministic regardless of insertion order: items are processed
        sorted by key, and tree partitions use stable distance ordering.
        """
        if not self._dirty:
            return
        self._keys = sorted(self._items)
        self._raw = np.array(
            [self._items[k][0] for k in self._keys], dtype=np.float64
        )
        if len(self._keys) == 0:
            self._points = None
            self._root = None
            self._dirty = False
            return
        self._points, self._mean, self._std = standardize_columns(self._raw)
        self._root = (
            self._build_node(np.arange(len(self._keys)))
            if self.use_tree
            else None
        )
        self.builds += 1
        self._dirty = False

    def _build_node(self, rows: np.ndarray) -> _Node:
        if len(rows) <= _LEAF_SIZE:
            return _Node(leaf=rows)
        assert self._points is not None
        vantage = int(rows[0])
        rest = rows[1:]
        dist = np.sqrt(
            ((self._points[rest] - self._points[vantage]) ** 2).sum(axis=1)
        )
        order = np.argsort(dist, kind="stable")
        mid = len(rest) // 2
        inside_rows = rest[order[:mid]]
        outside_rows = rest[order[mid:]]
        radius = float(dist[order[mid - 1]]) if mid > 0 else 0.0
        return _Node(
            vantage=vantage,
            radius=radius,
            inside=self._build_node(inside_rows),
            outside=self._build_node(outside_rows),
        )

    def _standardize_query(self, vector: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (np.asarray(vector, dtype=np.float64) - self._mean) / self._std

    # -- queries -------------------------------------------------------
    def nearest(
        self, vector: np.ndarray, exclude: Optional[str] = None
    ) -> Optional[Neighbor]:
        """The closest item (ties by key), or None on an empty corpus."""
        found = self.knn(vector, 1, exclude=exclude)
        return found[0] if found else None

    def knn(
        self, vector: np.ndarray, k: int, exclude: Optional[str] = None
    ) -> List[Neighbor]:
        """The k nearest items, sorted by ``(distance, key)``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.build()
        if not self._keys or (exclude is not None and len(self._keys) == 1
                              and self._keys[0] == exclude):
            return []
        query = self._standardize_query(vector)
        if self.use_tree:
            candidates = self._knn_tree(query, k, exclude)
        else:
            candidates = self._knn_brute(query, k, exclude)
        return [self._neighbor(row, dist, vector) for dist, _, row in candidates]

    def brute_knn(
        self, vector: np.ndarray, k: int, exclude: Optional[str] = None
    ) -> List[Neighbor]:
        """Reference answer: full scan (the differential-test oracle)."""
        self.build()
        if not self._keys:
            return []
        query = self._standardize_query(vector)
        candidates = self._knn_brute(query, k, exclude)
        return [self._neighbor(row, dist, vector) for dist, _, row in candidates]

    def _neighbor(
        self, row: int, dist: float, raw_query: np.ndarray
    ) -> Neighbor:
        assert self._raw is not None
        key = self._keys[row]
        exact = bool(
            np.array_equal(self._raw[row], np.asarray(raw_query, dtype=np.float64))
        )
        return Neighbor(
            key=key, distance=dist, payload=self._items[key][1], exact=exact
        )

    def _knn_brute(
        self, query: np.ndarray, k: int, exclude: Optional[str]
    ) -> List[Tuple[float, str, int]]:
        assert self._points is not None
        dist = np.sqrt(((self._points - query) ** 2).sum(axis=1))
        self.distance_evals += len(dist)
        ranked = sorted(
            (float(dist[row]), self._keys[row], row)
            for row in range(len(self._keys))
            if self._keys[row] != exclude
        )
        return ranked[:k]

    def _knn_tree(
        self, query: np.ndarray, k: int, exclude: Optional[str]
    ) -> List[Tuple[float, str, int]]:
        points = self._points
        assert points is not None and self._root is not None
        best: List[Tuple[float, str, int]] = []  # sorted, at most k

        def offer(dist: float, row: int) -> None:
            key = self._keys[row]
            if key == exclude:
                return
            entry = (dist, key, row)
            if len(best) < k:
                best.append(entry)
                best.sort()
            elif entry < best[-1]:
                best[-1] = entry
                best.sort()

        def tau() -> float:
            return best[-1][0] if len(best) == k else math.inf

        def visit(node: _Node) -> None:
            if node.leaf is not None:
                dist = np.sqrt(((points[node.leaf] - query) ** 2).sum(axis=1))
                self.distance_evals += len(node.leaf)
                for i, row in enumerate(node.leaf):
                    offer(float(dist[i]), int(row))
                return
            d_v = float(np.sqrt(((points[node.vantage] - query) ** 2).sum()))
            self.distance_evals += 1
            offer(d_v, node.vantage)
            assert node.inside is not None and node.outside is not None
            # Triangle-inequality bounds: inside holds rows with
            # d(row, vantage) <= radius, outside rows with >= radius.
            # Prune only on a *strict* bound violation (non-strict
            # visit conditions) so equal-distance ties are never
            # dropped; tie order is then resolved by the
            # (distance, key) sort, keeping answers insertion-order
            # invariant.  Visit the likelier side first to shrink tau
            # before testing the other side.
            if d_v <= node.radius:
                visit(node.inside)
                if d_v + tau() >= node.radius:
                    visit(node.outside)
            else:
                visit(node.outside)
                if d_v - tau() <= node.radius:
                    visit(node.inside)

        visit(self._root)
        return best

    # -- representative subsets ---------------------------------------
    def _built_points(self) -> Tuple[np.ndarray, List[str]]:
        self.build()
        if self._points is None:
            raise ValueError("representative queries need a non-empty index")
        return self._points, list(self._keys)

    def representative_subset(self, k: int) -> SubsetResult:
        """k-medoids representatives over the standardized corpus."""
        points, labels = self._built_points()
        return select_representatives(points, labels, k)

    def representatives_for_target(self, coverage: float) -> SubsetResult:
        """Smallest representative subset reaching *coverage* (in (0,1])."""
        points, labels = self._built_points()
        return representatives_for_coverage(points, labels, coverage)
