"""Observability sinks: the JSONL event log and the Chrome-trace export.

Two output formats, one record schema (see
:meth:`repro.obs.spans.Span.as_event`):

* :class:`JsonlSink` — an **append-only JSONL event log**: one JSON
  object per line, flushed after every record, so a run killed by
  SIGTERM (or anything else) leaves a valid parseable prefix.  The
  main process writes ``events.jsonl``; each pool worker writes
  ``events-<pid>.jsonl`` next to it (per-process files instead of
  cross-process appends, so records can never interleave mid-line).
  :func:`read_events` reads the whole set back, tolerating a torn
  final line.
* :func:`write_chrome_trace` — the merged records re-emitted in the
  Chrome trace-event JSON format (the same convention as the
  kernel-level :mod:`repro.profiler.trace_export` artifacts), so
  orchestration traces open directly in ``chrome://tracing`` or
  Perfetto alongside kernel traces.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "EventSink",
    "JsonlSink",
    "event_log_paths",
    "read_events",
    "tail_events",
    "write_chrome_trace",
]

EVENT_LOG_NAME = "events.jsonl"
CHROME_TRACE_NAME = "trace.json"


class EventSink:
    """Destination for observability records (duck-typed interface)."""

    def emit(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover
        pass


class JsonlSink(EventSink):
    """Append-only, line-flushed JSONL writer.

    The file handle opens lazily on the first record (a tracer that
    never fires never touches the filesystem) and appends — multiple
    runs into one directory accumulate, distinguished by ``trace_id``.
    Every record is flushed immediately: integrity after a hard kill
    is worth more here than write batching, and suite runs emit a few
    hundred records, not millions.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[Any] = None
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(
            json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
        )
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


def worker_log_path(trace_dir: Union[str, Path], pid: int) -> Path:
    """Event-log path for one worker process."""
    return Path(trace_dir) / f"events-{pid}.jsonl"


def event_log_paths(trace_dir: Union[str, Path]) -> List[Path]:
    """Every event-log file in *trace_dir* (main log first, sorted)."""
    root = Path(trace_dir)
    main = root / EVENT_LOG_NAME
    workers = sorted(
        p for p in root.glob("events-*.jsonl") if p.is_file()
    )
    return ([main] if main.is_file() else []) + workers


def read_events(
    source: Union[str, Path], strict: bool = False
) -> List[Dict[str, Any]]:
    """Parse events from a JSONL file or a whole trace directory.

    A torn trailing line (process killed mid-write) is skipped; with
    ``strict=True`` any unparseable line raises instead.  Records are
    returned in file order (main log first), *not* globally
    time-sorted — sort by ``ts_unix`` for a timeline view.
    """
    source = Path(source)
    paths = event_log_paths(source) if source.is_dir() else [source]
    events: List[Dict[str, Any]] = []
    for path in paths:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    if strict:
                        raise ValueError(
                            f"unparseable event-log line in {path}: {line[:80]!r}"
                        ) from None
                    continue  # torn write from a killed process
                if isinstance(record, dict):
                    events.append(record)
    return events


def tail_events(
    source: Union[str, Path], offset: int = 0
) -> "tuple[List[Dict[str, Any]], int]":
    """Incrementally read new events from a live JSONL log.

    Returns ``(events, new_offset)``: every *complete* record line that
    starts at or after byte *offset*, plus the offset to resume from on
    the next call.  A torn trailing line (writer mid-append) is left in
    place — the offset never advances past it, so the next call re-reads
    it once the newline lands.  An absent file yields ``([], offset)``.

    This is the streaming primitive behind the service layer's
    ``GET /v1/jobs/{id}/events`` endpoint: repeated calls during a run
    see exactly the record sequence a post-hoc :func:`read_events`
    would, in the same order.
    """
    path = Path(source)
    try:
        with path.open("rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return [], offset
    events: List[Dict[str, Any]] = []
    consumed = 0
    cursor = 0
    while True:
        newline = chunk.find(b"\n", cursor)
        if newline < 0:
            break
        line = chunk[cursor:newline].strip()
        cursor = newline + 1
        consumed = cursor
        if not line:
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue  # unparseable complete line: skip, don't re-read
        if isinstance(record, dict):
            events.append(record)
    return events, offset + consumed


def _chrome_events(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Records → Chrome trace-event objects (plus process metadata)."""
    out: List[Dict[str, Any]] = []
    roles: Dict[int, str] = {}
    for record in events:
        pid = int(record.get("pid", 0))
        attrs = record.get("attrs") or {}
        roles.setdefault(pid, str(attrs.get("role", "process")))
        base = {
            "name": record.get("name", "?"),
            "cat": str(record.get("cat", "run")),
            "pid": pid,
            "tid": int(record.get("tid", 0)),
            "ts": float(record.get("ts_unix", 0.0)) * 1e6,
            "args": dict(attrs, trace_id=record.get("trace_id"),
                         status=record.get("status", "ok")),
        }
        if record.get("type") == "span":
            base["ph"] = "X"
            base["dur"] = float(record.get("dur_s", 0.0)) * 1e6
        else:
            base["ph"] = "i"
            base["s"] = "t"
        out.append(base)
    for pid, role in sorted(roles.items()):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro-{role} ({pid})"},
            }
        )
    return out


def write_chrome_trace(
    events: List[Dict[str, Any]], path: Union[str, Path]
) -> int:
    """Write *events* as a Chrome/Perfetto trace file; return the count.

    Uses the JSON object form (``{"traceEvents": [...]}``) with
    microsecond timestamps on the shared wall clock, so spans emitted
    by different processes line up on one timeline.
    """
    path = Path(path)
    trace_events = _chrome_events(events)
    trace_events.sort(key=lambda e: e.get("ts", 0.0))
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metadata": {"producer": "repro.obs"},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
    os.replace(tmp, path)
    return len(trace_events)
