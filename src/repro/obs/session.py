"""Run-scoped observability session: wiring tracer, metrics and sinks.

An :class:`ObsSession` is what the characterization engine actually
holds: one :class:`~repro.obs.spans.Tracer` (metrics always on — dict
updates are effectively free; the JSONL sink only when a trace
directory was requested) plus the machinery to

* hand span context to pool workers (:class:`TraceHandoff`, a small
  picklable value rooting worker spans under the parent's suite span),
* build worker-side tracers (:func:`worker_tracer`) that write to
  per-pid event logs, and
* finalize the run: merge worker logs into the canonical
  ``events.jsonl``, export the Chrome trace, and freeze the merged
  metrics into a :class:`~repro.obs.metrics.RunProfile`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry, RunProfile
from repro.obs.sinks import (
    CHROME_TRACE_NAME,
    EVENT_LOG_NAME,
    JsonlSink,
    read_events,
    worker_log_path,
    write_chrome_trace,
)
from repro.obs.spans import Tracer

__all__ = [
    "ObsSession",
    "TraceHandoff",
    "worker_tracer",
]


@dataclass(frozen=True)
class TraceHandoff:
    """Picklable span context shipped to a pool worker with its task.

    Carries everything a worker needs to keep its spans in the parent's
    trace: the run's ``trace_id``, the parent span to root under, the
    trace directory (``None`` → metrics only, no event log), and the
    submit wall-time so the worker can report its queue wait.
    """

    trace_id: str
    parent_span_id: Optional[str]
    trace_dir: Optional[str]
    submitted_unix: float


def worker_tracer(handoff: Optional[TraceHandoff]) -> Tracer:
    """Build the worker-side tracer for one characterization task.

    Observes the submit→start queue wait immediately, so every worker
    attempt contributes to the ``queue.wait_s`` histogram.  The sink —
    present only when tracing is enabled — appends to this worker's
    own ``events-<pid>.jsonl`` (see :mod:`repro.obs.sinks` for why
    per-process files).
    """
    if handoff is None:
        return Tracer(metrics=MetricsRegistry(), role="worker")
    sink = (
        JsonlSink(worker_log_path(handoff.trace_dir, os.getpid()))
        if handoff.trace_dir
        else None
    )
    tracer = Tracer(
        trace_id=handoff.trace_id,
        sink=sink,
        metrics=MetricsRegistry(),
        parent_id=handoff.parent_span_id,
        role="worker",
    )
    tracer.observe("queue.wait_s", max(0.0, time.time() - handoff.submitted_unix))
    return tracer


class ObsSession:
    """One run's observability context, owned by the engine."""

    def __init__(self, trace_dir: Optional[str] = None) -> None:
        self.trace_dir: Optional[Path] = (
            Path(trace_dir) if trace_dir else None
        )
        self.metrics = MetricsRegistry()
        sink = (
            JsonlSink(self.trace_dir / EVENT_LOG_NAME)
            if self.trace_dir is not None
            else None
        )
        self.tracer = Tracer(sink=sink, metrics=self.metrics, role="main")

    @property
    def tracing(self) -> bool:
        """Whether an event log / Chrome trace is being written."""
        return self.trace_dir is not None

    # -- worker pool ---------------------------------------------------
    def handoff(self) -> TraceHandoff:
        """Span context for a task submitted to the pool *now*."""
        return TraceHandoff(
            trace_id=self.tracer.trace_id,
            parent_span_id=self.tracer.current_span_id(),
            trace_dir=str(self.trace_dir) if self.trace_dir else None,
            submitted_unix=time.time(),
        )

    def absorb(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Merge a worker's metrics snapshot into the run registry."""
        if snapshot:
            self.metrics.merge_dict(snapshot)

    # -- finalization --------------------------------------------------
    def run_profile(self) -> RunProfile:
        """Freeze the merged metrics into the report-facing profile."""
        return RunProfile.from_registry(self.metrics)

    def finalize(self) -> Optional[Path]:
        """Close sinks, fold worker logs in, export the Chrome trace.

        Worker ``events-<pid>.jsonl`` files are appended into the main
        ``events.jsonl`` (then removed), keeping one canonical
        append-only log per directory; the Chrome trace is rebuilt
        from the *full* log, so successive runs into one directory
        layer onto one timeline.  Returns the Chrome-trace path, or
        ``None`` when tracing was disabled.
        """
        if self.tracer.sink is not None:
            self.tracer.sink.close()
        if self.trace_dir is None:
            return None
        main_log = self.trace_dir / EVENT_LOG_NAME
        worker_logs = sorted(self.trace_dir.glob("events-*.jsonl"))
        if worker_logs:
            with main_log.open("a", encoding="utf-8") as out:
                for path in worker_logs:
                    for record in read_events(path):
                        out.write(
                            json.dumps(
                                record, separators=(",", ":"), sort_keys=True
                            )
                            + "\n"
                        )
                    path.unlink(missing_ok=True)
        chrome_path = self.trace_dir / CHROME_TRACE_NAME
        events = read_events(main_log) if main_log.is_file() else []
        write_chrome_trace(events, chrome_path)
        return chrome_path
