"""Metrics: counters, gauges, histograms, and the aggregated run profile.

A :class:`MetricsRegistry` is a cheap in-process accumulator (plain
dict updates — no locks, no I/O) that each process of a suite run owns
privately; worker registries are snapshotted into JSON-able dicts,
shipped back with the result tuple, and merged into the parent's
registry.  The merged registry is then frozen into a
:class:`RunProfile` — the machine-readable "where did the wall-clock
go" record carried on
:class:`~repro.core.suite.SuiteRunReport.run_profile` and rendered as
the report's "Run profile" section.

Naming conventions (what the run profile parses):

``span.<name>_s``
    Histogram of every span with that name (per-phase wall clock).
``workload.<ABBR>.<phase>_s``
    Histogram of one workload's phase timings (``stream-gen``,
    ``simulate``, ``analyze``, ``cache-lookup``, ``cache-store``).
``cache.*``
    Counters mirroring :class:`~repro.core.cache.CacheStats`
    (``memory_hits`` / ``disk_hits`` / ``misses`` / ``stores`` /
    ``corrupt``), incremented by the instrumented cache itself.
``engine.*``
    Counters for resilience machinery: ``retries``, ``timeouts``,
    ``pool_rebuilds``, ``pool_fallbacks``, ``journal_checkpoints``,
    ``workloads_completed`` / ``_failed`` / ``_resumed``.
``queue.wait_s``
    Histogram of pool submit → worker pickup latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = [
    "HistogramStat",
    "MetricsRegistry",
    "RunProfile",
]

#: Phase-span names rendered (in this order) in the run-profile table.
PHASE_ORDER = (
    "stream-gen",
    "cache-lookup",
    "simulate",
    "analyze",
    "cache-store",
)


@dataclass
class HistogramStat:
    """Streaming summary of one histogram: count / total / min / max."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramStat") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HistogramStat":
        count = int(payload.get("count", 0))
        if count == 0:
            return cls()
        return cls(
            count=count,
            total=float(payload.get("total", 0.0)),
            min=float(payload.get("min", 0.0)),
            max=float(payload.get("max", 0.0)),
        )


class MetricsRegistry:
    """Process-local counters/gauges/histograms, mergeable across workers."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramStat] = {}

    # -- recording -----------------------------------------------------
    def incr(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        stat = self.histograms.get(name)
        if stat is None:
            stat = HistogramStat()
            self.histograms[name] = stat
        stat.observe(value)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.incr(name, value)
        for name, value in other.gauges.items():
            self.gauges[name] = value  # last writer wins
        for name, stat in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = HistogramStat()
                self.histograms[name] = mine
            mine.merge(stat)

    def merge_dict(self, snapshot: Mapping[str, Any]) -> None:
        """Merge a :meth:`snapshot` produced in another process."""
        for name, value in snapshot.get("counters", {}).items():
            self.incr(name, float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = float(value)
        for name, payload in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = HistogramStat()
                self.histograms[name] = mine
            mine.merge(HistogramStat.from_dict(payload))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy safe to pickle across the pool boundary."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: stat.as_dict() for name, stat in self.histograms.items()
            },
        }


@dataclass
class RunProfile:
    """Aggregated observability record of one suite run (JSON-stable).

    A frozen view over the merged :class:`MetricsRegistry` — plain
    dicts of floats, so it serializes losslessly and compares by value
    (the suite-report round-trip test relies on that).
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "RunProfile":
        snapshot = registry.snapshot()
        return cls(
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
            histograms=snapshot["histograms"],
        )

    # -- derived views -------------------------------------------------
    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    @property
    def cache_lookups(self) -> float:
        return (
            self.counter("cache.memory_hits")
            + self.counter("cache.disk_hits")
            + self.counter("cache.misses")
        )

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_lookups
        if not lookups:
            return 0.0
        hits = self.counter("cache.memory_hits") + self.counter(
            "cache.disk_hits"
        )
        return hits / lookups

    @property
    def retries(self) -> int:
        return int(self.counter("engine.retries"))

    @property
    def timeouts(self) -> int:
        return int(self.counter("engine.timeouts"))

    @property
    def pool_rebuilds(self) -> int:
        return int(self.counter("engine.pool_rebuilds"))

    @property
    def journal_checkpoints(self) -> int:
        return int(self.counter("engine.journal_checkpoints"))

    def phase_seconds(self, phase: str) -> float:
        """Total seconds spent in one phase span across the whole run."""
        stat = self.histograms.get(f"span.{phase}_s")
        return float(stat.get("total", 0.0)) if stat else 0.0

    def workload_phases(self) -> Dict[str, Dict[str, float]]:
        """Per-workload phase totals: ``{abbr: {phase: seconds}}``.

        Parsed back out of the ``workload.<ABBR>.<phase>_s`` histogram
        names; retried attempts accumulate into the same bucket (the
        profile reports wall-clock *spent*, not just the last try).
        """
        phases: Dict[str, Dict[str, float]] = {}
        for name, stat in self.histograms.items():
            if not name.startswith("workload.") or not name.endswith("_s"):
                continue
            remainder = name[len("workload.") : -len("_s")]
            abbr, separator, phase = remainder.partition(".")
            if not separator:
                continue
            phases.setdefault(abbr, {})[phase] = float(
                stat.get("total", 0.0)
            )
        return phases

    # -- serialization -------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: dict(stat) for name, stat in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunProfile":
        return cls(
            counters={
                k: float(v) for k, v in payload.get("counters", {}).items()
            },
            gauges={
                k: float(v) for k, v in payload.get("gauges", {}).items()
            },
            histograms={
                name: {k: float(v) for k, v in stat.items()}
                for name, stat in payload.get("histograms", {}).items()
            },
        )


def run_profile_or_none(
    profile: Optional[RunProfile],
) -> Optional[Dict[str, Any]]:
    """Serialize an optional profile (helper for the report serializer)."""
    return profile.as_dict() if profile is not None else None
