"""Run-scoped observability for the characterization pipeline.

``repro.obs`` gives suite runs a first-class, machine-readable view of
themselves: hierarchical **spans** (suite → workload attempt →
stream-gen / simulate / analyze, plus cache, retry, journal and pool
events), a **metrics registry** (counters / gauges / histograms,
aggregated across pool workers into the
:class:`~repro.obs.metrics.RunProfile` carried on every
``SuiteRunReport``), and two **sinks** — an append-only JSONL event
log and a Chrome-trace (``chrome://tracing`` / Perfetto) export.

Design rules (see DESIGN.md §11):

* observability *reads* the pipeline, never feeds it — results and
  launch-stream digests are bit-for-bit identical with tracing on or
  off;
* stdlib-only, importable from anywhere in the tree without cycles;
* disabled tracing is :data:`~repro.obs.spans.NULL_TRACER`, a strict
  no-op.
"""

from repro.obs.metrics import HistogramStat, MetricsRegistry, RunProfile
from repro.obs.session import ObsSession, TraceHandoff, worker_tracer
from repro.obs.sinks import (
    EventSink,
    JsonlSink,
    event_log_paths,
    read_events,
    tail_events,
    write_chrome_trace,
)
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer, new_id

__all__ = [
    "EventSink",
    "HistogramStat",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ObsSession",
    "RunProfile",
    "Span",
    "TraceHandoff",
    "Tracer",
    "event_log_paths",
    "new_id",
    "read_events",
    "tail_events",
    "worker_tracer",
    "write_chrome_trace",
]
