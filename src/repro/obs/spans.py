"""Run-scoped spans: the tracing half of :mod:`repro.obs`.

A :class:`Tracer` records *hierarchical spans* (named, timed regions —
suite → workload attempt → stream-gen / simulate / analyze) and
*instant events* (retry fired, checkpoint written, cache probe) for one
pipeline run.  Every record carries the run's ``trace_id``, its own
``span_id``, and its parent's id, so the forest can be reassembled from
a flat event log regardless of which process or thread emitted it.

Two propagation mechanisms keep parentage correct:

* **within a process** — a thread-local span stack: ``tracer.span(...)``
  nested inside another span automatically records the inner span's
  parent.
* **across the worker pool** — a tracer constructed with an explicit
  ``parent_id`` (see :class:`repro.obs.session.TraceHandoff`) roots its
  spans under a span owned by another process.

The tracer is *read-only instrumentation*: it observes wall-clock and
counts, and never feeds anything back into the pipeline — launch
streams, digests, and characterization results are bit-for-bit
identical with tracing on or off.

Cost model: a tracer with neither a sink nor a metrics registry, and
the shared :data:`NULL_TRACER` singleton, are no-ops (no clock reads,
no allocation beyond the context-manager call).  A tracer with only a
metrics registry pays two ``perf_counter`` calls and one histogram
update per span.  Sinks add one buffered+flushed JSON line per record.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import EventSink

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "new_id",
]


def new_id() -> str:
    """A fresh 64-bit hex id for traces and spans."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One live (or finished) span.

    Usable as a context manager handle: ``with tracer.span(...) as sp:
    sp.set_attr(...)``.  Attribute values should be JSON-serializable.
    """

    name: str
    category: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_unix: float
    start_perf: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    duration_s: float = 0.0
    status: str = "ok"
    pid: int = 0
    tid: int = 0

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def as_event(self) -> Dict[str, Any]:
        """The JSONL event-log record for this (finished) span."""
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "tid": self.tid,
            "ts_unix": self.start_unix,
            "dur_s": self.duration_s,
            "status": self.status,
            "attrs": self.attrs,
        }


class _SpanContext:
    """Context manager binding one :class:`Span` to its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.span.status = "error"
            self.span.attrs.setdefault(
                "error", getattr(exc_type, "__name__", str(exc_type))
            )
        self._tracer._pop(self.span)
        return None


class Tracer:
    """Records spans and events for one run into a sink and a registry.

    Parameters
    ----------
    trace_id:
        Identity of the run; generated when omitted.  Workers inherit
        the parent's trace id through the handoff.
    sink:
        Optional :class:`~repro.obs.sinks.EventSink` receiving one
        record per finished span / instant event.  ``None`` disables
        the event log (metrics still accumulate).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  Every
        finished span is observed into the ``span.<name>_s`` histogram
        and — when the span has a ``workload`` attribute — into
        ``workload.<abbr>.<name>_s``, which is what the per-workload
        phase breakdown in the run profile is built from.
    parent_id:
        Span id (from another process) to root top-level spans under.
    role:
        Free-form process label (``"main"``, ``"worker"``) stamped on
        every record; the Chrome exporter uses it to name process rows.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        parent_id: Optional[str] = None,
        role: str = "main",
    ) -> None:
        self.trace_id = trace_id or new_id()
        self.sink = sink
        self.metrics = metrics
        self.role = role
        self._root_parent = parent_id
        self._local = threading.local()

    # -- plumbing ------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this tracer records anything at all."""
        return self.sink is not None or self.metrics is not None

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (or the remote parent)."""
        stack = self._stack()
        return stack[-1].span_id if stack else self._root_parent

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: out-of-order exit
            stack.remove(span)
        span.duration_s = time.perf_counter() - span.start_perf
        if self.metrics is not None:
            self.metrics.observe(f"span.{span.name}_s", span.duration_s)
            workload = span.attrs.get("workload")
            if workload:
                self.metrics.observe(
                    f"workload.{workload}.{span.name}_s", span.duration_s
                )
        if self.sink is not None:
            self.sink.emit(span.as_event())

    # -- public API ----------------------------------------------------
    def span(self, name: str, category: str = "run", **attrs: Any) -> _SpanContext:
        """Open a named span as a context manager.

        The span closes (and is recorded) when the ``with`` block
        exits; an exception marks it ``status="error"`` and re-raises.
        """
        record = Span(
            name=name,
            category=category,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=self.current_span_id(),
            start_unix=time.time(),
            start_perf=time.perf_counter(),
            attrs=dict(attrs),
            pid=os.getpid(),
            tid=threading.get_ident(),
        )
        record.attrs.setdefault("role", self.role)
        return _SpanContext(self, record)

    def event(self, name: str, category: str = "event", **attrs: Any) -> None:
        """Record an instant (zero-duration) event at the current spot."""
        if self.sink is None:
            return
        attrs.setdefault("role", self.role)
        self.sink.emit(
            {
                "type": "event",
                "name": name,
                "cat": category,
                "trace_id": self.trace_id,
                "span_id": new_id(),
                "parent_id": self.current_span_id(),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "ts_unix": time.time(),
                "dur_s": 0.0,
                "status": "ok",
                "attrs": attrs,
            }
        )

    def incr(self, name: str, value: float = 1.0) -> None:
        """Convenience: bump a counter on the attached registry."""
        if self.metrics is not None:
            self.metrics.incr(name, value)

    def observe(self, name: str, value: float) -> None:
        """Convenience: observe into a histogram on the registry."""
        if self.metrics is not None:
            self.metrics.observe(name, value)


class _NullSpanContext:
    """Shared, allocation-free no-op span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """A tracer that records nothing, at near-zero cost.

    ``span()`` hands back one shared no-op context manager — no clock
    reads, no id generation, no allocation — so instrumented code can
    call it unconditionally.  This is what disabled tracing resolves
    to throughout the pipeline.
    """

    def __init__(self) -> None:
        super().__init__(trace_id="null")

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, category: str = "run", **attrs: Any) -> Any:
        return _NULL_SPAN

    def event(self, name: str, category: str = "event", **attrs: Any) -> None:
        pass

    def incr(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def current_span_id(self) -> Optional[str]:
        return None


#: Shared no-op tracer: the default for every instrumented component.
NULL_TRACER = NullTracer()
