"""Reproduction of *Cactus: Top-Down GPU-Compute Benchmarking using
Real-Life Applications* (Naderan-Tahan & Eeckhout, IISWC 2021).

See :mod:`repro.core` for the end-to-end characterization pipeline.
"""

__version__ = "1.0.0"
