"""Characterization-as-a-service: an async job API over the engine.

``python -m repro serve`` boots a stdlib-only HTTP/JSON service that
accepts suite/workload/sweep characterization requests, coalesces
identical concurrent submissions onto a single engine execution
(single-flight, keyed by the engine's own run digest), enforces
per-client token-bucket quotas with fair FIFO-per-client scheduling,
streams per-job observability events, and drains gracefully on SIGTERM
— journaled, in-flight runs resume after restart.

Layering (edge → core):

* :mod:`repro.service.server` — asyncio HTTP/1.1 edge, routing, the
  event stream, signal-driven drain;
* :mod:`repro.service.jobs` — job store, worker pool, persistence,
  recovery, the engine front;
* :mod:`repro.service.coalesce` / :mod:`repro.service.quota` — the two
  admission primitives (single-flight map; token buckets + fair queue);
* :mod:`repro.service.schemas` — request validation and job identity;
* :mod:`repro.service.client` — stdlib client used by tests and CI.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coalesce import CoalesceStats, Coalescer
from repro.service.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JOB_INTERRUPTED,
    JOB_QUEUED,
    JOB_RUNNING,
    JobManager,
    JobRecord,
)
from repro.service.quota import (
    ClientQuotas,
    FairQueue,
    QuotaConfig,
    QuotaExceeded,
    TokenBucket,
)
from repro.service.schemas import (
    JobRequest,
    ValidationError,
    parse_job_request,
)
from repro.service.server import ReproService

__all__ = [
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_INTERRUPTED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "ClientQuotas",
    "CoalesceStats",
    "Coalescer",
    "FairQueue",
    "JobManager",
    "JobRecord",
    "JobRequest",
    "QuotaConfig",
    "QuotaExceeded",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "TokenBucket",
    "ValidationError",
    "parse_job_request",
]
