"""Asyncio HTTP/JSON edge for the characterization service.

A deliberately small, stdlib-only HTTP/1.1 server (no framework, no new
runtime dependency) in front of :class:`~repro.service.jobs.JobManager`:

========  ==========================  =====================================
method    path                        meaning
========  ==========================  =====================================
POST      ``/v1/jobs``                submit a characterization request
GET       ``/v1/jobs``                list known jobs (summaries)
GET       ``/v1/jobs/{id}``           job status (+ result once done)
GET       ``/v1/jobs/{id}/events``    live ndjson stream of obs events
GET       ``/v1/devices``             the device zoo
GET       ``/v1/workloads``           suites and workload descriptions
GET       ``/v1/similar``             kernel-similarity over done jobs
GET       ``/healthz``                liveness + coalesce/quota counters
========  ==========================  =====================================

Submissions respond ``202 Accepted`` with the job summary plus a
``coalesced`` flag; identical concurrent submissions receive the *same*
job id (single-flight coalescing, see :mod:`repro.service.coalesce`).
Validation problems are ``400`` with every error listed; quota
exhaustion is ``429`` with a ``Retry-After`` header; a draining server
answers ``503``.

The event stream replays the job's on-disk ``events.jsonl`` from the
start, then tails it (via :func:`repro.obs.tail_events`, which never
reads a torn line) until the job reaches a terminal state — so a client
that connects late still sees every event, and the streamed bytes are
exactly the file's complete lines.

Shutdown: SIGTERM/SIGINT triggers a graceful drain — stop accepting,
give running jobs a grace window, persist the rest as *interrupted*.
Their engine journals make a restart (same ``--state-dir``) resume
instead of recompute.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs import tail_events
from repro.service.jobs import JobManager
from repro.service.quota import QuotaExceeded
from repro.service.schemas import ValidationError, zoo_payload
from repro.workloads import get_workload, list_suites, list_workloads

__all__ = ["ReproService"]

_MAX_BODY_BYTES = 1 << 20  # requests are small JSON; 1 MiB is generous
_EVENT_POLL_S = 0.1


class _HttpError(Exception):
    def __init__(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(payload.get("error", status))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


class ReproService:
    """Bind a :class:`JobManager` to an asyncio HTTP listener."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_grace_s: float = 5.0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port  # 0 → ephemeral; actual port set by start()
        self.drain_grace_s = drain_grace_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Recover + start workers, bind the socket, return the port."""
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        for sock in sockets:
            if sock.family in (socket.AF_INET, socket.AF_INET6):
                self.port = sock.getsockname()[1]
                break
        self._write_discovery()
        return self.port

    def _write_discovery(self) -> None:
        """``server.json`` in the state dir: how clients find the port."""
        path = self.manager.state_dir / "server.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {"host": self.host, "port": self.port},
                separators=(",", ":"),
            ),
            encoding="utf-8",
        )

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def serve_forever(self, install_signals: bool = True) -> List[str]:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`).

        Returns the ids of jobs left *interrupted* by the drain.
        """
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self._shutdown.set)
                except (NotImplementedError, RuntimeError):
                    pass  # platform without signal support
        await self._shutdown.wait()
        return await self.stop()

    async def stop(self) -> List[str]:
        """Close the listener, then drain the manager."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        interrupted = await asyncio.to_thread(
            self.manager.drain, self.drain_grace_s
        )
        return interrupted

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            try:
                writer.write(
                    _response_bytes(
                        500,
                        _json_bytes(
                            {"error": f"{type(exc).__name__}: {exc}"}
                        ),
                    )
                )
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            parts = urlsplit(target)
            path = unquote(parts.path)
            query = parse_qs(parts.query)
            client = (
                headers.get("x-client", "").strip() or self._peer(writer)
            )
            if method == "GET" and self._is_events_path(path):
                await self._stream_events(writer, path)
                return
            status, payload, extra = self._route(
                method, path, query, body, client
            )
        except _HttpError as exc:
            status, payload, extra = exc.status, exc.payload, exc.headers
        writer.write(
            _response_bytes(status, _json_bytes(payload), extra_headers=extra)
        )
        await writer.drain()

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, {"error": "malformed request line"})
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            text = line.decode("latin-1").strip()
            if not text:
                break
            name, _, value = text.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, {"error": "bad Content-Length"}) from None
        if length <= 0:
            return b""
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, {"error": "request body too large"})
        return await reader.readexactly(length)

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        if isinstance(peer, (tuple, list)) and peer:
            return str(peer[0])
        return "unknown"

    # -- routing -------------------------------------------------------
    @staticmethod
    def _is_events_path(path: str) -> bool:
        segments = [s for s in path.split("/") if s]
        return (
            len(segments) == 4
            and segments[:2] == ["v1", "jobs"]
            and segments[3] == "events"
        )

    def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        body: bytes,
        client: str,
    ) -> Tuple[int, Any, Dict[str, str]]:
        segments = [s for s in path.split("/") if s]
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", **self.manager.stats()}, {}
        if segments[:2] == ["v1", "jobs"]:
            if len(segments) == 2:
                if method == "POST":
                    return self._submit(body, client)
                if method == "GET":
                    return (
                        200,
                        {"jobs": [r.summary() for r in self.manager.jobs()]},
                        {},
                    )
                raise _HttpError(405, {"error": f"{method} not allowed"})
            if len(segments) == 3 and method == "GET":
                return self._job_status(segments[2], query)
        if path == "/v1/devices" and method == "GET":
            return 200, {"devices": zoo_payload()}, {}
        if path == "/v1/workloads" and method == "GET":
            return 200, _workloads_payload(), {}
        if path == "/v1/similar" and method == "GET":
            return self._similar(query)
        raise _HttpError(404, {"error": f"no route for {method} {path}"})

    def _submit(
        self, body: bytes, client: str
    ) -> Tuple[int, Any, Dict[str, str]]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise _HttpError(
                400, {"error": "request body is not valid JSON"}
            ) from None
        try:
            record, coalesced = self.manager.submit(payload, client=client)
        except ValidationError as exc:
            raise _HttpError(400, exc.as_dict()) from None
        except QuotaExceeded as exc:
            retry = max(0.0, exc.retry_after_s)
            raise _HttpError(
                429,
                {"error": str(exc), "retry_after_s": retry},
                {"Retry-After": f"{retry:.3f}"},
            ) from None
        except RuntimeError as exc:
            raise _HttpError(503, {"error": str(exc)}) from None
        summary = record.summary()
        summary["coalesced"] = coalesced
        return 202, summary, {}

    def _job_status(
        self, job_id: str, query: Dict[str, List[str]]
    ) -> Tuple[int, Any, Dict[str, str]]:
        record = self.manager.get(job_id)
        if record is None:
            raise _HttpError(404, {"error": f"unknown job {job_id!r}"})
        payload = record.summary()
        want_result = query.get("result", ["1"])[-1] not in ("0", "false")
        if want_result and record.result is not None:
            payload["result"] = record.result
        payload["journal"] = self.manager.journal_progress(job_id)
        return 200, payload, {}

    def _similar(
        self, query: Dict[str, List[str]]
    ) -> Tuple[int, Any, Dict[str, str]]:
        keys = query.get("key")
        if not keys:
            raise _HttpError(
                400, {"error": "missing required query parameter 'key'"}
            )
        try:
            k = int(query.get("k", ["5"])[-1])
        except ValueError:
            raise _HttpError(400, {"error": "k must be an integer"}) from None
        try:
            payload = self.manager.similar(keys[-1], k=k)
        except KeyError as exc:
            raise _HttpError(
                404, {"error": f"kernel {exc.args[0]!r} not in corpus"}
            ) from None
        except ValueError as exc:
            raise _HttpError(400, {"error": str(exc)}) from None
        return 200, payload, {}

    # -- event streaming -----------------------------------------------
    async def _stream_events(
        self, writer: asyncio.StreamWriter, path: str
    ) -> None:
        """Replay + tail a job's ``events.jsonl`` as ndjson until done.

        Every streamed line is a complete line of the on-disk file (the
        tail reader never crosses a torn write), so capturing this
        stream and diffing it against the file is an exact equality
        check — which is what the CI smoke does.
        """
        job_id = [s for s in path.split("/") if s][2]
        record = self.manager.get(job_id)
        if record is None:
            writer.write(
                _response_bytes(
                    404, _json_bytes({"error": f"unknown job {job_id!r}"})
                )
            )
            await writer.drain()
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii"))
        await writer.drain()
        events_path: Path = self.manager.events_path(job_id)
        offset = 0
        while True:
            events, offset = tail_events(events_path, offset)
            for event in events:
                writer.write(
                    json.dumps(event, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
            if events:
                await writer.drain()
            if record.done_event.is_set():
                # One final read: the run may have flushed events
                # between our last read and the terminal transition.
                events, offset = tail_events(events_path, offset)
                for event in events:
                    writer.write(
                        json.dumps(event, separators=(",", ":")).encode(
                            "utf-8"
                        )
                        + b"\n"
                    )
                await writer.drain()
                return
            await asyncio.sleep(_EVENT_POLL_S)


def _workloads_payload() -> Dict[str, Any]:
    suites: Dict[str, List[Dict[str, str]]] = {}
    for suite in list_suites():
        entries = []
        for abbr in list_workloads(suite):
            # Tiny scale: we only want the static info, not a dataset.
            info = get_workload(abbr, scale=0.01).info
            entries.append(
                {
                    "abbr": info.abbr,
                    "name": info.name,
                    "suite": info.suite,
                    "domain": info.domain,
                    "description": info.description,
                    "dataset": info.dataset,
                }
            )
        suites[suite] = entries
    return {"suites": suites}
