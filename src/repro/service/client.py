"""Tiny stdlib client for the characterization service.

Used by the test suite, the CI end-to-end smoke and the ``curl``-averse.
One :class:`ServiceClient` per server; every call opens a fresh
connection (the server is ``Connection: close`` throughout), so the
client is trivially thread-safe — the concurrent-duplicate-submission
smoke drives one instance from many threads.
"""

from __future__ import annotations

import http.client
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, payload: Any) -> None:
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


class ServiceClient:
    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8383,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    @classmethod
    def from_state_dir(
        cls, state_dir: "str | Path", **kwargs: Any
    ) -> "ServiceClient":
        """Connect via the ``server.json`` discovery file the server
        writes into its state dir (how the smoke finds an ephemeral
        port)."""
        payload = json.loads(
            (Path(state_dir) / "server.json").read_text(encoding="utf-8")
        )
        return cls(host=payload["host"], port=int(payload["port"]), **kwargs)

    # -- plumbing ------------------------------------------------------
    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json"}
        if self.client_id:
            headers["X-Client"] = self.client_id
        return headers

    def _request(
        self, method: str, path: str, body: Optional[Any] = None
    ) -> Tuple[int, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = self._headers()
            encoded: Optional[bytes] = None
            if body is not None:
                encoded = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                payload = {"raw": raw.decode("utf-8", "replace")}
            return response.status, payload
        finally:
            conn.close()

    def _ok(self, method: str, path: str, body: Optional[Any] = None) -> Any:
        status, payload = self._request(method, path, body)
        if status >= 300:
            raise ServiceError(status, payload)
        return payload

    # -- API -----------------------------------------------------------
    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """POST /v1/jobs; returns the job summary with ``coalesced``."""
        return self._ok("POST", "/v1/jobs", request)

    def submit_raw(self, request: Any) -> Tuple[int, Any]:
        """Like :meth:`submit` but never raises — for error-path tests."""
        return self._request("POST", "/v1/jobs", request)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._ok("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str, include_result: bool = True) -> Dict[str, Any]:
        suffix = "" if include_result else "?result=0"
        return self._ok("GET", f"/v1/jobs/{job_id}{suffix}")

    def wait(
        self, job_id: str, timeout_s: float = 120.0, poll_s: float = 0.1
    ) -> Dict[str, Any]:
        """Poll until the job leaves queued/running, then return it."""
        import time

        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.job(job_id)
            if payload["state"] not in ("queued", "running"):
                return payload
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {payload['state']} after "
                    f"{timeout_s}s"
                )
            time.sleep(poll_s)

    def stream_events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Yield obs events live until the server closes the stream."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events", headers=self._headers()
            )
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode("utf-8"))
                except ValueError:
                    payload = {"raw": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, payload)
            buffer = b""
            while True:
                chunk = response.read(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """Collect the whole event stream (blocks until job terminal)."""
        return list(self.stream_events(job_id))

    def devices(self) -> List[Dict[str, Any]]:
        return self._ok("GET", "/v1/devices")["devices"]

    def workloads(self) -> Dict[str, Any]:
        return self._ok("GET", "/v1/workloads")["suites"]

    def similar(self, key: str, k: int = 5) -> Dict[str, Any]:
        from urllib.parse import quote

        return self._ok("GET", f"/v1/similar?key={quote(key)}&k={k}")

    def healthz(self) -> Dict[str, Any]:
        return self._ok("GET", "/healthz")
