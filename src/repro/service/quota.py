"""Admission control: per-client token buckets and fair FIFO queueing.

Two small, independently testable primitives sit between the HTTP edge
and the job workers:

* :class:`TokenBucket` — classic leaky-bucket admission.  A client
  starts with ``capacity`` tokens; each submission costs one; tokens
  refill continuously at ``refill_per_s``.  The invariant the property
  suite pins (``tests/service/test_quota.py``): over **any** window the
  number of admitted requests never exceeds
  ``capacity + refill_per_s * window`` — a burst can spend the bucket,
  but sustained traffic is rate-bound no matter how it is interleaved
  or how many threads hammer the bucket at once.
* :class:`FairQueue` — round-robin across clients, strict FIFO within
  each client.  One client queueing a thousand jobs cannot starve
  another client's first job: the scheduler rotates through clients
  with pending work, taking one job per turn.  Per-client submission
  order is never reordered (also property-tested).

Both use an injectable clock so tests are deterministic; both are
thread-safe (the service's asyncio edge and its worker threads share
them).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

__all__ = [
    "ClientQuotas",
    "FairQueue",
    "QuotaConfig",
    "QuotaExceeded",
    "TokenBucket",
]


@dataclass(frozen=True)
class QuotaConfig:
    """Per-client admission limits (one bucket per client)."""

    #: Burst budget: submissions admitted instantly from a cold start.
    capacity: float = 32.0
    #: Sustained admission rate, tokens (submissions) per second.
    refill_per_s: float = 8.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(
                f"capacity must be positive, got {self.capacity}"
            )
        if self.refill_per_s < 0:
            raise ValueError(
                f"refill_per_s must be >= 0, got {self.refill_per_s}"
            )


class QuotaExceeded(Exception):
    """A client exhausted its token bucket."""

    def __init__(self, client: str, retry_after_s: float) -> None:
        super().__init__(
            f"client {client!r} is over its submission quota; retry in "
            f"{retry_after_s:.2f}s"
        )
        self.client = client
        self.retry_after_s = retry_after_s


class TokenBucket:
    """Thread-safe continuous-refill token bucket."""

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if refill_per_s < 0:
            raise ValueError(
                f"refill_per_s must be >= 0, got {refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = self.capacity
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill_locked(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                self.capacity, self._tokens + elapsed * self.refill_per_s
            )
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend *tokens* if available; never blocks, never overdrafts."""
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        with self._lock:
            self._refill_locked(self._clock())
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (refreshed to now)."""
        with self._lock:
            self._refill_locked(self._clock())
            return self._tokens

    def retry_after_s(self, tokens: float = 1.0) -> float:
        """Seconds until *tokens* will be available (0 if already are)."""
        with self._lock:
            self._refill_locked(self._clock())
            deficit = tokens - self._tokens
            if deficit <= 0:
                return 0.0
            if self.refill_per_s == 0:
                return float("inf")
            return deficit / self.refill_per_s


class ClientQuotas:
    """One :class:`TokenBucket` per client, created on first sight."""

    def __init__(
        self,
        config: Optional[QuotaConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or QuotaConfig()
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def bucket(self, client: str) -> TokenBucket:
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(
                    self.config.capacity,
                    self.config.refill_per_s,
                    clock=self._clock,
                )
                self._buckets[client] = bucket
            return bucket

    def admit(self, client: str) -> None:
        """Charge one token; raise :class:`QuotaExceeded` when empty."""
        bucket = self.bucket(client)
        if not bucket.try_acquire():
            raise QuotaExceeded(client, bucket.retry_after_s())


class FairQueue:
    """Round-robin-across-clients queue, FIFO within each client.

    ``push`` never blocks.  ``pop`` blocks up to *timeout* (forever by
    default) and returns ``None`` once the queue is closed and empty —
    the worker-shutdown signal.
    """

    def __init__(self) -> None:
        # OrderedDict gives deterministic client rotation order
        # (first-seen first) for reproducible tests.
        self._queues: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._ring: Deque[str] = deque()
        self._size = 0
        self._closed = False
        self._cond = threading.Condition()

    def push(self, client: str, item: Any) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            queue = self._queues.get(client)
            if queue is None:
                queue = deque()
                self._queues[client] = queue
            if not queue:
                self._ring.append(client)
            queue.append(item)
            self._size += 1
            self._cond.notify()

    def pop(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[str, Any]]:
        """Next ``(client, item)`` in fair order, or ``None`` on close.

        A ``None`` return with ``timeout`` set may also mean the wait
        timed out; check :meth:`closed` to distinguish.
        """
        with self._cond:
            while self._size == 0:
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None
            client = self._ring.popleft()
            queue = self._queues[client]
            item = queue.popleft()
            self._size -= 1
            if queue:
                self._ring.append(client)  # back of the rotation
            return client, item

    def close(self) -> None:
        """Refuse new pushes and wake every blocked ``pop``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def pending(self, client: str) -> int:
        with self._cond:
            queue = self._queues.get(client)
            return len(queue) if queue else 0
