"""Job store and worker pool: the service's execution core.

A :class:`JobManager` owns everything between a validated
:class:`~repro.service.schemas.JobRequest` and a finished
characterization report:

* **admission** — per-client token-bucket quotas
  (:class:`~repro.service.quota.ClientQuotas`) then single-flight
  coalescing by job key (:class:`~repro.service.coalesce.Coalescer`):
  N identical concurrent submissions share one
  :class:`JobRecord` and therefore exactly one engine execution;
* **scheduling** — a bounded pool of worker threads draining a
  :class:`~repro.service.quota.FairQueue` (round-robin across clients,
  FIFO per client);
* **execution** — each job runs a fresh
  :class:`~repro.core.engine.CharacterizationEngine` against the
  manager's shared result-cache directory, with a per-job journal
  (``runs/<id>/journal``) and a per-job obs trace
  (``runs/<id>/trace/events.jsonl`` — the stream behind
  ``GET /v1/jobs/{id}/events``);
* **durability** — every state transition is persisted atomically to
  ``jobs/<id>.json``.  On restart, non-terminal jobs are re-queued;
  the engine's journal then resumes each from its last checkpoint, so
  a SIGTERM mid-run costs only the workload in flight.

The manager is synchronous/thread-based on purpose: the asyncio HTTP
edge (:mod:`repro.service.server`) stays single-threaded and
non-blocking, while engine runs — seconds to minutes of numpy — live on
plain daemon threads that a draining process can abandon safely
(journal writes are atomic, so abandonment never corrupts state).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.core.cache import CacheStats, ResultCache
from repro.core.engine import CharacterizationEngine
from repro.core.journal import RunJournal
from repro.core.resilience import RetryPolicy
from repro.core.serialize import (
    suite_run_report_to_dict,
    sweep_run_report_to_dict,
)
from repro.gpu.metrics import KernelMetrics
from repro.service.coalesce import Coalescer
from repro.service.quota import ClientQuotas, FairQueue, QuotaConfig
from repro.service.schemas import JobRequest, parse_job_request

__all__ = [
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_INTERRUPTED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JobManager",
    "JobRecord",
    "TERMINAL_STATES",
]

JOB_SCHEMA_VERSION = 1

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_INTERRUPTED = "interrupted"

#: States a job never leaves on its own (a failed job can be re-admitted
#: by a fresh identical submission, which replaces the record).
TERMINAL_STATES = frozenset({JOB_DONE, JOB_FAILED})


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclass
class JobRecord:
    """One admitted characterization job (shared by its subscribers)."""

    id: str
    request: JobRequest
    client: str
    state: str = JOB_QUEUED
    submitted_unix: float = 0.0
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: Submissions served by this record (1 = never coalesced).
    subscribers: int = 1
    error: Optional[str] = None
    #: Serialized run report (``suite_run_report_to_dict`` /
    #: ``sweep_run_report_to_dict``) once the job is done.
    result: Optional[Dict[str, Any]] = None
    #: Workloads the engine skipped thanks to journal resumption.
    resumed: List[str] = field(default_factory=list)
    cache_stats: Optional[Dict[str, int]] = None
    done_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def summary(self) -> Dict[str, Any]:
        """Status payload without the (potentially large) result."""
        return {
            "id": self.id,
            "kind": self.request.kind,
            "state": self.state,
            "client": self.client,
            "submitted_unix": self.submitted_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "subscribers": self.subscribers,
            "error": self.error,
            "resumed": list(self.resumed),
            "cache_stats": self.cache_stats,
            "request": self.request.to_dict(),
        }

    def to_dict(self) -> Dict[str, Any]:
        payload = self.summary()
        payload["schema"] = JOB_SCHEMA_VERSION
        payload["result"] = self.result
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        record = cls(
            id=str(payload["id"]),
            request=parse_job_request(payload["request"]),
            client=str(payload.get("client", "unknown")),
            state=str(payload.get("state", JOB_QUEUED)),
            submitted_unix=float(payload.get("submitted_unix", 0.0)),
            started_unix=payload.get("started_unix"),
            finished_unix=payload.get("finished_unix"),
            subscribers=int(payload.get("subscribers", 1)),
            error=payload.get("error"),
            result=payload.get("result"),
            resumed=list(payload.get("resumed", [])),
            cache_stats=payload.get("cache_stats"),
        )
        if record.terminal:
            record.done_event.set()
        return record


class JobManager:
    """Thread-based job store, scheduler and engine front."""

    def __init__(
        self,
        state_dir: "str | Path",
        workers: int = 2,
        engine_jobs: Optional[int] = None,
        cache_dir: "str | Path | None" = None,
        quota: Optional[QuotaConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.state_dir = Path(state_dir)
        self.jobs_dir = self.state_dir / "jobs"
        self.runs_dir = self.state_dir / "runs"
        self.cache_dir = Path(cache_dir) if cache_dir else self.state_dir / "cache"
        self.workers = workers
        #: Engine worker-process override applied to every job
        #: (``None`` → honour the per-request ``jobs`` field).
        self.engine_jobs = engine_jobs
        self.retry_policy = retry_policy or RetryPolicy()
        self.quotas = ClientQuotas(quota or QuotaConfig())
        self.queue: FairQueue = FairQueue()
        self.coalescer: Coalescer[JobRecord] = Coalescer(
            reusable=lambda record: record.state != JOB_FAILED
        )
        self.clock = clock
        self.draining = False
        self._threads: List[threading.Thread] = []
        self._running: Dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._engine_runs_started = 0
        self._engine_runs_completed = 0
        self._engine_runs_failed = 0
        self._recovered: List[str] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Recover persisted jobs, then spawn the worker pool."""
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._recover()
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _recover(self) -> None:
        """Reload persisted jobs; re-queue everything non-terminal.

        A job that was queued, running, or interrupted when the previous
        process died goes back on the queue under its original client;
        the engine's journal then resumes it from its last checkpoint.
        Corrupt job files are skipped (the submission can simply be
        re-sent — same key, same id).
        """
        for path in sorted(self.jobs_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                record = JobRecord.from_dict(payload)
            except (OSError, ValueError, KeyError, TypeError):
                continue
            self.coalescer.put(record.id, record)
            if not record.terminal:
                record.state = JOB_QUEUED
                record.done_event.clear()
                self._persist(record)
                self.queue.push(record.client, record)
                self._recovered.append(record.id)

    def drain(self, grace_s: float = 5.0) -> List[str]:
        """Stop accepting work; give running jobs *grace_s* to finish.

        Returns the ids of jobs persisted as *interrupted* — still
        queued or running when the grace expired.  Their journals hold
        every completed workload, so a restarted manager (or a
        resubmission of the same request) resumes rather than restarts.
        """
        self.draining = True
        self.queue.close()
        deadline = time.monotonic() + max(0.0, grace_s)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._running and len(self.queue) == 0:
                    break
            time.sleep(0.05)
        interrupted: List[str] = []
        for record in self.coalescer.records():
            if not record.terminal:
                record.state = JOB_INTERRUPTED
                self._persist(record)
                record.done_event.set()
                interrupted.append(record.id)
        return interrupted

    # -- submission ----------------------------------------------------
    def submit(
        self, payload: Any, client: str = "anonymous"
    ) -> "tuple[JobRecord, bool]":
        """Validate, quota-check and admit-or-coalesce one submission.

        Returns ``(record, coalesced)``.  Raises
        :class:`~repro.service.schemas.ValidationError` on a bad
        payload, :class:`~repro.service.quota.QuotaExceeded` when the
        client is over its bucket, and :class:`RuntimeError` while
        draining.
        """
        if self.draining:
            raise RuntimeError("service is draining; not accepting jobs")
        request = parse_job_request(payload)
        self.quotas.admit(client)
        key = request.job_key()

        def factory() -> JobRecord:
            return JobRecord(
                id=key,
                request=request,
                client=client,
                submitted_unix=self.clock(),
            )

        record, coalesced = self.coalescer.admit(key, factory)
        if coalesced:
            record.subscribers += 1
            self._persist(record)
        else:
            self._persist(record)
            self.queue.push(client, record)
        return record, coalesced

    # -- queries -------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        return self.coalescer.get(job_id)

    def jobs(self) -> List[JobRecord]:
        return sorted(
            self.coalescer.records(), key=lambda r: r.submitted_unix
        )

    def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Block until *job_id* reaches a terminal (or drained) state."""
        record = self.get(job_id)
        if record is None:
            return None
        record.done_event.wait(timeout=timeout)
        return record

    def run_dir(self, job_id: str) -> Path:
        return self.runs_dir / job_id[:32]

    def events_path(self, job_id: str) -> Path:
        return self.run_dir(job_id) / "trace" / "events.jsonl"

    def journal_progress(self, job_id: str) -> Dict[str, Any]:
        """Checkpoint progress of a job's engine journal (cheap peek)."""
        return RunJournal.peek(self.run_dir(job_id) / "journal")

    def stats(self) -> Dict[str, Any]:
        """Service counters served under ``/healthz``."""
        by_state: Dict[str, int] = {}
        cache_total = CacheStats()
        for record in self.coalescer.records():
            by_state[record.state] = by_state.get(record.state, 0) + 1
            if record.cache_stats:
                cache_total.merge(CacheStats.from_dict(record.cache_stats))
        cache_payload = cache_total.as_dict()
        cache_payload["hit_rate"] = cache_total.hit_rate
        return {
            "draining": self.draining,
            "workers": self.workers,
            "queued": len(self.queue),
            "jobs": by_state,
            "coalesce": self.coalescer.stats.as_dict(),
            "engine_runs": {
                "started": self._engine_runs_started,
                "completed": self._engine_runs_completed,
                "failed": self._engine_runs_failed,
            },
            "recovered": list(self._recovered),
            #: Aggregate result-cache accounting across finished jobs.
            "cache": cache_payload,
            "quota": {
                "capacity": self.quotas.config.capacity,
                "refill_per_s": self.quotas.config.refill_per_s,
            },
        }

    # -- similarity corpus ---------------------------------------------
    def similar(self, query: str, k: int = 5) -> Dict[str, Any]:
        """Nearest kernels to *query* over every completed job's result.

        The warm corpus is exactly what the service has already
        characterized: each done suite job contributes keys
        ``ABBR:kernel``; each done sweep job ``ABBR@device:kernel``.
        Raises :class:`KeyError` when *query* is not in the corpus and
        :class:`ValueError` when the corpus is empty or ``k`` invalid.
        """
        from repro.analysis.similarity import (
            METRIC_FEATURES,
            KernelIndex,
            metric_features,
        )

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        index = KernelIndex(feature_names=METRIC_FEATURES)
        vectors: Dict[str, Any] = {}

        def add(key: str, kernel_payload: Dict[str, Any]) -> None:
            metrics = KernelMetrics.from_json_dict(kernel_payload["metrics"])
            vector = metric_features(metrics)
            index.add(key, vector, None)
            vectors[key] = vector

        for record in self.coalescer.records():
            if record.state != JOB_DONE or not record.result:
                continue
            results = record.result.get("results", {})
            if record.request.kind == "sweep":
                for abbr, per_device in results.items():
                    for device_name, entry in per_device.items():
                        for kernel in entry["profile"]["kernels"]:
                            add(
                                f"{abbr}@{device_name}:{kernel['name']}",
                                kernel,
                            )
            else:
                for abbr, entry in results.items():
                    for kernel in entry["profile"]["kernels"]:
                        add(f"{abbr}:{kernel['name']}", kernel)
        if not vectors:
            raise ValueError("empty corpus: no completed jobs yet")
        if query not in vectors:
            raise KeyError(query)
        neighbors = index.knn(vectors[query], k, exclude=query)
        return {
            "query": query,
            "corpus_size": len(vectors),
            "neighbors": [
                {
                    "key": n.key,
                    "distance": n.distance,
                    "exact": bool(n.exact),
                }
                for n in neighbors
            ],
        }

    # -- persistence ---------------------------------------------------
    def _persist(self, record: JobRecord) -> None:
        _atomic_write_json(
            self.jobs_dir / f"{record.id[:32]}.json", record.to_dict()
        )

    # -- execution -----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            popped = self.queue.pop(timeout=0.5)
            if popped is None:
                if self.queue.closed:
                    return
                continue
            _, record = popped
            if record.state != JOB_QUEUED:
                continue  # replaced or already drained
            self._run_job(record)

    def _engine_for(self, request: JobRequest, job_id: str) -> CharacterizationEngine:
        run_dir = self.run_dir(job_id)
        jobs = self.engine_jobs if self.engine_jobs is not None else request.jobs
        return CharacterizationEngine(
            device=request.device,
            options=request.options,
            jobs=jobs,
            cache=ResultCache(cache_dir=str(self.cache_dir)),
            retry_policy=self.retry_policy,
            keep_going=True,
            journal_dir=str(run_dir / "journal"),
            trace_dir=str(run_dir / "trace"),
            proxy_tol=request.proxy_tol,
        )

    def _run_job(self, record: JobRecord) -> None:
        request = record.request
        record.state = JOB_RUNNING
        record.started_unix = self.clock()
        with self._lock:
            self._running[record.id] = record
            self._engine_runs_started += 1
        self._persist(record)
        try:
            engine = self._engine_for(request, record.id)
            if request.kind == "sweep":
                report = engine.run_sweep(
                    list(request.devices),
                    suites=list(request.suites),
                    preset=request.preset,
                    workloads=(
                        list(request.workloads)
                        if request.workloads is not None
                        else None
                    ),
                )
                record.result = sweep_run_report_to_dict(report)
            else:
                report = engine.run_suite(
                    list(request.suites),
                    preset=request.preset,
                    workloads=(
                        list(request.workloads)
                        if request.workloads is not None
                        else None
                    ),
                )
                record.result = suite_run_report_to_dict(report)
            record.resumed = list(report.resumed)
            stats = engine.cache_stats
            record.cache_stats = stats.as_dict() if stats is not None else None
            record.state = JOB_DONE
            record.error = None
            with self._lock:
                self._engine_runs_completed += 1
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            record.state = JOB_FAILED
            record.error = f"{type(exc).__name__}: {exc}"
            with self._lock:
                self._engine_runs_failed += 1
        finally:
            record.finished_unix = self.clock()
            with self._lock:
                self._running.pop(record.id, None)
            self._persist(record)
            record.done_event.set()
