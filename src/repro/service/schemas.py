"""Request validation and job identity for the characterization service.

The service boundary accepts untrusted JSON; everything behind it
(:mod:`repro.core.engine` and below) only ever sees fully validated,
strongly typed values.  :func:`parse_job_request` is the single funnel:
it resolves devices (zoo name or inline :class:`DeviceSpec` payload),
builds :class:`~repro.gpu.simulator.SimulationOptions` field-by-field
(unknown keys are rejected, never silently dropped), resolves the
workload selection against the registry, and collects *every* problem
into one :class:`ValidationError` so a client fixes its request in one
round trip.

Job identity — the coalescing contract
--------------------------------------

:meth:`JobRequest.job_key` is a content digest built from exactly the
engine's run identity (:meth:`CharacterizationEngine.run_key` /
``sweep_run_key``: device(s) + simulation options + preset + resolved
workload selection + cache schema version) plus the result-affecting
service extras (``proxy_tol``).  Two requests share a key **iff** the
engine would produce bit-identical results for them, so coalescing on
the key can never serve a wrong answer.  Execution details that cannot
change results (engine worker count) are deliberately excluded.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    PAPER_SCALE,
    ScalePreset,
)
from repro.gpu.device import DEVICE_ZOO, DeviceSpec, device_by_name
from repro.gpu.digest import stable_digest
from repro.gpu.simulator import SimulationOptions
from repro.gpu.timing import TimingOptions
from repro.workloads.registry import list_workloads

__all__ = [
    "JobRequest",
    "MAX_ENGINE_JOBS",
    "PRESETS",
    "ValidationError",
    "device_to_dict",
    "parse_job_request",
]

PRESETS: Dict[str, ScalePreset] = {
    "laptop": LAPTOP_SCALE,
    "observation": OBSERVATION_SCALE,
    "paper": PAPER_SCALE,
}

#: Engine worker-process ceiling for one service job.  The service's
#: own worker pool is the scaling axis; a single job fanning out over
#: many processes would starve its neighbours.
MAX_ENGINE_JOBS = 8

_KINDS = ("suite", "sweep")

_REQUEST_KEYS = {
    "kind", "suites", "workloads", "preset",
    "device", "devices", "options", "proxy_tol", "jobs",
}


class ValidationError(ValueError):
    """A request failed validation; ``errors`` lists every problem."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = list(errors)

    def as_dict(self) -> Dict[str, Any]:
        return {"error": "invalid request", "details": self.errors}


def device_to_dict(device: DeviceSpec) -> Dict[str, Any]:
    """Full field payload of one device spec (inverse of inline parse)."""
    return dataclasses.asdict(device)


def _parse_device(
    payload: Any, errors: List[str], where: str
) -> Optional[DeviceSpec]:
    """Zoo name or inline spec dict → :class:`DeviceSpec`."""
    if isinstance(payload, str):
        try:
            return device_by_name(payload)
        except KeyError as exc:
            errors.append(f"{where}: {exc.args[0]}")
            return None
    if not isinstance(payload, dict):
        errors.append(
            f"{where}: expected a zoo device name or an inline spec "
            f"object, got {type(payload).__name__}"
        )
        return None
    known = {f.name for f in dataclasses.fields(DeviceSpec)}
    unknown = sorted(set(payload) - known)
    if unknown:
        errors.append(f"{where}: unknown device fields {unknown}")
        return None
    required = {
        f.name
        for f in dataclasses.fields(DeviceSpec)
        if f.default is dataclasses.MISSING
        and f.default_factory is dataclasses.MISSING  # type: ignore[misc]
    }
    missing = sorted(required - set(payload))
    if missing:
        errors.append(f"{where}: missing device fields {missing}")
        return None
    try:
        return DeviceSpec(**payload)
    except (TypeError, ValueError) as exc:
        errors.append(f"{where}: {exc}")
        return None


def _parse_options(
    payload: Any, errors: List[str]
) -> SimulationOptions:
    """``options`` object → :class:`SimulationOptions` (strict keys)."""
    if payload is None:
        return SimulationOptions()
    if not isinstance(payload, dict):
        errors.append(
            f"options: expected an object, got {type(payload).__name__}"
        )
        return SimulationOptions()
    unknown = sorted(set(payload) - {"model_caches", "timing"})
    if unknown:
        errors.append(f"options: unknown fields {unknown}")
    model_caches = payload.get("model_caches", True)
    if not isinstance(model_caches, bool):
        errors.append("options.model_caches: expected a boolean")
        model_caches = True
    timing_payload = payload.get("timing")
    timing = TimingOptions()
    if timing_payload is not None:
        if not isinstance(timing_payload, dict):
            errors.append(
                f"options.timing: expected an object, got "
                f"{type(timing_payload).__name__}"
            )
        else:
            known = {f.name for f in dataclasses.fields(TimingOptions)}
            unknown = sorted(set(timing_payload) - known)
            if unknown:
                errors.append(f"options.timing: unknown fields {unknown}")
            else:
                try:
                    timing = TimingOptions(**timing_payload)
                except (TypeError, ValueError) as exc:
                    errors.append(f"options.timing: {exc}")
    return SimulationOptions(timing=timing, model_caches=model_caches)


def _parse_names(
    payload: Any, errors: List[str], where: str
) -> Optional[Tuple[str, ...]]:
    if payload is None:
        return None
    if isinstance(payload, str):
        payload = [payload]
    if not isinstance(payload, (list, tuple)) or not all(
        isinstance(item, str) for item in payload
    ):
        errors.append(f"{where}: expected a list of strings")
        return None
    if not payload:
        errors.append(f"{where}: must not be empty")
        return None
    return tuple(payload)


@dataclass(frozen=True)
class JobRequest:
    """A fully validated characterization request (hashable identity)."""

    kind: str
    suites: Tuple[str, ...]
    workloads: Optional[Tuple[str, ...]]
    preset: ScalePreset
    devices: Tuple[DeviceSpec, ...]
    options: SimulationOptions
    proxy_tol: Optional[float] = None
    #: Engine worker processes for this job (0/1 → serial).  Not part
    #: of the job key: worker count cannot change results.
    jobs: int = 1

    @property
    def device(self) -> DeviceSpec:
        return self.devices[0]

    def selected(self) -> List[str]:
        """The resolved workload selection, in registration order."""
        selected: List[str] = []
        for suite in self.suites:
            selected.extend(list_workloads(suite))
        if self.workloads is not None:
            wanted = {w.upper() for w in self.workloads}
            selected = [abbr for abbr in selected if abbr in wanted]
        return selected

    def job_key(self) -> str:
        """Content digest identifying this request's result.

        Built on the engine's own run identity so service-level
        coalescing and engine-level journal resumption agree about
        what "the same run" means (see module docstring).
        """
        from repro.core.engine import CharacterizationEngine

        engine = CharacterizationEngine(
            device=self.device, options=self.options
        )
        selected = self.selected()
        if self.kind == "sweep":
            base = engine.sweep_run_key(
                self.preset, selected, list(self.devices)
            )
        else:
            base = engine.run_key(self.preset, selected)
        return stable_digest(["service-job", base, self.proxy_tol])

    def to_dict(self) -> Dict[str, Any]:
        """JSON payload that parses back to an equal request."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "suites": list(self.suites),
            "preset": self.preset.name,
            "options": {
                "model_caches": self.options.model_caches,
                "timing": dataclasses.asdict(self.options.timing),
            },
            "jobs": self.jobs,
        }
        if self.workloads is not None:
            payload["workloads"] = list(self.workloads)
        if self.proxy_tol is not None:
            payload["proxy_tol"] = self.proxy_tol
        if self.kind == "sweep":
            payload["devices"] = [device_to_dict(d) for d in self.devices]
        else:
            payload["device"] = device_to_dict(self.device)
        return payload


def parse_job_request(payload: Any) -> JobRequest:
    """Validate an untrusted submission payload into a :class:`JobRequest`.

    Raises :class:`ValidationError` carrying *every* problem found, not
    just the first one.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        raise ValidationError(
            [f"request body: expected an object, got {type(payload).__name__}"]
        )

    unknown = sorted(set(payload) - _REQUEST_KEYS)
    if unknown:
        errors.append(f"request: unknown fields {unknown}")

    kind = payload.get("kind", "suite")
    if kind not in _KINDS:
        errors.append(
            f"kind: expected one of {list(_KINDS)}, got {kind!r}"
        )
        kind = "suite"

    preset_name = payload.get("preset", "laptop")
    preset = PRESETS.get(preset_name) if isinstance(preset_name, str) else None
    if preset is None:
        errors.append(
            f"preset: expected one of {sorted(PRESETS)}, got {preset_name!r}"
        )
        preset = LAPTOP_SCALE

    suites = _parse_names(
        payload.get("suites", ["Cactus"]), errors, "suites"
    ) or ("Cactus",)
    workloads = _parse_names(payload.get("workloads"), errors, "workloads")

    # -- devices -------------------------------------------------------
    devices: List[DeviceSpec] = []
    if kind == "sweep":
        if "device" in payload:
            errors.append("device: sweep jobs take 'devices' (a list)")
        raw_devices = payload.get("devices")
        if not isinstance(raw_devices, (list, tuple)) or not raw_devices:
            errors.append("devices: sweep jobs need a non-empty device list")
        else:
            for index, item in enumerate(raw_devices):
                spec = _parse_device(item, errors, f"devices[{index}]")
                if spec is not None:
                    devices.append(spec)
            names = [d.name for d in devices]
            if len(set(names)) != len(names):
                errors.append(f"devices: duplicate device names in {names}")
    else:
        if "devices" in payload:
            errors.append("devices: suite jobs take 'device' (a single spec)")
        raw_device = payload.get("device", "RTX 3080")
        spec = _parse_device(raw_device, errors, "device")
        if spec is not None:
            devices.append(spec)

    options = _parse_options(payload.get("options"), errors)

    proxy_tol = payload.get("proxy_tol")
    if proxy_tol is not None:
        if (
            isinstance(proxy_tol, bool)
            or not isinstance(proxy_tol, (int, float))
            or proxy_tol < 0
            or proxy_tol != proxy_tol  # NaN
        ):
            errors.append(
                f"proxy_tol: expected a finite number >= 0, got {proxy_tol!r}"
            )
            proxy_tol = None
        else:
            proxy_tol = float(proxy_tol)

    jobs = payload.get("jobs", 1)
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        errors.append(f"jobs: expected an integer, got {jobs!r}")
        jobs = 1
    elif not 0 <= jobs <= MAX_ENGINE_JOBS:
        errors.append(f"jobs: must be in [0, {MAX_ENGINE_JOBS}], got {jobs}")
        jobs = 1

    # -- selection (needs valid suites) --------------------------------
    selected: List[str] = []
    if not errors:
        try:
            for suite in suites:
                selected.extend(list_workloads(suite))
        except KeyError as exc:
            errors.append(f"suites: {exc.args[0]}")
        if workloads is not None and not errors:
            wanted = {w.upper() for w in workloads}
            known = set(selected)
            bad = sorted(w for w in wanted if w not in known)
            if bad:
                errors.append(
                    f"workloads: {bad} not in suites {list(suites)}"
                )
            selected = [abbr for abbr in selected if abbr in wanted]
        if not errors and not selected:
            errors.append("workloads: selection is empty")

    if errors:
        raise ValidationError(errors)
    return JobRequest(
        kind=kind,
        suites=suites,
        workloads=workloads,
        preset=preset,
        devices=tuple(devices),
        options=options,
        proxy_tol=proxy_tol,
        jobs=jobs,
    )


def zoo_payload() -> List[Dict[str, Any]]:
    """The device-zoo listing served by ``GET /v1/devices``."""
    return [
        dict(
            device_to_dict(spec),
            peak_gips=spec.peak_gips,
            peak_gtxn_per_s=spec.peak_gtxn_per_s,
            roofline_elbow=spec.roofline_elbow,
        )
        for spec in DEVICE_ZOO.values()
    ]
