"""Single-flight request coalescing keyed on the job content digest.

The engine's results are deterministic functions of the job key (see
:meth:`repro.service.schemas.JobRequest.job_key`), so N concurrent
identical submissions need exactly one engine execution: the first
submission admits a new job, every other one *attaches* to it as a
subscriber and polls the same job id.  A completed job keeps serving
later identical submissions from its stored result (the warm corpus); a
*failed* job does not poison its key — the next identical submission
re-admits a fresh attempt under the same id.

The coalescer is deliberately dumb about what a "job" is: it maps keys
to records produced by a caller-supplied factory under one lock, which
is what makes the admit-or-attach decision atomic against concurrent
submitters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, List, Optional, TypeVar

__all__ = ["CoalesceStats", "Coalescer"]

T = TypeVar("T")


@dataclass
class CoalesceStats:
    """Admission accounting, served under ``/healthz``."""

    #: Every submission that reached the coalescer (after quota).
    submissions: int = 0
    #: Submissions attached to an existing job instead of starting one.
    coalesced: int = 0
    #: Submissions that admitted a new job record.
    admitted: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submissions": self.submissions,
            "coalesced": self.coalesced,
            "admitted": self.admitted,
        }


@dataclass
class Coalescer(Generic[T]):
    """Atomic admit-or-attach map from job key to job record."""

    #: Predicate deciding whether an existing record may absorb a new
    #: identical submission.  Records it rejects are replaced by a
    #: fresh ``factory()`` product under the same key.
    reusable: Callable[[T], bool] = lambda record: True
    stats: CoalesceStats = field(default_factory=CoalesceStats)
    _records: Dict[str, T] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def admit(self, key: str, factory: Callable[[], T]) -> "tuple[T, bool]":
        """Return ``(record, coalesced)`` for one submission of *key*.

        ``coalesced`` is ``True`` when the submission attached to an
        existing record; ``False`` when ``factory()`` built a new one.
        The whole decision happens under the lock, so two racing
        submitters of the same key can never both admit.
        """
        with self._lock:
            self.stats.submissions += 1
            record = self._records.get(key)
            if record is not None and self.reusable(record):
                self.stats.coalesced += 1
                return record, True
            record = factory()
            self._records[key] = record
            self.stats.admitted += 1
            return record, False

    def get(self, key: str) -> Optional[T]:
        with self._lock:
            return self._records.get(key)

    def put(self, key: str, record: T) -> None:
        """Install a record without counting a submission (recovery)."""
        with self._lock:
            self._records[key] = record

    def records(self) -> List[T]:
        with self._lock:
            return list(self._records.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)
