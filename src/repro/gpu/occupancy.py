"""SM occupancy model.

Computes how many warps are resident per SM for a launch and how well the
grid fills the machine.  This drives two Table IV metrics directly (warp
occupancy and SM efficiency) and feeds the latency-hiding term of the
timing model.

The batched device-axis path (:mod:`repro.gpu.batched`) re-implements
these formulas as ``(device, kernel)`` matrix expressions with the same
operation order; a change to the math here must be mirrored there (the
differential tests in ``tests/gpu/test_batched_devices.py`` fail loudly
if the two drift).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelCharacteristics


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy outcome for one kernel launch."""

    #: Warps resident per active SM (bounded by the device limit).
    active_warps_per_sm: float
    #: Average active warps across *all* SMs — the paper's
    #: "warp occupancy" metric; accounts for partially filled waves.
    avg_active_warps: float
    #: Fraction of SM-time with at least one resident warp — the paper's
    #: "SM efficiency" metric.
    sm_efficiency: float
    #: Number of launch waves needed to drain the grid.
    waves: int

    def __post_init__(self) -> None:
        if self.active_warps_per_sm < 0 or self.avg_active_warps < 0:
            raise ValueError("warp counts must be non-negative")
        if not 0.0 <= self.sm_efficiency <= 1.0:
            raise ValueError(f"sm_efficiency out of range: {self.sm_efficiency}")
        if self.waves < 1:
            raise ValueError("waves must be >= 1")


def compute_occupancy(
    device: DeviceSpec, kernel: KernelCharacteristics
) -> OccupancyResult:
    """Occupancy of *kernel* on *device*.

    Resident blocks per SM are bounded by the warp limit and the block
    limit; the grid then drains in waves of
    ``blocks_per_sm * num_sms`` blocks.  The final (partial) wave lowers
    both average occupancy and SM efficiency — the classic tail effect
    that penalizes small grids such as road-network BFS levels.
    """
    warps_per_block = kernel.warps_per_block
    blocks_per_sm = min(
        device.max_blocks_per_sm,
        max(1, device.max_warps_per_sm // warps_per_block),
    )
    warps_per_sm_full = min(
        device.max_warps_per_sm, blocks_per_sm * warps_per_block
    )

    blocks_per_wave = blocks_per_sm * device.num_sms
    waves = max(1, math.ceil(kernel.grid_blocks / blocks_per_wave))
    full_waves = kernel.grid_blocks // blocks_per_wave
    tail_blocks = kernel.grid_blocks - full_waves * blocks_per_wave

    # Average warps resident across all SMs over the kernel lifetime,
    # weighting the tail wave by its fill fraction.
    if tail_blocks == 0:
        avg_active_warps = float(warps_per_sm_full)
        sm_efficiency = 1.0
    else:
        tail_fill = tail_blocks / blocks_per_wave
        tail_sm_fraction = min(1.0, tail_blocks / device.num_sms)
        weight_full = full_waves / waves
        weight_tail = 1.0 / waves
        avg_active_warps = warps_per_sm_full * (
            weight_full + weight_tail * tail_fill
        )
        sm_efficiency = weight_full + weight_tail * tail_sm_fraction

    return OccupancyResult(
        active_warps_per_sm=float(warps_per_sm_full),
        avg_active_warps=avg_active_warps,
        sm_efficiency=sm_efficiency,
        waves=waves,
    )
