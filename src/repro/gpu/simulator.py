"""Launch-stream simulator.

:class:`GPUSimulator` is the top of the GPU substrate: it takes a
:class:`~repro.gpu.kernel.LaunchStream` (or any iterable of launches)
and returns one :class:`~repro.gpu.metrics.KernelMetrics` record per
launch, in order.  Identical kernels are memoized, which keeps the
simulation of workloads with millions of repeated launches cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.kernel import KernelCharacteristics, KernelLaunch
from repro.gpu.memory import CacheModel
from repro.gpu.metrics import KernelMetrics
from repro.gpu.timing import TimingModel, TimingOptions


@dataclass(frozen=True)
class SimulationOptions:
    """Options controlling a simulation run."""

    timing: TimingOptions = TimingOptions()
    #: Disable the cache model (every access goes to DRAM) — ablation.
    model_caches: bool = True


class _NoCacheModel(CacheModel):
    """Ablation cache model: all traffic is compulsory DRAM traffic."""

    def run(self, kernel: KernelCharacteristics):  # type: ignore[override]
        result = super().run(kernel)
        footprint = kernel.memory
        txn = self.device.dram_transaction_bytes
        total = footprint.total_access_bytes / footprint.coalescence
        read_share = (
            footprint.bytes_read / footprint.unique_bytes
            if footprint.unique_bytes > 0
            else 1.0
        )
        return type(result)(
            l1_hit_rate=0.0,
            l2_hit_rate=0.0,
            dram_transactions=total / txn,
            dram_read_bytes=total * read_share,
            dram_write_bytes=total * (1.0 - read_share),
            total_access_transactions=result.total_access_transactions,
        )


class GPUSimulator:
    """Executes kernel launch streams on the analytical device model."""

    def __init__(
        self,
        device: DeviceSpec = RTX_3080,
        options: SimulationOptions | None = None,
    ) -> None:
        self.device = device
        self.options = options or SimulationOptions()
        cache_model = (
            CacheModel(device)
            if self.options.model_caches
            else _NoCacheModel(device)
        )
        self.timing_model = TimingModel(
            device, cache_model=cache_model, options=self.options.timing
        )
        self._memo: Dict[KernelCharacteristics, KernelMetrics] = {}

    def run_kernel(self, kernel: KernelCharacteristics) -> KernelMetrics:
        """Metrics for a single launch of *kernel* (memoized)."""
        cached = self._memo.get(kernel)
        if cached is None:
            cached = self.timing_model.run(kernel)
            self._memo[kernel] = cached
        return cached

    def run(self, launches: Iterable[KernelLaunch]) -> List[KernelMetrics]:
        """Metrics for every launch in the stream, in order."""
        return [self.run_kernel(launch.kernel) for launch in launches]
