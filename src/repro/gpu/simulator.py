"""Launch-stream simulator.

:class:`GPUSimulator` is the top of the GPU substrate: it takes a
:class:`~repro.gpu.kernel.LaunchStream` (or any iterable of launches)
and returns one :class:`~repro.gpu.metrics.KernelMetrics` record per
launch, in order.  Identical kernels are memoized, which keeps the
simulation of workloads with millions of repeated launches cheap.

This is the scalar (single-device) path.  Device sweeps should go
through :func:`repro.gpu.batched.simulate_devices`, which evaluates the
same model for N devices in one broadcast pass and is pinned bit-for-bit
against ``run_stream`` — any behavioral change here must keep the
batched twin (and its differential tests) in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.digest import kernel_metrics_key
from repro.gpu.kernel import KernelCharacteristics, KernelLaunch
from repro.gpu.memory import CacheModel
from repro.gpu.metrics import KernelMetrics
from repro.gpu.timing import TimingModel, TimingOptions


@dataclass(frozen=True)
class SimulationOptions:
    """Options controlling a simulation run."""

    # A default_factory (not a shared default instance) so every options
    # object owns its own TimingOptions — a plain default would alias one
    # module-level instance across every SimulationOptions ever built.
    timing: TimingOptions = field(default_factory=TimingOptions)
    #: Disable the cache model (every access goes to DRAM) — ablation.
    model_caches: bool = True


class MetricsCache(Protocol):
    """Persistent key/value store the simulator can memoize into.

    Implemented by :class:`repro.core.cache.ResultCache`; typed
    structurally here so the gpu layer stays below core.
    """

    def get(self, key: str) -> Optional[dict]: ...

    def put(self, key: str, payload: dict) -> None: ...


class _NoCacheModel(CacheModel):
    """Ablation cache model: all traffic is compulsory DRAM traffic."""

    def run(self, kernel: KernelCharacteristics):  # type: ignore[override]
        result = super().run(kernel)
        footprint = kernel.memory
        txn = self.device.dram_transaction_bytes
        total = footprint.total_access_bytes / footprint.coalescence
        read_share = (
            footprint.bytes_read / footprint.unique_bytes
            if footprint.unique_bytes > 0
            else 1.0
        )
        return type(result)(
            l1_hit_rate=0.0,
            l2_hit_rate=0.0,
            dram_transactions=total / txn,
            dram_read_bytes=total * read_share,
            dram_write_bytes=total * (1.0 - read_share),
            total_access_transactions=result.total_access_transactions,
        )


class GPUSimulator:
    """Executes kernel launch streams on the analytical device model."""

    def __init__(
        self,
        device: DeviceSpec = RTX_3080,
        options: SimulationOptions | None = None,
        cache: Optional[MetricsCache] = None,
        tracer=None,
    ) -> None:
        self.device = device
        self.options = options or SimulationOptions()
        self.cache = cache
        # Run-scoped observability (repro.obs).  Counters only — the
        # per-kernel hot loop stays branch-free; lazily defaulted to
        # the no-op tracer so the gpu layer stays below repro.obs at
        # import time only (no behavioral coupling).
        if tracer is None:
            from repro.obs import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        cache_model = (
            CacheModel(device)
            if self.options.model_caches
            else _NoCacheModel(device)
        )
        self.timing_model = TimingModel(
            device, cache_model=cache_model, options=self.options.timing
        )
        self._memo: Dict[KernelCharacteristics, KernelMetrics] = {}

    def run_kernel(self, kernel: KernelCharacteristics) -> KernelMetrics:
        """Metrics for a single launch of *kernel*.

        Memoized in-process; when a persistent ``cache`` is attached,
        results are also reused across runs, keyed on the content digest
        of ``(device, options, kernel)``.
        """
        cached = self._memo.get(kernel)
        if cached is None and self.cache is not None:
            key = kernel_metrics_key(self.device, self.options, kernel)
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    cached = KernelMetrics.from_json_dict(payload)
                except (KeyError, TypeError, ValueError):
                    # The entry parsed as JSON but is not a metrics
                    # record (schema-corrupt): recompute and rewrite
                    # rather than poisoning the run.
                    cached = None
            if cached is None:
                cached = self.timing_model.run(kernel)
                self.cache.put(key, cached.to_json_dict())
            self._memo[kernel] = cached
        elif cached is None:
            cached = self.timing_model.run(kernel)
            self._memo[kernel] = cached
        return cached

    def run_stream(self, launches: Iterable[KernelLaunch]) -> List[KernelMetrics]:
        """Metrics for every launch in the stream, in order.

        Batched: identical kernels are grouped first, so the timing
        model and the cache-key layer (content digests, persistent-cache
        probes) run once per *distinct* kernel instead of once per
        launch.  Streams with thousands of repeated launches — every
        graph workload — pay one simulation per unique kernel.
        """
        distinct: Dict[KernelCharacteristics, KernelMetrics] = {}
        results: List[KernelMetrics] = []
        for launch in launches:
            kernel = launch.kernel
            metrics = distinct.get(kernel)
            if metrics is None:
                metrics = self.run_kernel(kernel)
                distinct[kernel] = metrics
            results.append(metrics)
        self.tracer.incr("sim.launches", float(len(results)))
        self.tracer.incr("sim.distinct_kernels", float(len(distinct)))
        return results

    def run(self, launches: Iterable[KernelLaunch]) -> List[KernelMetrics]:
        """Metrics for every launch in the stream, in order."""
        return self.run_stream(launches)
