"""Launch-stream simulator.

:class:`GPUSimulator` is the top of the GPU substrate: it takes a
:class:`~repro.gpu.kernel.LaunchStream` (or any iterable of launches)
and returns one :class:`~repro.gpu.metrics.KernelMetrics` record per
launch, in order.  Identical kernels are memoized, which keeps the
simulation of workloads with millions of repeated launches cheap.

This is the scalar (single-device) path.  Device sweeps should go
through :func:`repro.gpu.batched.simulate_devices`, which evaluates the
same model for N devices in one broadcast pass and is pinned bit-for-bit
against ``run_stream`` — any behavioral change here must keep the
batched twin (and its differential tests) in sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Protocol

from repro.gpu.device import RTX_3080, DeviceSpec
from repro.gpu.digest import kernel_metrics_key
from repro.gpu.kernel import KernelCharacteristics, KernelLaunch
from repro.gpu.memory import CacheModel
from repro.gpu.metrics import KernelMetrics
from repro.gpu.timing import TimingModel, TimingOptions


@dataclass(frozen=True)
class SimulationOptions:
    """Options controlling a simulation run."""

    # A default_factory (not a shared default instance) so every options
    # object owns its own TimingOptions — a plain default would alias one
    # module-level instance across every SimulationOptions ever built.
    timing: TimingOptions = field(default_factory=TimingOptions)
    #: Disable the cache model (every access goes to DRAM) — ablation.
    model_caches: bool = True


class MetricsCache(Protocol):
    """Persistent key/value store the simulator can memoize into.

    Implemented by :class:`repro.core.cache.ResultCache`; typed
    structurally here so the gpu layer stays below core.
    """

    def get(self, key: str) -> Optional[dict]: ...

    def put(self, key: str, payload: dict) -> None: ...


class MetricsProxy(Protocol):
    """Similarity-proxy tier the simulator can consult before simulating.

    Implemented by :class:`repro.core.proxy.ProxyTier`; typed
    structurally here so the gpu layer stays below core.  ``lookup``
    returns substitute metrics for a near-duplicate of an already
    recorded kernel (or ``None`` — simulate it); ``record`` feeds every
    ground-truth result (computed or exact-cache hit) back into the
    corpus.  Proxied metrics are memoized for the run but never written
    to the exact-key cache.
    """

    def lookup(
        self, kernel: KernelCharacteristics
    ) -> Optional[KernelMetrics]: ...

    def record(
        self, kernel: KernelCharacteristics, metrics: KernelMetrics
    ) -> None: ...


class _NoCacheModel(CacheModel):
    """Ablation cache model: all traffic is compulsory DRAM traffic."""

    def run(self, kernel: KernelCharacteristics):  # type: ignore[override]
        result = super().run(kernel)
        footprint = kernel.memory
        txn = self.device.dram_transaction_bytes
        total = footprint.total_access_bytes / footprint.coalescence
        read_share = (
            footprint.bytes_read / footprint.unique_bytes
            if footprint.unique_bytes > 0
            else 1.0
        )
        return type(result)(
            l1_hit_rate=0.0,
            l2_hit_rate=0.0,
            dram_transactions=total / txn,
            dram_read_bytes=total * read_share,
            dram_write_bytes=total * (1.0 - read_share),
            total_access_transactions=result.total_access_transactions,
        )


class GPUSimulator:
    """Executes kernel launch streams on the analytical device model."""

    def __init__(
        self,
        device: DeviceSpec = RTX_3080,
        options: SimulationOptions | None = None,
        cache: Optional[MetricsCache] = None,
        tracer=None,
        proxy: Optional[MetricsProxy] = None,
    ) -> None:
        self.device = device
        self.options = options or SimulationOptions()
        self.cache = cache
        self.proxy = proxy
        # Run-scoped observability (repro.obs).  Counters only — the
        # per-kernel hot loop stays branch-free; lazily defaulted to
        # the no-op tracer so the gpu layer stays below repro.obs at
        # import time only (no behavioral coupling).
        if tracer is None:
            from repro.obs import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer
        cache_model = (
            CacheModel(device)
            if self.options.model_caches
            else _NoCacheModel(device)
        )
        self.timing_model = TimingModel(
            device, cache_model=cache_model, options=self.options.timing
        )
        self._memo: Dict[KernelCharacteristics, KernelMetrics] = {}

    def run_kernel(self, kernel: KernelCharacteristics) -> KernelMetrics:
        """Metrics for a single launch of *kernel*.

        Memoized in-process; when a persistent ``cache`` is attached,
        results are also reused across runs, keyed on the content digest
        of ``(device, options, kernel)``.
        """
        cached = self._memo.get(kernel)
        if cached is None and self.cache is not None:
            key = kernel_metrics_key(self.device, self.options, kernel)
            payload = self.cache.get(key)
            if payload is not None:
                try:
                    cached = KernelMetrics.from_json_dict(payload)
                except (KeyError, TypeError, ValueError):
                    # The entry parsed as JSON but is not a metrics
                    # record (schema-corrupt): recompute and rewrite
                    # rather than poisoning the run.
                    cached = None
            if cached is None:
                cached = self.timing_model.run(kernel)
                self.cache.put(key, cached.to_json_dict())
            self._memo[kernel] = cached
        elif cached is None:
            cached = self.timing_model.run(kernel)
            self._memo[kernel] = cached
        return cached

    def _cached_metrics(
        self, kernel: KernelCharacteristics
    ) -> Optional[KernelMetrics]:
        """Probe the persistent cache for *kernel* (no compute)."""
        if self.cache is None:
            return None
        key = kernel_metrics_key(self.device, self.options, kernel)
        payload = self.cache.get(key)
        if payload is None:
            return None
        try:
            return KernelMetrics.from_json_dict(payload)
        except (KeyError, TypeError, ValueError):
            # The entry parsed as JSON but is not a metrics record
            # (schema-corrupt): recompute rather than poisoning the run.
            return None

    def run_stream(self, launches: Iterable[KernelLaunch]) -> List[KernelMetrics]:
        """Metrics for every launch in the stream, in order.

        Batched along two axes: identical kernels are grouped first, so
        the memo/cache-key layer runs once per *distinct* kernel instead
        of once per launch, and every distinct kernel that still needs
        simulating is evaluated in **one** vectorized
        :func:`repro.gpu.batched.batch_kernel_metrics` pass (bit-for-bit
        equal to per-kernel ``TimingModel.run`` calls) instead of a
        Python-level model run per kernel.  Streams with thousands of
        structurally distinct launches — GRU's per-level BFS frontiers —
        pay one broadcast pass, not thousands of scalar ones.

        When a similarity ``proxy`` is attached (opt-in), distinct
        kernels that miss the memo and the exact-key cache are offered
        to the proxy before the compute pass; proxied metrics are
        memoized but never written back to the exact-key cache.
        """
        order: List[KernelCharacteristics] = []
        index_of: Dict[KernelCharacteristics, int] = {}
        indices: List[int] = []
        for launch in launches:
            kernel = launch.kernel
            idx = index_of.get(kernel)
            if idx is None:
                idx = len(order)
                index_of[kernel] = idx
                order.append(kernel)
            indices.append(idx)

        resolved: List[Optional[KernelMetrics]] = [None] * len(order)
        to_compute: List[int] = []
        for idx, kernel in enumerate(order):
            metrics = self._memo.get(kernel)
            if metrics is None:
                metrics = self._cached_metrics(kernel)
                if metrics is not None:
                    self._memo[kernel] = metrics
                    if self.proxy is not None:
                        self.proxy.record(kernel, metrics)
            if metrics is None and self.proxy is not None:
                metrics = self.proxy.lookup(kernel)
                if metrics is not None:
                    # Approximate substitute: usable for this run, but
                    # never persisted under the exact content key.
                    self._memo[kernel] = metrics
                    stats = getattr(self.cache, "stats", None)
                    if stats is not None:
                        stats.proxy_hits += 1
            if metrics is None:
                to_compute.append(idx)
            else:
                resolved[idx] = metrics

        if to_compute:
            from repro.gpu.batched import batch_kernel_metrics

            kernels = [order[idx] for idx in to_compute]
            computed = batch_kernel_metrics(
                kernels,
                [self.device],
                timing=self.options.timing,
                model_caches=self.options.model_caches,
            )[0]
            for idx, kernel, metrics in zip(to_compute, kernels, computed):
                resolved[idx] = metrics
                self._memo[kernel] = metrics
                if self.cache is not None:
                    key = kernel_metrics_key(self.device, self.options, kernel)
                    self.cache.put(key, metrics.to_json_dict())
                if self.proxy is not None:
                    self.proxy.record(kernel, metrics)

        results = [resolved[idx] for idx in indices]
        self.tracer.incr("sim.launches", float(len(results)))
        self.tracer.incr("sim.distinct_kernels", float(len(order)))
        return results  # type: ignore[return-value]

    def run(self, launches: Iterable[KernelLaunch]) -> List[KernelMetrics]:
        """Metrics for every launch in the stream, in order."""
        return self.run_stream(launches)
