"""Stable content digests for the GPU-model value types.

The result cache (:mod:`repro.core.cache`) is content-addressed: a
cached :class:`~repro.gpu.metrics.KernelMetrics` or whole
characterization is keyed on a SHA-256 digest of everything that
determines it — the :class:`~repro.gpu.device.DeviceSpec`, the
:class:`~repro.gpu.simulator.SimulationOptions` and the kernel
characteristics (or the whole launch stream).  This module provides the
canonicalization and hashing primitives those keys are built from.

Design rules that make the digests trustworthy cache keys:

* **Stability** — the digest of equal values is identical across
  processes, interpreter restarts and ``PYTHONHASHSEED`` values.
  Floats are hashed via :meth:`float.hex` (exact, locale-independent),
  dict keys are sorted, and SHA-256 itself is deterministic.
* **Injectivity by construction** — canonical forms are tagged with the
  dataclass name and field names, so two different types (or the same
  type with permuted field values) cannot collide structurally.
* **Versioned invalidation** — :data:`CACHE_SCHEMA_VERSION` is folded
  into every key.  Bump it whenever the canonical form, the metric
  serialization, or the *semantics* of the analytical model change, and
  every stale entry silently becomes unreachable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Iterable, Optional

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelCharacteristics, KernelLaunch

#: Version folded into every cache key.  Bump on any change to the
#: canonical form, the serialized payloads, or the model semantics.
CACHE_SCHEMA_VERSION = 1


def canonicalize(obj: Any) -> Any:
    """Reduce *obj* to a JSON-safe canonical form with stable hashing.

    Supports the primitives, lists/tuples, string-keyed dicts and
    (recursively) dataclasses.  Floats become their exact hex form so
    the digest never depends on repr shortening rules.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float.hex(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        form: Dict[str, Any] = {"__dataclass__": type(obj).__name__}
        for field in dataclasses.fields(obj):
            form[field.name] = canonicalize(getattr(obj, field.name))
        return form
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TypeError("only string-keyed dicts can be canonicalized")
        return {k: canonicalize(obj[k]) for k in sorted(obj)}
    raise TypeError(f"cannot canonicalize {type(obj).__name__!r} values")


def stable_digest(obj: Any) -> str:
    """Hex SHA-256 of the canonical form of *obj*."""
    encoded = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def kernel_digest(kernel: KernelCharacteristics) -> str:
    """Content digest of one kernel description."""
    return stable_digest(["kernel", CACHE_SCHEMA_VERSION, kernel])


def kernel_metrics_key(
    device: DeviceSpec, options: Any, kernel: KernelCharacteristics
) -> str:
    """Cache key for the simulated metrics of one kernel launch.

    *options* is the simulator's ``SimulationOptions`` (typed loosely to
    keep this module below the simulator in the layering).
    """
    return stable_digest(
        ["kernel-metrics", CACHE_SCHEMA_VERSION, device, options, kernel]
    )


def launch_stream_digest(
    launches: Iterable[KernelLaunch],
    _memo: Optional[Dict[KernelCharacteristics, str]] = None,
) -> str:
    """Content digest of an ordered launch stream.

    Streams routinely repeat a handful of kernels thousands of times, so
    per-kernel digests are memoized and the stream hash is folded
    incrementally instead of materializing one giant canonical form.
    """
    memo: Dict[KernelCharacteristics, str] = (
        _memo if _memo is not None else {}
    )
    hasher = hashlib.sha256(
        f"launch-stream:{CACHE_SCHEMA_VERSION}".encode("utf-8")
    )
    for launch in launches:
        digest = memo.get(launch.kernel)
        if digest is None:
            digest = kernel_digest(launch.kernel)
            memo[launch.kernel] = digest
        hasher.update(
            f"{launch.stream_id}|{launch.phase}|{digest}".encode("utf-8")
        )
    return hasher.hexdigest()
