"""Device specifications for the analytical GPU model.

The Cactus paper measures on an Nvidia RTX 3080 (Table II) and derives its
instruction roofline from the published device parameters:

* peak performance: ``68 SMs x 4 warp schedulers x 1 warp inst/cycle x
  1.9 GHz = 516.8 GIPS`` (Giga warp Instructions Per Second),
* peak memory bandwidth: ``760.3 GB/s / 32 B per transaction =
  23.75 GTXN/s`` (Giga Transactions per Second),
* roofline elbow: ``516.8 / 23.75 = 21.76`` warp instructions per DRAM
  transaction.

:class:`DeviceSpec` captures exactly those parameters plus the handful of
micro-architectural quantities the timing model needs (cache capacities,
occupancy limits, latencies).  The values for the RTX 3080 preset follow
the paper and public Ampere documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a GPU device used by the timing model.

    All rates are expressed in the paper's units: *warp* instructions
    (one warp instruction = 32 thread instructions) and 32-byte DRAM
    transactions.
    """

    name: str
    num_sms: int
    warp_schedulers_per_sm: int
    warp_insts_per_cycle: float
    clock_ghz: float
    dram_bandwidth_gbs: float
    dram_transaction_bytes: int = 32
    l2_bytes: int = 5 * MIB
    l1_bytes_per_sm: int = 128 * KIB
    dram_bytes: int = 10 * GIB
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 16
    max_threads_per_block: int = 1024
    warp_size: int = 32
    # Latency parameters (cycles) used for latency-bound kernels and for
    # the latency-hiding/issue-efficiency model.
    alu_latency_cycles: float = 6.0
    l1_latency_cycles: float = 30.0
    l2_latency_cycles: float = 200.0
    dram_latency_cycles: float = 470.0
    # Fixed host-side cost of launching one kernel (seconds).  This is
    # what makes the thousands of tiny launches in the road-network BFS
    # latency-bound rather than bandwidth-bound.
    kernel_launch_overhead_s: float = 3.0e-6

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.dram_bandwidth_gbs <= 0:
            raise ValueError(
                f"dram_bandwidth_gbs must be positive, got {self.dram_bandwidth_gbs}"
            )
        if self.dram_transaction_bytes <= 0:
            raise ValueError("dram_transaction_bytes must be positive")

    @property
    def peak_gips(self) -> float:
        """Peak warp-instruction throughput in Giga warp insts/second."""
        return (
            self.num_sms
            * self.warp_schedulers_per_sm
            * self.warp_insts_per_cycle
            * self.clock_ghz
        )

    @property
    def peak_gtxn_per_s(self) -> float:
        """Peak DRAM transaction throughput (Giga 32-byte txns/second)."""
        return self.dram_bandwidth_gbs / self.dram_transaction_bytes

    @property
    def roofline_elbow(self) -> float:
        """Instruction intensity at which the memory roof meets the
        compute roof (warp instructions per DRAM transaction)."""
        return self.peak_gips / self.peak_gtxn_per_s

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @property
    def total_l1_bytes(self) -> int:
        return self.l1_bytes_per_sm * self.num_sms

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The paper's measurement platform (Table II): RTX 3080, Ampere,
#: 68 SMs, 1.9 GHz, 10 GB GDDR6X at 760.3 GB/s, 5 MB L2.
#:
#: Provenance: Cactus Table II plus Nvidia's published GA102
#: specifications (Ampere whitepaper).  This is the device every golden
#: fixture is pinned on; never edit it in place — add a new zoo entry.
RTX_3080 = DeviceSpec(
    name="RTX 3080",
    num_sms=68,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.9,
    dram_bandwidth_gbs=760.3,
    l2_bytes=5 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=10 * GIB,
)

#: Larger Ampere sibling; used by the device-sweep ablation.
#:
#: Provenance: Nvidia GA102 whitepaper (82 SMs, 1.86 GHz boost,
#: 936.2 GB/s GDDR6X, 6 MB L2, 24 GB).
RTX_3090 = DeviceSpec(
    name="RTX 3090",
    num_sms=82,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.86,
    dram_bandwidth_gbs=936.2,
    l2_bytes=6 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=24 * GIB,
)

#: Data-center Ampere part (A100-SXM4-40GB).
#:
#: Provenance: Nvidia A100 (GA100) whitepaper — 108 SMs, 1.41 GHz
#: boost, 1555 GB/s HBM2e, 40 MB L2, 192 KB unified L1/shared per SM,
#: 64-warp occupancy limit.  The hierarchical-roofline methodology of
#: Yang et al. (arXiv:2008.11326) uses the same peak derivation
#: (SMs x schedulers x 1 warp inst/cycle x clock) that
#: :attr:`DeviceSpec.peak_gips` implements.
A100 = DeviceSpec(
    name="A100",
    num_sms=108,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.41,
    dram_bandwidth_gbs=1555.0,
    l2_bytes=40 * MIB,
    l1_bytes_per_sm=192 * KIB,
    dram_bytes=40 * GIB,
    max_warps_per_sm=64,
)

#: A small embedded-class device (Xavier-like) for sweep ablations.
EDGE_GPU = DeviceSpec(
    name="EdgeGPU",
    num_sms=8,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.1,
    dram_bandwidth_gbs=137.0,
    l2_bytes=512 * KIB,
    l1_bytes_per_sm=64 * KIB,
    dram_bytes=8 * GIB,
)

#: Data-center Pascal part (Tesla P100-SXM2-16GB).
#:
#: Provenance: Nvidia Tesla P100 (GP100) whitepaper — 56 SMs with two
#: warp schedulers each, 1.48 GHz boost, 732 GB/s HBM2, 4 MB L2, 24 KB
#: L1 per SM, 64-warp occupancy limit.  Instruction latencies follow
#: the per-architecture microbenchmark characterization of Arafa et al.
#: (arXiv:1905.08778), which reports ~6-cycle ALU dependent-issue
#: latency on Pascal and a deeper DRAM path than Volta/Ampere.
P100 = DeviceSpec(
    name="P100",
    num_sms=56,
    warp_schedulers_per_sm=2,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.48,
    dram_bandwidth_gbs=732.0,
    l2_bytes=4 * MIB,
    l1_bytes_per_sm=24 * KIB,
    dram_bytes=16 * GIB,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    alu_latency_cycles=6.0,
    l1_latency_cycles=82.0,
    l2_latency_cycles=234.0,
    dram_latency_cycles=600.0,
)

#: Data-center Volta part (Tesla V100-SXM2-16GB).
#:
#: Provenance: Nvidia Tesla V100 (GV100) whitepaper — 80 SMs x 4
#: schedulers at 1.53 GHz boost, 900 GB/s HBM2, 6 MB L2, 128 KB
#: unified L1/shared per SM, 64-warp limit.  These are exactly the
#: peaks Yang et al. (arXiv:2008.11326) build their V100 instruction
#: roofline from (489.6 warp GIPS; 28.1 GTXN/s; elbow ~17.4
#: insts/txn).  Latencies follow the Volta microbenchmarks of Arafa et
#: al. (arXiv:1905.08778) and Jia et al.: ~4-cycle ALU, ~28-cycle L1,
#: ~193-cycle L2.
V100 = DeviceSpec(
    name="V100",
    num_sms=80,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.53,
    dram_bandwidth_gbs=900.0,
    l2_bytes=6 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=16 * GIB,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    alu_latency_cycles=4.0,
    l1_latency_cycles=28.0,
    l2_latency_cycles=193.0,
    dram_latency_cycles=400.0,
)

#: Data-center Hopper part (H100-SXM5-80GB).
#:
#: Provenance: Nvidia H100 (GH100) whitepaper — 132 SMs x 4 schedulers
#: at 1.98 GHz boost, 3350 GB/s HBM3, 50 MB L2, 256 KB unified
#: L1/shared per SM, 64-warp limit.  The machine balance (elbow ~10
#: insts/txn) is the most bandwidth-rich in the zoo, which is what
#: pushes borderline Cactus workloads to the compute-intensive side.
H100 = DeviceSpec(
    name="H100",
    num_sms=132,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.98,
    dram_bandwidth_gbs=3350.0,
    l2_bytes=50 * MIB,
    l1_bytes_per_sm=256 * KIB,
    dram_bytes=80 * GIB,
    max_warps_per_sm=64,
    max_blocks_per_sm=32,
    alu_latency_cycles=4.0,
    l1_latency_cycles=32.0,
    l2_latency_cycles=260.0,
    dram_latency_cycles=480.0,
)

#: Consumer Ada Lovelace flagship (RTX 4090).
#:
#: Provenance: Nvidia Ada (AD102) whitepaper — 128 SMs x 4 schedulers
#: at 2.52 GHz boost, 1008 GB/s GDDR6X, 72 MB L2, 128 KB L1 per SM.
#: Compute-rich balance (elbow ~41 insts/txn): the counterweight to
#: H100 in the zoo, pulling borderline workloads to the memory side.
RTX_4090 = DeviceSpec(
    name="RTX 4090",
    num_sms=128,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=2.52,
    dram_bandwidth_gbs=1008.0,
    l2_bytes=72 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=24 * GIB,
)

#: The original four presets (kept stable for existing callers).
DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (RTX_3080, RTX_3090, A100, EDGE_GPU)
}

#: The full 8-device zoo the sweep pipeline fans out over: the paper's
#: RTX 3080 baseline plus published data-center (P100/V100/A100/H100),
#: consumer (RTX 3090/4090) and embedded (EdgeGPU) parts, ordered by
#: roughly increasing peak compute.  Every spec carries a provenance
#: docstring naming its published source.
DEVICE_ZOO: Dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        EDGE_GPU,
        P100,
        V100,
        RTX_3080,
        RTX_3090,
        A100,
        RTX_4090,
        H100,
    )
}


def _canonical_device_name(name: str) -> str:
    """Lookup normalization: case/space/dash/underscore-insensitive."""
    return "".join(ch for ch in name.lower() if ch.isalnum())


_ZOO_BY_CANONICAL: Dict[str, DeviceSpec] = {
    _canonical_device_name(name): spec for name, spec in DEVICE_ZOO.items()
}


def device_by_name(name: str) -> DeviceSpec:
    """Resolve a zoo device from a human-typed name.

    Accepts the exact zoo name plus forgiving variants (``rtx3080``,
    ``RTX-3080``, ``a100``).  Raises ``KeyError`` with the list of
    known devices for anything else.
    """
    spec = _ZOO_BY_CANONICAL.get(_canonical_device_name(name))
    if spec is None:
        known = ", ".join(DEVICE_ZOO)
        raise KeyError(f"unknown device {name!r}; known devices: {known}")
    return spec
