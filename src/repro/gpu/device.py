"""Device specifications for the analytical GPU model.

The Cactus paper measures on an Nvidia RTX 3080 (Table II) and derives its
instruction roofline from the published device parameters:

* peak performance: ``68 SMs x 4 warp schedulers x 1 warp inst/cycle x
  1.9 GHz = 516.8 GIPS`` (Giga warp Instructions Per Second),
* peak memory bandwidth: ``760.3 GB/s / 32 B per transaction =
  23.75 GTXN/s`` (Giga Transactions per Second),
* roofline elbow: ``516.8 / 23.75 = 21.76`` warp instructions per DRAM
  transaction.

:class:`DeviceSpec` captures exactly those parameters plus the handful of
micro-architectural quantities the timing model needs (cache capacities,
occupancy limits, latencies).  The values for the RTX 3080 preset follow
the paper and public Ampere documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters of a GPU device used by the timing model.

    All rates are expressed in the paper's units: *warp* instructions
    (one warp instruction = 32 thread instructions) and 32-byte DRAM
    transactions.
    """

    name: str
    num_sms: int
    warp_schedulers_per_sm: int
    warp_insts_per_cycle: float
    clock_ghz: float
    dram_bandwidth_gbs: float
    dram_transaction_bytes: int = 32
    l2_bytes: int = 5 * MIB
    l1_bytes_per_sm: int = 128 * KIB
    dram_bytes: int = 10 * GIB
    max_warps_per_sm: int = 48
    max_blocks_per_sm: int = 16
    max_threads_per_block: int = 1024
    warp_size: int = 32
    # Latency parameters (cycles) used for latency-bound kernels and for
    # the latency-hiding/issue-efficiency model.
    alu_latency_cycles: float = 6.0
    l1_latency_cycles: float = 30.0
    l2_latency_cycles: float = 200.0
    dram_latency_cycles: float = 470.0
    # Fixed host-side cost of launching one kernel (seconds).  This is
    # what makes the thousands of tiny launches in the road-network BFS
    # latency-bound rather than bandwidth-bound.
    kernel_launch_overhead_s: float = 3.0e-6

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError(f"num_sms must be positive, got {self.num_sms}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.dram_bandwidth_gbs <= 0:
            raise ValueError(
                f"dram_bandwidth_gbs must be positive, got {self.dram_bandwidth_gbs}"
            )
        if self.dram_transaction_bytes <= 0:
            raise ValueError("dram_transaction_bytes must be positive")

    @property
    def peak_gips(self) -> float:
        """Peak warp-instruction throughput in Giga warp insts/second."""
        return (
            self.num_sms
            * self.warp_schedulers_per_sm
            * self.warp_insts_per_cycle
            * self.clock_ghz
        )

    @property
    def peak_gtxn_per_s(self) -> float:
        """Peak DRAM transaction throughput (Giga 32-byte txns/second)."""
        return self.dram_bandwidth_gbs / self.dram_transaction_bytes

    @property
    def roofline_elbow(self) -> float:
        """Instruction intensity at which the memory roof meets the
        compute roof (warp instructions per DRAM transaction)."""
        return self.peak_gips / self.peak_gtxn_per_s

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    @property
    def max_threads_per_sm(self) -> int:
        return self.max_warps_per_sm * self.warp_size

    @property
    def total_l1_bytes(self) -> int:
        return self.l1_bytes_per_sm * self.num_sms

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The paper's measurement platform (Table II): RTX 3080, Ampere,
#: 68 SMs, 1.9 GHz, 10 GB GDDR6X at 760.3 GB/s, 5 MB L2.
RTX_3080 = DeviceSpec(
    name="RTX 3080",
    num_sms=68,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.9,
    dram_bandwidth_gbs=760.3,
    l2_bytes=5 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=10 * GIB,
)

#: Larger Ampere sibling; used by the device-sweep ablation.
RTX_3090 = DeviceSpec(
    name="RTX 3090",
    num_sms=82,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.86,
    dram_bandwidth_gbs=936.2,
    l2_bytes=6 * MIB,
    l1_bytes_per_sm=128 * KIB,
    dram_bytes=24 * GIB,
)

#: Data-center Ampere part (A100-SXM4-40GB).
A100 = DeviceSpec(
    name="A100",
    num_sms=108,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.41,
    dram_bandwidth_gbs=1555.0,
    l2_bytes=40 * MIB,
    l1_bytes_per_sm=192 * KIB,
    dram_bytes=40 * GIB,
    max_warps_per_sm=64,
)

#: A small embedded-class device (Xavier-like) for sweep ablations.
EDGE_GPU = DeviceSpec(
    name="EdgeGPU",
    num_sms=8,
    warp_schedulers_per_sm=4,
    warp_insts_per_cycle=1.0,
    clock_ghz=1.1,
    dram_bandwidth_gbs=137.0,
    l2_bytes=512 * KIB,
    l1_bytes_per_sm=64 * KIB,
    dram_bytes=8 * GIB,
)

DEVICE_PRESETS: Dict[str, DeviceSpec] = {
    spec.name: spec for spec in (RTX_3080, RTX_3090, A100, EDGE_GPU)
}
