"""Instruction-roofline timing model.

Computes the duration and the full Table IV metric record for one kernel
launch.  The model follows the structure the paper's roofline analysis
assumes (Section IV, "Performance Model"):

* a kernel is **compute-limited** when its issue time dominates,
* **memory-bandwidth-limited** when its DRAM transaction time dominates,
* **latency-limited** when too few resident warps hide instruction
  latency (captured by the issue-efficiency term) or when the grid is so
  small that the fixed launch overhead dominates.

The achieved performance always respects both roofs:
``GIPS <= peak_gips`` and ``GIPS <= intensity * peak_gtxn_per_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelCharacteristics
from repro.gpu.memory import CacheModel, MemorySystemResult
from repro.gpu.metrics import KernelMetrics
from repro.gpu.occupancy import OccupancyResult, compute_occupancy

#: Cost of a block-wide barrier, in scheduler cycles per sync instruction.
#: Public: the batched device-axis path (:mod:`repro.gpu.batched`) must
#: use the *same* constants to stay bit-for-bit equal to this model.
BARRIER_LATENCY_CYCLES = 120.0

#: Peak per-SM warp-instruction throughput of the FP32 pipeline and the
#: load/store units, in warp instructions per cycle.  On Ampere each SM
#: has 128 FP32 lanes (4 warps/cycle) and 4 LSU groups (we model an
#: effective 2 warp ld/st per cycle).
FP32_WARPS_PER_CYCLE = 4.0
LSU_WARPS_PER_CYCLE = 2.0

# Backward-compatible aliases (pre-sweep private names).
_BARRIER_LATENCY_CYCLES = BARRIER_LATENCY_CYCLES
_FP32_WARPS_PER_CYCLE = FP32_WARPS_PER_CYCLE
_LSU_WARPS_PER_CYCLE = LSU_WARPS_PER_CYCLE


@dataclass(frozen=True)
class TimingBreakdown:
    """Intermediate timing quantities for one launch (for ablations)."""

    compute_time_s: float
    memory_time_s: float
    overhead_s: float
    duration_s: float
    issue_efficiency: float
    avg_latency_cycles: float
    bound: str  # "compute" | "memory" | "latency" | "overhead"


@dataclass(frozen=True)
class TimingOptions:
    """Switches used by the ablation benchmarks."""

    #: Achievable fraction of the theoretical DRAM bandwidth.
    dram_efficiency: float = 0.88
    #: Model per-launch host overhead (disable to ablate).
    model_launch_overhead: bool = True
    #: Model latency hiding / issue efficiency (disable to ablate).
    model_latency: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.dram_efficiency <= 1.0:
            raise ValueError(
                f"dram_efficiency must be in (0, 1], got {self.dram_efficiency}"
            )


class TimingModel:
    """Analytical timing for kernels on a :class:`DeviceSpec`."""

    def __init__(
        self,
        device: DeviceSpec,
        cache_model: CacheModel | None = None,
        options: TimingOptions | None = None,
    ) -> None:
        self.device = device
        self.cache_model = cache_model or CacheModel(device)
        self.options = options or TimingOptions()

    # ------------------------------------------------------------------
    def run(self, kernel: KernelCharacteristics) -> KernelMetrics:
        """Produce a full metric record for one launch of *kernel*."""
        occupancy = compute_occupancy(self.device, kernel)
        memory = self.cache_model.run(kernel)
        breakdown = self.time(kernel, occupancy, memory)
        return self._metrics(kernel, occupancy, memory, breakdown)

    # ------------------------------------------------------------------
    def time(
        self,
        kernel: KernelCharacteristics,
        occupancy: OccupancyResult,
        memory: MemorySystemResult,
    ) -> TimingBreakdown:
        """Duration of one launch and which resource bounds it."""
        device = self.device
        avg_latency = self._avg_latency_cycles(kernel, memory)

        if self.options.model_latency:
            warps_per_scheduler = occupancy.active_warps_per_sm / (
                device.warp_schedulers_per_sm
            )
            issue_eff = min(
                1.0, warps_per_scheduler * kernel.ilp / avg_latency
            )
        else:
            issue_eff = 1.0

        # Machine fill: tail waves and partially-filled grids reduce the
        # number of SMs doing useful work.
        fill = occupancy.sm_efficiency
        effective_gips = device.peak_gips * 1e9 * fill * issue_eff
        compute_time = kernel.warp_insts / effective_gips

        peak_txn_rate = (
            device.peak_gtxn_per_s * 1e9 * self.options.dram_efficiency
        )
        memory_time = memory.dram_transactions / peak_txn_rate

        overhead = (
            device.kernel_launch_overhead_s
            if self.options.model_launch_overhead
            else 0.0
        )
        duration = overhead + max(compute_time, memory_time)

        if overhead > max(compute_time, memory_time):
            bound = "overhead"
        elif memory_time >= compute_time:
            bound = "memory"
        elif issue_eff < 0.98:
            bound = "latency"
        else:
            bound = "compute"

        return TimingBreakdown(
            compute_time_s=compute_time,
            memory_time_s=memory_time,
            overhead_s=overhead,
            duration_s=duration,
            issue_efficiency=issue_eff,
            avg_latency_cycles=avg_latency,
            bound=bound,
        )

    # ------------------------------------------------------------------
    def _raw_memory_latency(self, memory: MemorySystemResult) -> float:
        """Hit-rate-weighted memory access latency (cycles)."""
        device = self.device
        return memory.l1_hit_rate * device.l1_latency_cycles + (
            1.0 - memory.l1_hit_rate
        ) * (
            memory.l2_hit_rate * device.l2_latency_cycles
            + (1.0 - memory.l2_hit_rate) * device.dram_latency_cycles
        )

    def _avg_latency_cycles(
        self, kernel: KernelCharacteristics, memory: MemorySystemResult
    ) -> float:
        """Mix-weighted average *exposed* instruction latency (cycles).

        Memory latency is divided by the kernel's memory-level
        parallelism: a warp with several loads in flight only exposes a
        fraction of each load's latency to the scheduler.
        """
        mem_latency = self._raw_memory_latency(memory) / kernel.mlp
        mix = kernel.mix
        return (
            mix.ld_st * mem_latency
            + mix.sync * _BARRIER_LATENCY_CYCLES
            + (1.0 - mix.ld_st - mix.sync) * self.device.alu_latency_cycles
        )

    # ------------------------------------------------------------------
    def _metrics(
        self,
        kernel: KernelCharacteristics,
        occupancy: OccupancyResult,
        memory: MemorySystemResult,
        breakdown: TimingBreakdown,
    ) -> KernelMetrics:
        device = self.device
        duration = breakdown.duration_s
        mix = kernel.mix

        # Achieved per-SM IPC over active SMs, in warp insts per cycle.
        active_time = max(duration - breakdown.overhead_s, 1e-12)
        total_ipc = kernel.warp_insts / (active_time * device.clock_hz)
        sm_ipc = total_ipc / max(
            1e-9, device.num_sms * occupancy.sm_efficiency
        )

        sp_util = min(1.0, mix.fp32 * sm_ipc / _FP32_WARPS_PER_CYCLE)
        ld_st_util = min(1.0, mix.ld_st * sm_ipc / _LSU_WARPS_PER_CYCLE)

        # Stall decomposition: the share of scheduler slots without an
        # issued instruction, attributed by latency source.
        peak_sm_ipc = device.warp_schedulers_per_sm * device.warp_insts_per_cycle
        busy_frac = min(1.0, sm_ipc / peak_sm_ipc)
        stall_total = max(0.0, 1.0 - busy_frac)

        avg_latency = breakdown.avg_latency_cycles
        mem_latency_share = (
            mix.ld_st * self._raw_memory_latency(memory) / kernel.mlp
        ) / avg_latency
        sync_share = mix.sync * _BARRIER_LATENCY_CYCLES / avg_latency
        exec_share = max(0.0, 1.0 - mem_latency_share - sync_share)

        # Bandwidth saturation shifts stall cycles towards memory.
        if breakdown.bound == "memory":
            mem_weight = min(1.0, mem_latency_share + 0.3)
            exec_weight = exec_share * (1.0 - mem_weight) / max(
                1e-9, exec_share + sync_share
            )
            sync_weight = sync_share * (1.0 - mem_weight) / max(
                1e-9, exec_share + sync_share
            )
        else:
            mem_weight, exec_weight, sync_weight = (
                mem_latency_share,
                exec_share,
                sync_share,
            )

        pipe_pressure = max(sp_util, ld_st_util)
        memory_stall = stall_total * mem_weight
        sync_stall = stall_total * sync_weight
        execution_stall = stall_total * exec_weight * (1.0 - pipe_pressure)
        pipe_stall = stall_total * exec_weight * pipe_pressure

        return KernelMetrics(
            name=kernel.name,
            duration_s=duration,
            warp_insts=kernel.warp_insts,
            dram_transactions=memory.dram_transactions,
            invocations=1,
            warp_occupancy=occupancy.avg_active_warps,
            sm_efficiency=occupancy.sm_efficiency,
            l1_hit_rate=memory.l1_hit_rate,
            l2_hit_rate=memory.l2_hit_rate,
            dram_read_throughput_gbs=memory.dram_read_bytes / duration / 1e9,
            ld_st_utilization=ld_st_util,
            sp_utilization=sp_util,
            fraction_branches=mix.branch,
            fraction_ld_st=mix.ld_st,
            execution_stall=execution_stall,
            pipe_stall=pipe_stall,
            sync_stall=sync_stall,
            memory_stall=memory_stall,
            tags=kernel.tags,
        )
