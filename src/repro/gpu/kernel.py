"""Kernel descriptions submitted to the GPU model.

A workload in this reproduction is a generator of
:class:`KernelLaunch` objects.  Each launch references a
:class:`KernelCharacteristics` record that describes *what the kernel
does* in aggregate terms — grid geometry, warp-instruction count,
instruction mix, and memory footprint.  These are the quantities a
profiler such as Nsight Compute reports and the only quantities the
paper's analysis consumes.

Workload models compute these numbers from first principles (e.g. the
molecular-dynamics engine counts actual neighbour pairs; the ML framework
counts FLOPs from tensor shapes), so the characterization downstream is
driven by real algorithmic structure rather than hard-coded results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional, Tuple


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class InstructionMix:
    """Fractional instruction mix of a kernel.

    Fractions are of *warp* instructions.  ``fp32``, ``ld_st``,
    ``branch`` and ``sync`` must sum to at most 1; the remainder is
    integer/other work.
    """

    fp32: float = 0.4
    ld_st: float = 0.25
    branch: float = 0.05
    sync: float = 0.01

    def __post_init__(self) -> None:
        for name in ("fp32", "ld_st", "branch", "sync"):
            _check_fraction(name, getattr(self, name))
        total = self.fp32 + self.ld_st + self.branch + self.sync
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"instruction mix fractions sum to {total:.3f} > 1"
            )

    @property
    def other(self) -> float:
        """Fraction of integer / miscellaneous instructions."""
        return max(0.0, 1.0 - (self.fp32 + self.ld_st + self.branch + self.sync))


@dataclass(frozen=True)
class MemoryFootprint:
    """Aggregate memory behaviour of one kernel launch.

    ``bytes_read`` / ``bytes_written`` are *unique* application bytes
    (compulsory traffic).  ``reuse_factor`` is the average number of
    times each byte is touched (>= 1); the cache model decides where the
    repeat touches hit.  ``l1_locality`` expresses how much of the reuse
    is short-range (within a thread block / SM) and therefore eligible
    for L1, as opposed to long-range reuse that only L2 can capture.
    ``coalescence`` in (0, 1] is the fraction of each 32-byte DRAM
    transaction that carries useful data; scattered (graph-style)
    accesses have low coalescence and therefore inflate the transaction
    count for the same unique footprint.
    """

    bytes_read: float
    bytes_written: float = 0.0
    reuse_factor: float = 1.0
    l1_locality: float = 0.5
    coalescence: float = 1.0
    #: Fraction of the unique footprint expected to be resident in L2
    #: when the kernel starts (producer-consumer reuse across kernels:
    #: small working sets written by the previous kernel are still hot).
    l2_carry_in: float = 0.0
    working_set_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise ValueError("byte counts must be non-negative")
        if self.reuse_factor < 1.0:
            raise ValueError(
                f"reuse_factor must be >= 1, got {self.reuse_factor}"
            )
        _check_fraction("l1_locality", self.l1_locality)
        _check_fraction("l2_carry_in", self.l2_carry_in)
        if not 0.0 < self.coalescence <= 1.0:
            raise ValueError(
                f"coalescence must be in (0, 1], got {self.coalescence}"
            )
        if self.working_set_bytes is not None and self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")

    @property
    def unique_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def total_access_bytes(self) -> float:
        """Bytes moved between threads and the memory system (all levels)."""
        return self.unique_bytes * self.reuse_factor

    @property
    def effective_working_set(self) -> float:
        """Working set used by the cache model (defaults to unique bytes)."""
        if self.working_set_bytes is not None:
            return self.working_set_bytes
        return self.unique_bytes


@dataclass(frozen=True)
class KernelCharacteristics:
    """Aggregate description of a kernel launch.

    Parameters
    ----------
    name:
        Kernel symbol name; launches with the same name are aggregated
        into one per-kernel profile record, mirroring how Nsight groups
        invocations (the paper's ``Ti = sum_i r_i * t_i``).
    grid_blocks, threads_per_block:
        Launch geometry; drives occupancy and tail effects.
    warp_insts:
        Total dynamically executed warp instructions for one launch.
    mix:
        Instruction mix fractions.
    memory:
        Aggregate memory footprint.
    ilp:
        Average number of independent instructions available between
        dependent ones inside a warp; higher ILP needs fewer warps to
        hide latency.
    mlp:
        Memory-level parallelism: average number of outstanding memory
        requests per warp.  Streaming kernels pipeline many loads (high
        MLP); pointer-chasing kernels have MLP near 1.
    tags:
        Free-form labels (domain, suite) carried into the analysis.
    """

    name: str
    grid_blocks: int
    threads_per_block: int
    warp_insts: float
    mix: InstructionMix = field(default_factory=InstructionMix)
    memory: MemoryFootprint = field(
        default_factory=lambda: MemoryFootprint(bytes_read=0.0)
    )
    ilp: float = 2.0
    mlp: float = 4.0
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel name must be non-empty")
        if self.grid_blocks <= 0:
            raise ValueError(f"grid_blocks must be positive, got {self.grid_blocks}")
        if self.threads_per_block <= 0 or self.threads_per_block > 1024:
            raise ValueError(
                f"threads_per_block must be in (0, 1024], got {self.threads_per_block}"
            )
        if self.warp_insts <= 0:
            raise ValueError(f"warp_insts must be positive, got {self.warp_insts}")
        if self.ilp < 1.0:
            raise ValueError(f"ilp must be >= 1, got {self.ilp}")
        if self.mlp < 1.0:
            raise ValueError(f"mlp must be >= 1, got {self.mlp}")

    @property
    def warps_per_block(self) -> int:
        return max(1, math.ceil(self.threads_per_block / 32))

    @property
    def total_warps(self) -> int:
        return self.grid_blocks * self.warps_per_block

    @property
    def warp_insts_per_warp(self) -> float:
        return self.warp_insts / self.total_warps

    def scaled(self, factor: float, name: Optional[str] = None) -> "KernelCharacteristics":
        """Return a copy with work (instructions, bytes, grid) scaled.

        Used by workload models to replay a calibrated kernel at a
        different problem size.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        memory = replace(
            self.memory,
            bytes_read=self.memory.bytes_read * factor,
            bytes_written=self.memory.bytes_written * factor,
            working_set_bytes=(
                None
                if self.memory.working_set_bytes is None
                else self.memory.working_set_bytes * factor
            ),
        )
        return replace(
            self,
            name=name or self.name,
            grid_blocks=max(1, round(self.grid_blocks * factor)),
            warp_insts=self.warp_insts * factor,
            memory=memory,
        )


@dataclass(frozen=True)
class KernelLaunch:
    """One kernel invocation in a workload's launch stream."""

    kernel: KernelCharacteristics
    stream_id: int = 0
    phase: str = ""

    @property
    def name(self) -> str:
        return self.kernel.name


class LaunchStream:
    """Ordered sequence of kernel launches produced by a workload.

    Thin list wrapper with convenience constructors; keeps workload code
    readable (``stream.launch(kernel)``) and lets integration tests make
    assertions on structure (number of launches, distinct kernels).
    """

    def __init__(self, launches: Optional[Iterable[KernelLaunch]] = None) -> None:
        self._launches: List[KernelLaunch] = list(launches or [])
        # Maintained incrementally as launches arrive — the same
        # sequential left-fold the old on-demand sum performed, so the
        # value is bit-identical while reads become O(1) instead of O(L).
        self._total_warp_insts: float = 0.0
        for item in self._launches:
            self._total_warp_insts += item.kernel.warp_insts

    def launch(
        self,
        kernel: KernelCharacteristics,
        stream_id: int = 0,
        phase: str = "",
    ) -> KernelLaunch:
        item = KernelLaunch(kernel=kernel, stream_id=stream_id, phase=phase)
        self._launches.append(item)
        self._total_warp_insts += kernel.warp_insts
        return item

    def extend(self, other: Iterable[KernelLaunch]) -> None:
        for item in other:
            self._launches.append(item)
            self._total_warp_insts += item.kernel.warp_insts

    def __iter__(self) -> Iterator[KernelLaunch]:
        return iter(self._launches)

    def __len__(self) -> int:
        return len(self._launches)

    def __getitem__(self, index: int) -> KernelLaunch:
        return self._launches[index]

    @property
    def kernel_names(self) -> List[str]:
        """Distinct kernel names in first-launch order.

        Dict-ordered dedup: O(L) instead of the O(L x distinct) a
        list-membership scan pays on streams with thousands of launches.
        """
        return list(dict.fromkeys(launch.name for launch in self._launches))

    @property
    def total_warp_insts(self) -> float:
        return self._total_warp_insts
