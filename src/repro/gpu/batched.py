"""Batched device-axis simulation: one stream, many devices.

The launch stream of a workload is completely device-independent, yet
the scalar path (:class:`~repro.gpu.simulator.GPUSimulator`) must walk
the whole stream — and run the timing model per distinct kernel — once
*per device*.  A device sweep over an 8-entry zoo therefore pays the
stream walk and the Python-level model eight times for byte-identical
inputs.

:func:`simulate_devices` removes that multiplier.  It walks the stream
**once** to collect the distinct kernels and the per-launch kernel
indices, then evaluates the occupancy, cache and timing models for all
``(device, kernel)`` pairs in a single broadcast pass: kernel-side
quantities become a ``(K,)`` row vector, device-side parameters a
``(D, 1)`` column vector, and every model expression is evaluated on
the resulting ``(D, K)`` matrix.

Bit-for-bit equivalence with the scalar path is a hard contract here
(the per-device result must hit the same content-addressed cache keys
and compare equal to a scalar run), and it is achievable because the
analytical model uses only IEEE-exact operations — ``+ - * /``,
``min``/``max``, ``ceil`` and integer division; no transcendentals.
Three rules keep the batched pass exact:

* every expression is written with the *same associativity* as its
  scalar counterpart in :mod:`~repro.gpu.timing`,
  :mod:`~repro.gpu.occupancy` and :mod:`~repro.gpu.memory`, so each
  element sees the identical sequence of correctly-rounded operations;
* kernel-only quantities are computed per kernel with plain Python
  floats (literally the scalar formulas) before being packed into
  arrays, and device-only products (``peak_gips * 1e9`` …) are
  precomputed per device the same way;
* branches become ``np.where`` with both sides evaluated — the selected
  side is the exact expression the scalar code would have run —
  guarded by ``np.errstate`` plus masking where the untaken side
  divides by zero.

``tests/gpu/test_batched_devices.py`` pins the contract differentially
against every zoo device and every pinned Cactus workload, plus
hypothesis-perturbed devices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelCharacteristics, KernelLaunch
from repro.gpu.metrics import KernelMetrics
from repro.gpu.simulator import GPUSimulator, SimulationOptions
from repro.gpu.timing import (
    BARRIER_LATENCY_CYCLES,
    FP32_WARPS_PER_CYCLE,
    LSU_WARPS_PER_CYCLE,
    TimingOptions,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Tracer

__all__ = ["simulate_devices", "batch_kernel_metrics"]


def _collect_distinct(
    launches: Iterable[KernelLaunch],
) -> Tuple[List[KernelCharacteristics], List[int]]:
    """One stream walk: distinct kernels (first-seen order) + indices.

    Grouping is by kernel *equality*, exactly like the scalar
    simulator's memo dict, so repeated launches of an equal kernel map
    to one shared metrics record downstream (the aggregation layer
    groups by object identity).
    """
    index_of: Dict[KernelCharacteristics, int] = {}
    kernels: List[KernelCharacteristics] = []
    indices: List[int] = []
    for launch in launches:
        kernel = launch.kernel
        idx = index_of.get(kernel)
        if idx is None:
            idx = len(kernels)
            index_of[kernel] = idx
            kernels.append(kernel)
        indices.append(idx)
    return kernels, indices


def batch_kernel_metrics(
    kernels: Sequence[KernelCharacteristics],
    devices: Sequence[DeviceSpec],
    timing: Optional[TimingOptions] = None,
    model_caches: bool = True,
) -> List[List[KernelMetrics]]:
    """Metric records for every (device, kernel) pair, batched.

    Returns ``result[d][k]``: the metrics of ``kernels[k]`` on
    ``devices[d]``, bit-for-bit equal to
    ``TimingModel(devices[d], ...).run(kernels[k])``.
    """
    opts = timing or TimingOptions()
    n_dev = len(devices)
    n_ker = len(kernels)
    if n_ker == 0:
        return [[] for _ in range(n_dev)]

    # -- kernel-side rows (K,): plain-Python scalar math, packed --------
    # One pass over the kernel list: each kernel's attributes and
    # footprint properties are read exactly once and every derived
    # scalar is computed with the verbatim scalar-model expression
    # (reusing a subexpression's float value is bit-exact — it is the
    # same correctly-rounded double either way).  Streams with
    # thousands of structurally distinct kernels (GRU's per-level BFS
    # frontiers) spend their time here, so the packing is as much a hot
    # path as the broadcast math below.
    wpb_l: List[int] = []
    grid_l: List[int] = []
    warp_insts_l: List[float] = []
    ilp_l: List[float] = []
    ld_st_l: List[float] = []
    fp32_l: List[float] = []
    alu_coeff_l: List[float] = []
    sync_barrier_l: List[float] = []
    mlp_l: List[float] = []
    unique_l: List[float] = []
    total_l: List[float] = []
    working_set_l: List[float] = []
    l1_hit_l: List[float] = []
    carry_l: List[float] = []
    l1_rate_l: List[float] = []
    read_share_l: List[float] = []
    txn_inflation_l: List[float] = []
    cold_floor_l: List[float] = []
    compulsory_l: List[float] = []
    nocache_l: List[float] = []
    for k in kernels:
        mix = k.mix
        memory = k.memory
        unique = memory.unique_bytes
        total = memory.total_access_bytes
        carry = unique * memory.l2_carry_in
        l1_hit = (total - unique) * memory.l1_locality
        wpb_l.append(k.warps_per_block)
        grid_l.append(k.grid_blocks)
        warp_insts_l.append(k.warp_insts)
        ilp_l.append(k.ilp)
        ld_st_l.append(mix.ld_st)
        fp32_l.append(mix.fp32)
        # Exact scalar associativity: (1.0 - ld_st) - sync.
        alu_coeff_l.append(1.0 - mix.ld_st - mix.sync)
        sync_barrier_l.append(mix.sync * BARRIER_LATENCY_CYCLES)
        mlp_l.append(k.mlp)
        unique_l.append(unique)
        total_l.append(total)
        working_set_l.append(memory.effective_working_set)
        l1_hit_l.append(l1_hit)
        carry_l.append(carry)
        l1_rate_l.append(l1_hit / total if total > 0 else 0.0)
        read_share_l.append(
            memory.bytes_read / unique if unique > 0 else 1.0
        )
        txn_inflation_l.append(1.0 / memory.coalescence)
        cold_floor_l.append(unique - carry)
        compulsory_l.append(unique * 0.02)
        # No-cache ablation traffic (device-independent).
        nocache_l.append(total / memory.coalescence)

    wpb = np.array(wpb_l, dtype=np.int64)
    grid = np.array(grid_l, dtype=np.int64)
    warp_insts = np.array(warp_insts_l, dtype=np.float64)
    ilp = np.array(ilp_l, dtype=np.float64)
    ld_st = np.array(ld_st_l, dtype=np.float64)
    fp32 = np.array(fp32_l, dtype=np.float64)
    alu_coeff = np.array(alu_coeff_l, dtype=np.float64)
    sync_barrier = np.array(sync_barrier_l, dtype=np.float64)
    mlp = np.array(mlp_l, dtype=np.float64)
    unique_b = np.array(unique_l, dtype=np.float64)
    total_b = np.array(total_l, dtype=np.float64)
    zero_traffic = total_b <= 0
    working_set = np.array(working_set_l, dtype=np.float64)
    l1_hit_b = np.array(l1_hit_l, dtype=np.float64)
    l2_in_b = total_b - l1_hit_b
    l2_repeat_b = np.maximum(0.0, l2_in_b - unique_b)
    carry_b = np.array(carry_l, dtype=np.float64)
    l1_hit_rate_k = np.array(l1_rate_l, dtype=np.float64)
    read_share = np.array(read_share_l, dtype=np.float64)
    txn_inflation = np.array(txn_inflation_l, dtype=np.float64)
    cold_floor = np.array(cold_floor_l, dtype=np.float64)
    compulsory_floor = np.array(compulsory_l, dtype=np.float64)
    nocache_total = np.array(nocache_l, dtype=np.float64)

    # -- device-side columns (D, 1): Python-float precomputation -------
    def col(values: List[float]) -> np.ndarray:
        return np.array(values, dtype=np.float64).reshape(n_dev, 1)

    def icol(values: List[int]) -> np.ndarray:
        return np.array(values, dtype=np.int64).reshape(n_dev, 1)

    max_blocks = icol([d.max_blocks_per_sm for d in devices])
    max_warps = icol([d.max_warps_per_sm for d in devices])
    num_sms = icol([d.num_sms for d in devices])
    num_sms_f = col([float(d.num_sms) for d in devices])
    l2_cap = col([float(d.l2_bytes) for d in devices])
    txn_bytes = col([float(d.dram_transaction_bytes) for d in devices])
    l1_lat = col([d.l1_latency_cycles for d in devices])
    l2_lat = col([d.l2_latency_cycles for d in devices])
    dram_lat = col([d.dram_latency_cycles for d in devices])
    alu_lat = col([d.alu_latency_cycles for d in devices])
    schedulers = col([float(d.warp_schedulers_per_sm) for d in devices])
    peak_gips_hz = col([d.peak_gips * 1e9 for d in devices])
    peak_txn_rate = col(
        [d.peak_gtxn_per_s * 1e9 * opts.dram_efficiency for d in devices]
    )
    clock_hz = col([d.clock_hz for d in devices])
    peak_sm_ipc = col(
        [d.warp_schedulers_per_sm * d.warp_insts_per_cycle for d in devices]
    )
    if opts.model_launch_overhead:
        overhead = col([d.kernel_launch_overhead_s for d in devices])
    else:
        overhead = col([0.0 for _ in devices])

    with np.errstate(divide="ignore", invalid="ignore"):
        # -- occupancy (repro.gpu.occupancy.compute_occupancy) ---------
        blocks_per_sm = np.minimum(max_blocks, np.maximum(1, max_warps // wpb))
        warps_full = np.minimum(max_warps, blocks_per_sm * wpb)
        blocks_per_wave = blocks_per_sm * num_sms
        waves = np.maximum(1.0, np.ceil(grid / blocks_per_wave))
        full_waves = grid // blocks_per_wave
        tail_blocks = grid - full_waves * blocks_per_wave
        tail_zero = tail_blocks == 0

        tail_fill = tail_blocks / blocks_per_wave
        tail_sm_fraction = np.minimum(1.0, tail_blocks / num_sms)
        weight_full = full_waves / waves
        weight_tail = 1.0 / waves
        warps_full_f = warps_full.astype(np.float64)
        avg_active_warps = np.where(
            tail_zero,
            warps_full_f,
            warps_full * (weight_full + weight_tail * tail_fill),
        )
        sm_eff = np.where(
            tail_zero, 1.0, weight_full + weight_tail * tail_sm_fraction
        )
        active_warps_per_sm = warps_full_f

        # -- memory system (repro.gpu.memory.CacheModel.run) -----------
        if model_caches:
            l2_fraction = np.where(
                working_set > 0,
                np.minimum(1.0, l2_cap / working_set),
                1.0,
            )
            l2_hit_b = l2_repeat_b * l2_fraction
            l2_hit_b = l2_hit_b + carry_b
            dram_b = l2_in_b - l2_hit_b
            dram_b = np.maximum(dram_b, cold_floor)
            dram_b = np.maximum(dram_b, compulsory_floor)
            l2_hit_rate = np.where(l2_in_b > 0, l2_hit_b / l2_in_b, 0.0)
            l2_hit_rate = np.where(zero_traffic, 0.0, l2_hit_rate)
            dram_txns = dram_b / txn_bytes * txn_inflation
            dram_txns = np.where(zero_traffic, 0.0, dram_txns)
            dram_read_b = dram_b * read_share * txn_inflation
            dram_read_b = np.where(zero_traffic, 0.0, dram_read_b)
            l1_hr = np.where(zero_traffic, 0.0, l1_hit_rate_k)
            l1_hr = np.broadcast_to(l1_hr, (n_dev, n_ker))
        else:
            l2_hit_rate = np.zeros((n_dev, n_ker), dtype=np.float64)
            l1_hr = np.zeros((n_dev, n_ker), dtype=np.float64)
            dram_txns = nocache_total / txn_bytes
            dram_read_b = np.broadcast_to(
                nocache_total * read_share, (n_dev, n_ker)
            )

        # -- timing (repro.gpu.timing.TimingModel.time) ----------------
        raw_lat = l1_hr * l1_lat + (1.0 - l1_hr) * (
            l2_hit_rate * l2_lat + (1.0 - l2_hit_rate) * dram_lat
        )
        mem_lat = raw_lat / mlp
        avg_lat = ld_st * mem_lat + sync_barrier + alu_coeff * alu_lat

        if opts.model_latency:
            warps_per_scheduler = active_warps_per_sm / schedulers
            issue_eff = np.minimum(
                1.0, warps_per_scheduler * ilp / avg_lat
            )
        else:
            issue_eff = np.ones((n_dev, n_ker), dtype=np.float64)

        effective_gips = peak_gips_hz * sm_eff * issue_eff
        compute_time = warp_insts / effective_gips
        memory_time = dram_txns / peak_txn_rate
        bound_time = np.maximum(compute_time, memory_time)
        duration = overhead + bound_time
        overhead_bound = overhead > bound_time
        memory_bound = ~overhead_bound & (memory_time >= compute_time)

        # -- Table IV metrics (repro.gpu.timing.TimingModel._metrics) --
        active_time = np.maximum(duration - overhead, 1e-12)
        total_ipc = warp_insts / (active_time * clock_hz)
        sm_ipc = total_ipc / np.maximum(1e-9, num_sms_f * sm_eff)

        sp_util = np.minimum(1.0, fp32 * sm_ipc / FP32_WARPS_PER_CYCLE)
        ld_st_util = np.minimum(1.0, ld_st * sm_ipc / LSU_WARPS_PER_CYCLE)

        busy_frac = np.minimum(1.0, sm_ipc / peak_sm_ipc)
        stall_total = np.maximum(0.0, 1.0 - busy_frac)

        mem_share = (ld_st * raw_lat / mlp) / avg_lat
        sync_share = sync_barrier / avg_lat
        exec_share = np.maximum(0.0, 1.0 - mem_share - sync_share)

        mw_saturated = np.minimum(1.0, mem_share + 0.3)
        denom = np.maximum(1e-9, exec_share + sync_share)
        mem_weight = np.where(memory_bound, mw_saturated, mem_share)
        exec_weight = np.where(
            memory_bound, exec_share * (1.0 - mw_saturated) / denom, exec_share
        )
        sync_weight = np.where(
            memory_bound, sync_share * (1.0 - mw_saturated) / denom, sync_share
        )

        pipe_pressure = np.maximum(sp_util, ld_st_util)
        memory_stall = stall_total * mem_weight
        sync_stall = stall_total * sync_weight
        execution_stall = stall_total * exec_weight * (1.0 - pipe_pressure)
        pipe_stall = stall_total * exec_weight * pipe_pressure

        dram_read_tp = dram_read_b / duration / 1e9

    # -- assemble one shared KernelMetrics per (device, kernel) --------
    results: List[List[KernelMetrics]] = []
    for d in range(n_dev):
        duration_row = duration[d].tolist()
        dram_txns_row = dram_txns[d].tolist()
        occ_row = avg_active_warps[d].tolist()
        sm_eff_row = sm_eff[d].tolist()
        l1_row = l1_hr[d].tolist()
        l2_row = l2_hit_rate[d].tolist()
        read_tp_row = dram_read_tp[d].tolist()
        ld_st_util_row = ld_st_util[d].tolist()
        sp_util_row = sp_util[d].tolist()
        exec_stall_row = execution_stall[d].tolist()
        pipe_stall_row = pipe_stall[d].tolist()
        sync_stall_row = sync_stall[d].tolist()
        mem_stall_row = memory_stall[d].tolist()
        row: List[KernelMetrics] = []
        for k, kernel in enumerate(kernels):
            row.append(
                KernelMetrics(
                    name=kernel.name,
                    duration_s=duration_row[k],
                    warp_insts=kernel.warp_insts,
                    dram_transactions=dram_txns_row[k],
                    invocations=1,
                    warp_occupancy=occ_row[k],
                    sm_efficiency=sm_eff_row[k],
                    l1_hit_rate=l1_row[k],
                    l2_hit_rate=l2_row[k],
                    dram_read_throughput_gbs=read_tp_row[k],
                    ld_st_utilization=ld_st_util_row[k],
                    sp_utilization=sp_util_row[k],
                    fraction_branches=kernel.mix.branch,
                    fraction_ld_st=kernel.mix.ld_st,
                    execution_stall=exec_stall_row[k],
                    pipe_stall=pipe_stall_row[k],
                    sync_stall=sync_stall_row[k],
                    memory_stall=mem_stall_row[k],
                    tags=kernel.tags,
                )
            )
        results.append(row)
    return results


def simulate_devices(
    launches: Iterable[KernelLaunch],
    devices: Sequence[DeviceSpec],
    options: Optional[SimulationOptions] = None,
    tracer: Optional["Tracer"] = None,
    proxy_bank=None,
) -> List[List[KernelMetrics]]:
    """Simulate one launch stream on N devices in a single pass.

    Returns ``result[d]``: one :class:`KernelMetrics` per launch, in
    launch order, for ``devices[d]`` — with repeated launches of an
    equal kernel sharing a single metrics object per device, exactly
    like the scalar simulator's memo (the aggregation layer relies on
    that identity structure).

    For a single device this *is* the scalar path:
    ``simulate_devices(s, [d])[0] == GPUSimulator(d).run_stream(s)``
    bit-for-bit; for N > 1 the batched pass produces the same bits, as
    pinned by the differential tests.

    *proxy_bank* (a :class:`repro.core.proxy.ProxyBank`, typed loosely
    to keep the gpu layer below core) enables the opt-in similarity
    proxy: each device consults its own tier for every distinct kernel
    and only the misses go through the broadcast compute pass.  With
    ``proxy_bank=None`` (default) this function is bit-exact as above.
    """
    if not devices:
        raise ValueError("simulate_devices needs at least one device")
    names = [d.name for d in devices]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate device names in sweep: {names}")
    opts = options or SimulationOptions()

    if tracer is None:
        from repro.obs import NULL_TRACER

        tracer = NULL_TRACER

    if len(devices) == 1:
        proxy = (
            proxy_bank.tier(devices[0]) if proxy_bank is not None else None
        )
        sim = GPUSimulator(devices[0], options=opts, tracer=tracer, proxy=proxy)
        return [sim.run_stream(launches)]

    kernels, indices = _collect_distinct(launches)
    if proxy_bank is None:
        per_device = batch_kernel_metrics(
            kernels, devices, timing=opts.timing, model_caches=opts.model_caches
        )
    else:
        # Proxy path: per-device tier lookups first, then one vectorized
        # compute pass per device over only its misses.  (The cross-
        # device (D, K) broadcast is deliberately given up here — each
        # device may miss a different kernel subset, and elementwise
        # results are identical either way.)
        per_device = []
        for device in devices:
            tier = proxy_bank.tier(device)
            records: List[Optional[KernelMetrics]] = [
                tier.lookup(kernel) for kernel in kernels
            ]
            to_compute = [
                i for i, record in enumerate(records) if record is None
            ]
            if to_compute:
                computed = batch_kernel_metrics(
                    [kernels[i] for i in to_compute],
                    [device],
                    timing=opts.timing,
                    model_caches=opts.model_caches,
                )[0]
                for i, metrics in zip(to_compute, computed):
                    records[i] = metrics
                    tier.record(kernels[i], metrics)
            per_device.append(records)
    results = [
        [records[idx] for idx in indices] for records in per_device
    ]
    # Mirror the scalar simulator's counters once per device so a sweep
    # reads like N scalar runs in the run metrics, plus batching stats.
    tracer.incr("sim.launches", float(len(indices) * len(devices)))
    tracer.incr("sim.distinct_kernels", float(len(kernels) * len(devices)))
    tracer.incr("sim.batched_device_passes", 1.0)
    return results
