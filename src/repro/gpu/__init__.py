"""GPU hardware and timing substrate.

This package models the measurement platform of the Cactus paper — an
Nvidia RTX 3080 profiled with Nsight Compute — as an analytical
instruction-roofline performance model.  Workloads submit streams of
:class:`~repro.gpu.kernel.KernelLaunch` objects; the
:class:`~repro.gpu.simulator.GPUSimulator` turns each launch into a
:class:`~repro.gpu.metrics.KernelMetrics` record carrying the same metric
vocabulary the paper collects (Table IV) plus the roofline quantities
(GIPS and instruction intensity).
"""

from repro.gpu.batched import batch_kernel_metrics, simulate_devices
from repro.gpu.device import (
    A100,
    DEVICE_PRESETS,
    DEVICE_ZOO,
    EDGE_GPU,
    H100,
    P100,
    RTX_3080,
    RTX_3090,
    RTX_4090,
    V100,
    DeviceSpec,
    device_by_name,
)
from repro.gpu.kernel import (
    InstructionMix,
    KernelCharacteristics,
    KernelLaunch,
    LaunchStream,
    MemoryFootprint,
)
from repro.gpu.memory import CacheModel, MemorySystemResult
from repro.gpu.metrics import (
    PRIMARY_METRICS,
    SECONDARY_METRICS,
    KernelMetrics,
)
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.gpu.simulator import GPUSimulator, SimulationOptions
from repro.gpu.timing import TimingBreakdown, TimingModel

__all__ = [
    "A100",
    "DEVICE_PRESETS",
    "DEVICE_ZOO",
    "EDGE_GPU",
    "H100",
    "P100",
    "RTX_3080",
    "RTX_3090",
    "RTX_4090",
    "V100",
    "DeviceSpec",
    "device_by_name",
    "batch_kernel_metrics",
    "simulate_devices",
    "InstructionMix",
    "KernelCharacteristics",
    "KernelLaunch",
    "LaunchStream",
    "MemoryFootprint",
    "CacheModel",
    "MemorySystemResult",
    "KernelMetrics",
    "PRIMARY_METRICS",
    "SECONDARY_METRICS",
    "OccupancyResult",
    "compute_occupancy",
    "GPUSimulator",
    "SimulationOptions",
    "TimingBreakdown",
    "TimingModel",
]
