"""Per-kernel metric records — the paper's Table IV vocabulary.

:class:`KernelMetrics` is what the simulator emits for every launch and
what the profiler aggregates per kernel name.  Field names follow
Table IV of the paper; ``gips`` and ``instruction_intensity`` are the two
roofline coordinates defined in Section IV ("Performance Model").
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple

#: The four primary metrics of the correlation analysis (Fig. 8 rows).
PRIMARY_METRICS: Tuple[str, ...] = (
    "gips",
    "instruction_intensity",
    "sm_efficiency",
    "warp_occupancy",
)

#: The Table IV profiler metrics (Fig. 8 columns).
SECONDARY_METRICS: Tuple[str, ...] = (
    "warp_occupancy",
    "sm_efficiency",
    "l1_hit_rate",
    "l2_hit_rate",
    "dram_read_throughput_gbs",
    "ld_st_utilization",
    "sp_utilization",
    "fraction_branches",
    "fraction_ld_st",
    "execution_stall",
    "pipe_stall",
    "sync_stall",
    "memory_stall",
)


@dataclass
class KernelMetrics:
    """Metrics for one kernel launch (or one aggregated kernel).

    Counters (``warp_insts``, ``dram_transactions``, ``duration_s``,
    ``invocations``) are additive across invocations; rates and ratios
    are time-weighted when aggregated by the profiler.
    """

    name: str
    duration_s: float
    warp_insts: float
    dram_transactions: float
    invocations: int = 1

    # Table IV metrics -------------------------------------------------
    warp_occupancy: float = 0.0
    sm_efficiency: float = 0.0
    l1_hit_rate: float = 0.0
    l2_hit_rate: float = 0.0
    dram_read_throughput_gbs: float = 0.0
    ld_st_utilization: float = 0.0
    sp_utilization: float = 0.0
    fraction_branches: float = 0.0
    fraction_ld_st: float = 0.0
    execution_stall: float = 0.0
    pipe_stall: float = 0.0
    sync_stall: float = 0.0
    memory_stall: float = 0.0

    # Provenance -------------------------------------------------------
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.warp_insts <= 0:
            raise ValueError(f"warp_insts must be positive, got {self.warp_insts}")
        if self.dram_transactions < 0:
            raise ValueError("dram_transactions must be non-negative")
        if self.invocations < 1:
            raise ValueError("invocations must be >= 1")

    # Roofline coordinates ----------------------------------------------
    @property
    def gips(self) -> float:
        """Performance: Giga warp instructions per second."""
        return self.warp_insts / self.duration_s / 1e9

    @property
    def instruction_intensity(self) -> float:
        """Warp instructions per 32-byte DRAM transaction.

        For kernels with (near-)zero DRAM traffic the intensity is
        effectively infinite; we clamp to instructions-per-single-
        transaction so the value stays finite and plots on the far right
        of the roofline.
        """
        return self.warp_insts / max(1.0, self.dram_transactions)

    def metric(self, name: str) -> float:
        """Fetch a metric by name (primary properties or Table IV field)."""
        if name == "gips":
            return self.gips
        if name == "instruction_intensity":
            return self.instruction_intensity
        value = getattr(self, name)
        if not isinstance(value, (int, float)):
            raise KeyError(f"{name!r} is not a numeric metric")
        return float(value)

    def as_dict(self) -> Dict[str, float]:
        """All numeric metrics keyed by name (for analysis data frames)."""
        numeric: Dict[str, float] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            if isinstance(value, (int, float)) and item.name != "invocations":
                numeric[item.name] = float(value)
        numeric["invocations"] = float(self.invocations)
        numeric["gips"] = self.gips
        numeric["instruction_intensity"] = self.instruction_intensity
        return numeric

    # Serialization -----------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Lossless JSON form; ``from_json_dict`` inverts it exactly.

        Python floats survive a JSON round trip bit-for-bit (repr-based
        encoding), so a deserialized record compares equal to the
        original — the property the result cache's differential tests
        assert.
        """
        payload: Dict[str, object] = {}
        for item in fields(self):
            value = getattr(self, item.name)
            payload[item.name] = list(value) if item.name == "tags" else value
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "KernelMetrics":
        """Rebuild a record written by :meth:`to_json_dict`."""
        data = dict(payload)
        data["tags"] = tuple(data.get("tags", ()))
        return cls(**data)  # type: ignore[arg-type]


#: Human-readable descriptions, mirroring Table IV of the paper.
METRIC_DESCRIPTIONS: Dict[str, str] = {
    "warp_occupancy": "Average no. of active warps across all SMs",
    "sm_efficiency": "Fraction of time w/ at least one active warp per SM",
    "l1_hit_rate": "Fraction of accesses that hit in L1",
    "l2_hit_rate": "Fraction of accesses that hit in L2",
    "dram_read_throughput_gbs": "Total DRAM read bytes per second",
    "ld_st_utilization": "Average load/store functional unit utilization",
    "sp_utilization": "Average FP32 pipeline utilization",
    "fraction_branches": "Fraction branch instructions",
    "fraction_ld_st": "Fraction memory operations",
    "execution_stall": "Stall ratio due to execution dependencies",
    "pipe_stall": "Stall ratio due to busy pipeline",
    "sync_stall": "Stall ratio due to synchronization",
    "memory_stall": "Stall ratio due to memory accesses",
    "gips": "Performance: Giga warp instructions per second",
    "instruction_intensity": "Warp instructions per 32-byte DRAM transaction",
}


def metric_table() -> List[Tuple[str, str]]:
    """(metric, description) rows in Table IV order."""
    ordered = [m for m in SECONDARY_METRICS if m != "l2_hit_rate"]
    rows: List[Tuple[str, str]] = []
    for name in ordered:
        if name == "l1_hit_rate":
            rows.append(("L1/L2 hit rate", "Fraction of accesses that hit in L1 or L2"))
        else:
            rows.append((name, METRIC_DESCRIPTIONS[name]))
    return rows
