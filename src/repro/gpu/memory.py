"""Analytical cache-hierarchy model.

Turns a kernel's :class:`~repro.gpu.kernel.MemoryFootprint` into L1/L2
hit rates and a DRAM transaction count.  The model is deliberately
simple and deterministic — a capacity/reuse model in the spirit of
analytical reuse-distance approximations:

* the *compulsory* traffic (each unique byte fetched once) can never hit;
* the repeat traffic (``reuse_factor - 1`` touches per byte) hits in a
  cache level with probability equal to the resident fraction of the
  working set at that level;
* L1 only captures the short-range share of the reuse
  (``l1_locality``), since inter-block reuse on a GPU bypasses the
  per-SM L1s.

The output is exactly what the instruction roofline needs: the number of
32-byte DRAM transactions, plus the hit rates the correlation and
clustering analyses consume.

The batched device-axis path (:mod:`repro.gpu.batched`) re-implements
this model as ``(device, kernel)`` matrix expressions with identical
associativity; keep the two in sync (the differential tests in
``tests/gpu/test_batched_devices.py`` pin bit-for-bit equality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import DeviceSpec
from repro.gpu.kernel import KernelCharacteristics


@dataclass(frozen=True)
class MemorySystemResult:
    """Outcome of running one kernel through the cache model."""

    l1_hit_rate: float
    l2_hit_rate: float
    dram_transactions: float
    dram_read_bytes: float
    dram_write_bytes: float
    total_access_transactions: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.l1_hit_rate <= 1.0:
            raise ValueError(f"l1_hit_rate out of range: {self.l1_hit_rate}")
        if not 0.0 <= self.l2_hit_rate <= 1.0:
            raise ValueError(f"l2_hit_rate out of range: {self.l2_hit_rate}")
        if self.dram_transactions < 0:
            raise ValueError("dram_transactions must be non-negative")

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


def _resident_fraction(capacity_bytes: float, working_set_bytes: float) -> float:
    """Fraction of a working set resident in a cache of given capacity.

    1.0 when the working set fits; otherwise the resident fraction
    ``capacity / working_set`` (a fully-associative steady-state
    approximation).
    """
    if working_set_bytes <= 0:
        return 1.0
    return min(1.0, capacity_bytes / working_set_bytes)


class CacheModel:
    """Capacity/reuse cache model for a :class:`DeviceSpec`."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def run(self, kernel: KernelCharacteristics) -> MemorySystemResult:
        """Model one kernel launch; returns hit rates and DRAM traffic."""
        device = self.device
        footprint = kernel.memory
        txn = device.dram_transaction_bytes

        unique_bytes = footprint.unique_bytes
        total_bytes = footprint.total_access_bytes
        if total_bytes <= 0:
            # Pure-compute kernel: no memory traffic at all.
            return MemorySystemResult(
                l1_hit_rate=0.0,
                l2_hit_rate=0.0,
                dram_transactions=0.0,
                dram_read_bytes=0.0,
                dram_write_bytes=0.0,
                total_access_transactions=0.0,
            )

        repeat_bytes = total_bytes - unique_bytes
        working_set = footprint.effective_working_set

        # --- L1: captures the short-range share of the reuse.  Tiled
        # kernels (GEMM, convolution) choose their tiles to fit the
        # shared memory/L1 budget, so ``l1_locality`` directly expresses
        # the fraction of repeat traffic served on-SM; capacity is the
        # kernel author's responsibility, not the model's.
        l1_hit_bytes = repeat_bytes * footprint.l1_locality

        # --- L2: sees compulsory traffic plus the long-range repeat
        # traffic that missed (or bypassed) L1; capacity matters here,
        # judged against the kernel's true working set.
        l2_in_bytes = total_bytes - l1_hit_bytes
        l2_repeat_bytes = max(0.0, l2_in_bytes - unique_bytes)
        l2_fraction = _resident_fraction(device.l2_bytes, working_set)
        l2_hit_bytes = l2_repeat_bytes * l2_fraction

        # Producer-consumer locality *between* kernels: when a workload's
        # activations fit in L2, a kernel's "compulsory" input was just
        # written by its predecessor and is still resident.
        carry_bytes = unique_bytes * footprint.l2_carry_in
        l2_hit_bytes += carry_bytes

        dram_bytes = l2_in_bytes - l2_hit_bytes
        # DRAM traffic can never drop below the cold-miss footprint.
        dram_bytes = max(dram_bytes, unique_bytes - carry_bytes)
        dram_bytes = max(dram_bytes, unique_bytes * 0.02)

        l1_hit_rate = l1_hit_bytes / total_bytes
        l2_hit_rate = l2_hit_bytes / l2_in_bytes if l2_in_bytes > 0 else 0.0

        read_share = (
            footprint.bytes_read / unique_bytes if unique_bytes > 0 else 1.0
        )
        # Poor coalescence means each 32-byte transaction carries only a
        # fraction of useful data: the same miss traffic costs more
        # transactions (and more raw DRAM bytes).
        txn_inflation = 1.0 / footprint.coalescence
        return MemorySystemResult(
            l1_hit_rate=l1_hit_rate,
            l2_hit_rate=l2_hit_rate,
            dram_transactions=dram_bytes / txn * txn_inflation,
            dram_read_bytes=dram_bytes * read_share * txn_inflation,
            dram_write_bytes=dram_bytes * (1.0 - read_share) * txn_inflation,
            total_access_transactions=total_bytes / txn,
        )
