"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    List registered workloads per suite.
``characterize ABBR``
    Full Section-V treatment for one workload.
``table1``
    The Cactus Table-I statistics.
``observations``
    Run both suites and print the Observation 1-12 scoreboard.
``report``
    Full Markdown characterization report (optionally to a file).
``sweep``
    Characterize a suite across a list of devices (one stream per
    workload, batched device-axis simulation) and print the
    cross-device differential: roofline elbows, classification flips,
    dominant-kernel shifts.
``trace ABBR PATH``
    Export a workload's kernel launch stream as a JSONL trace.
``cache``
    Inspect the persistent result cache: entry counts, schema
    version directory, and optional pruning of stale version trees.
``similar``
    Build a kernel-similarity index over a suite run and answer
    nearest-neighbour or representative-subset queries.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import Optional, Sequence

from repro.core import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    PAPER_SCALE,
    ResultCache,
    RetryPolicy,
    SuiteRunError,
    characterize,
    check_observations,
    run_suite,
    run_sweep,
)
from repro.gpu.device import DEVICE_ZOO, device_by_name
from repro.core.report import generate_report
from repro.workloads import get_workload, list_workloads

_PRESETS = {
    "laptop": LAPTOP_SCALE,
    "observation": OBSERVATION_SCALE,
    "paper": PAPER_SCALE,
}

#: Sanity ceilings for CLI numeric flags — generous enough for any real
#: machine, tight enough to reject typos ("--jobs 10000000").
_MAX_JOBS = 1024
_MAX_RETRIES = 100
_MAX_TIMEOUT_S = 7 * 24 * 3600.0


def _jobs_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {text!r}"
        ) from None
    if abs(value) > _MAX_JOBS:
        raise argparse.ArgumentTypeError(
            f"worker count out of range (|N| <= {_MAX_JOBS}), got {value}"
        )
    return value


def _retries_arg(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer retry count, got {text!r}"
        ) from None
    if value < 0 or value > _MAX_RETRIES:
        raise argparse.ArgumentTypeError(
            f"retry count must be in [0, {_MAX_RETRIES}], got {value}"
        )
    return value


def _timeout_arg(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}"
        ) from None
    if not math.isfinite(value):
        raise argparse.ArgumentTypeError(
            f"timeout must be finite, got {text!r}"
        )
    if value <= 0 or value > _MAX_TIMEOUT_S:
        raise argparse.ArgumentTypeError(
            f"timeout must be in (0, {_MAX_TIMEOUT_S:.0f}] seconds, "
            f"got {value}"
        )
    return value


def _proxy_tol_arg(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative distance, got {text!r}"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"proxy tolerance must be finite and >= 0, got {text!r}"
        )
    return value


def _env_default(name: str, convert):
    """Validated default from an environment variable (None if unset).

    Environment values pass through the same validators as flags so a
    bad ``REPRO_*`` value fails at parse time with a clear message
    instead of deep inside a suite run.
    """
    raw = os.environ.get(name)
    if raw in (None, ""):
        return None
    try:
        return convert(raw)
    except argparse.ArgumentTypeError as exc:
        raise SystemExit(f"repro: error: {name}: {exc}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cactus (IISWC 2021) reproduction pipeline",
        epilog=(
            "Environment: REPRO_CACHE_DIR, REPRO_JOBS, REPRO_RETRIES, "
            "REPRO_TIMEOUT, REPRO_JOURNAL_DIR, REPRO_PROXY_TOL and "
            "REPRO_TRACE_DIR "
            "provide defaults for the matching flags; an explicit flag "
            "always overrides its environment variable. "
            "Failure semantics: suite commands "
            "keep going past failed workloads by default (failures are "
            "listed on stderr, aggregates cover the survivors, exit "
            "code 0); --strict makes any workload failure abort with a "
            "non-zero exit code."
        ),
    )
    parser.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="laptop",
        help="scale preset for suite-level commands (default: laptop)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=_env_default("REPRO_JOBS", _jobs_arg),
        metavar="N",
        help="characterize N workloads in parallel for suite-level "
        "commands (negative: one worker per CPU; default: "
        "$REPRO_JOBS, else serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        metavar="PATH",
        help="persist characterization results under PATH and reuse "
        "them across runs (default: $REPRO_CACHE_DIR, else "
        "in-memory only)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    parser.add_argument(
        "--retries",
        type=_retries_arg,
        default=_env_default("REPRO_RETRIES", _retries_arg),
        metavar="N",
        help="retry each failed workload up to N times; only "
        "transient failures (I/O, broken pool, timeout) are "
        "retried (default: $REPRO_RETRIES, else 2)",
    )
    parser.add_argument(
        "--timeout",
        type=_timeout_arg,
        default=_env_default("REPRO_TIMEOUT", _timeout_arg),
        metavar="SECONDS",
        help="per-workload wall-clock timeout; a worker exceeding it "
        "is killed and the workload counted failed (requires "
        "--jobs > 1; default: $REPRO_TIMEOUT, else none)",
    )
    fail_mode = parser.add_mutually_exclusive_group()
    fail_mode.add_argument(
        "--strict",
        action="store_true",
        help="abort (non-zero exit) if any workload fails after "
        "retries",
    )
    fail_mode.add_argument(
        "--keep-going",
        action="store_true",
        help="run every workload even when some fail and report over "
        "the survivors (the default; listed for symmetry with "
        "--strict)",
    )
    parser.add_argument(
        "--journal-dir",
        default=os.environ.get("REPRO_JOURNAL_DIR"),
        metavar="PATH",
        help="checkpoint completed workloads under PATH; an "
        "interrupted run with identical parameters resumes there "
        "and skips finished workloads (default: $REPRO_JOURNAL_DIR, "
        "else no journal)",
    )
    parser.add_argument(
        "--proxy-tol",
        type=_proxy_tol_arg,
        default=_env_default("REPRO_PROXY_TOL", _proxy_tol_arg),
        metavar="DIST",
        help="opt into the similarity-proxy tier for suite-level "
        "commands: kernels within DIST of an already-simulated one "
        "(standardized feature space) reuse its metrics instead of "
        "simulating; 0 accepts exact structural duplicates only "
        "(default: $REPRO_PROXY_TOL, else off — bit-exact runs)",
    )
    trace_mode = parser.add_mutually_exclusive_group()
    trace_mode.add_argument(
        "--trace-dir",
        default=None,
        metavar="PATH",
        help="write a run-scoped observability log under PATH: an "
        "append-only events.jsonl plus a Chrome/Perfetto trace.json "
        "(default: $REPRO_TRACE_DIR, else tracing off)",
    )
    trace_mode.add_argument(
        "--no-trace",
        action="store_true",
        help="disable trace output even when $REPRO_TRACE_DIR is set",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    one = sub.add_parser("characterize", help="characterize one workload")
    one.add_argument("abbr", help="workload abbreviation, e.g. GMS")
    one.add_argument("--scale", type=float, default=0.25)

    sub.add_parser("table1", help="print the Cactus Table I")

    sub.add_parser(
        "observations", help="evaluate Observations 1-12 on both suites"
    )

    report = sub.add_parser("report", help="full Markdown report")
    report.add_argument("--output", default=None,
                        help="write the report to this file")
    report.add_argument("--with-prt", action="store_true",
                        help="include the PRT comparison sections")

    sweep = sub.add_parser(
        "sweep",
        help="characterize a suite across a device zoo",
        description=(
            "Each workload's launch stream is generated once and the "
            "whole device list is simulated in a single batched pass; "
            "prints per-device Table-I style rows plus the "
            "cross-device differential (elbows, classification flips, "
            "dominant-kernel shifts)."
        ),
    )
    device_sel = sweep.add_mutually_exclusive_group(required=True)
    device_sel.add_argument(
        "--devices",
        metavar="NAME[,NAME...]",
        help="comma-separated device names from the zoo "
        f"(known: {', '.join(DEVICE_ZOO)})",
    )
    device_sel.add_argument(
        "--all-devices",
        action="store_true",
        help="sweep every device in the zoo",
    )
    sweep.add_argument(
        "--suite",
        default="Cactus",
        help="suite to sweep (default: Cactus)",
    )
    sweep.add_argument(
        "--workloads",
        metavar="ABBR[,ABBR...]",
        default=None,
        help="restrict to these workload abbreviations",
    )
    sweep.add_argument(
        "--baseline",
        default=None,
        metavar="NAME",
        help="device the dominant-kernel shift column compares "
        "against (default: RTX 3080 when swept, else the first "
        "device)",
    )
    sweep.add_argument(
        "--output", default=None, help="write the sweep section to this file"
    )

    serve = sub.add_parser(
        "serve",
        help="run the characterization service (HTTP/JSON job API)",
        description=(
            "Boots an asyncio HTTP server over the characterization "
            "engine: POST /v1/jobs submits suite/workload/sweep "
            "requests, identical concurrent submissions coalesce onto "
            "one engine run, per-client token buckets bound the "
            "submission rate, and GET /v1/jobs/{id}/events streams the "
            "run's observability log.  SIGTERM drains gracefully; "
            "journaled in-flight runs resume on the next start with "
            "the same --state-dir.  The service shares the on-disk "
            "result cache selected by --cache-dir/$REPRO_CACHE_DIR."
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        metavar="N",
        help="listen port; 0 picks an ephemeral port, written with the "
        "host to <state-dir>/server.json for discovery (default: 0)",
    )
    serve.add_argument(
        "--state-dir",
        default=os.environ.get("REPRO_STATE_DIR", ".repro-service"),
        metavar="PATH",
        help="durable service state: job records, per-job journals and "
        "traces, the default cache (default: $REPRO_STATE_DIR, else "
        "./.repro-service)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent engine runs (worker threads; default: 2)",
    )
    serve.add_argument(
        "--engine-jobs",
        type=int,
        default=None,
        metavar="N",
        help="override every job's engine worker-process count "
        "(default: honour the per-request 'jobs' field)",
    )
    serve.add_argument(
        "--quota-burst",
        type=float,
        default=32.0,
        metavar="N",
        help="per-client token-bucket capacity: submissions admitted "
        "instantly from a cold start (default: 32)",
    )
    serve.add_argument(
        "--quota-rate",
        type=float,
        default=8.0,
        metavar="N",
        help="per-client sustained submission rate, tokens/second "
        "(default: 8)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="on SIGTERM, wait this long for running jobs before "
        "persisting them as interrupted (default: 5)",
    )

    trace = sub.add_parser("trace", help="export a workload kernel trace")
    trace.add_argument("abbr")
    trace.add_argument("path")
    trace.add_argument("--scale", type=float, default=0.1)

    cache_cmd = sub.add_parser(
        "cache",
        help="inspect (and optionally prune) the persistent result cache",
        description=(
            "Prints the persistent cache location, schema version "
            "directory, and entry count for the --cache-dir (or "
            "$REPRO_CACHE_DIR) tree.  --prune removes version trees "
            "left behind by older cache schemas."
        ),
    )
    cache_cmd.add_argument(
        "--prune",
        action="store_true",
        help="delete persistent trees of older cache schema versions",
    )

    similar = sub.add_parser(
        "similar",
        help="query the kernel-similarity index over a suite run",
        description=(
            "Characterizes the suite, builds a KernelIndex over the "
            "per-kernel metric feature vectors (keys are ABBR:kernel), "
            "and answers one query: --query KEY lists the k nearest "
            "kernels; --representatives N picks N medoid kernels; "
            "--coverage F picks the smallest subset reaching coverage "
            "F."
        ),
    )
    query_sel = similar.add_mutually_exclusive_group(required=True)
    query_sel.add_argument(
        "--query",
        metavar="ABBR:KERNEL",
        help="list the nearest neighbours of this kernel",
    )
    query_sel.add_argument(
        "--representatives",
        type=int,
        metavar="N",
        help="select N representative kernels (k-medoids)",
    )
    query_sel.add_argument(
        "--coverage",
        type=float,
        metavar="FRACTION",
        help="select the smallest representative subset reaching this "
        "coverage in (0, 1]",
    )
    similar.add_argument(
        "-k",
        type=int,
        default=5,
        metavar="N",
        help="neighbours to list for --query (default: 5)",
    )
    similar.add_argument(
        "--suite",
        default="Cactus",
        help="suite to index (default: Cactus)",
    )
    similar.add_argument(
        "--workloads",
        metavar="ABBR[,ABBR...]",
        default=None,
        help="restrict the corpus to these workload abbreviations",
    )

    return parser


def _cmd_list() -> int:
    for suite in ("Cactus", "CactusExt", "Parboil", "Rodinia", "Tango"):
        members = list_workloads(suite)
        print(f"{suite} ({len(members)}):")
        for abbr in members:
            workload = get_workload(abbr, scale=0.01)
            print(f"  {abbr:<14} {workload.name} — {workload.info.description}")
    return 0


def _cmd_characterize(abbr: str, scale: float) -> int:
    result = characterize(get_workload(abbr, scale=scale))
    profile = result.profile
    point = result.aggregate_point
    print(f"{result.abbr}: {profile.workload} at scale {scale}")
    print(f"  kernels: {result.table1.kernels_100} "
          f"(70% of time in {result.table1.kernels_70})")
    print(f"  total warp insts: {result.table1.total_warp_insts:.3e}")
    print(f"  aggregate: II={point.intensity:.2f}, GIPS={point.gips:.2f} "
          f"({point.intensity_class}-intensive)")
    print("  top kernels:")
    for kernel in profile.kernels[:8]:
        share = kernel.total_time_s / profile.total_time_s
        print(f"    {kernel.name:<44} {share:6.1%} "
              f"x{kernel.invocations}")
    return 0


def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    """One-line cache summary on stderr (keeps exhibits clean)."""
    if cache is not None:
        print(f"[cache] {cache.stats.render()}", file=sys.stderr)


def _print_trace_dir(*reports) -> None:
    """Point at the run's trace artifacts on stderr (once per dir)."""
    seen = set()
    for report in reports:
        trace_dir = getattr(report, "trace_dir", None)
        if trace_dir and trace_dir not in seen:
            seen.add(trace_dir)
            print(
                f"[trace] events.jsonl and trace.json written under "
                f"{trace_dir}",
                file=sys.stderr,
            )


def _print_failures(*reports) -> int:
    """List workload failures on stderr; return how many there were."""
    count = 0
    for report in reports:
        if report is None:
            continue
        reason = getattr(report, "fallback_reason", None)
        if reason:
            print(f"[engine] degraded to serial: {reason}", file=sys.stderr)
        resumed = getattr(report, "resumed", None)
        if resumed:
            print(
                f"[journal] resumed, skipping {len(resumed)} completed "
                f"workload(s): {', '.join(resumed)}",
                file=sys.stderr,
            )
        for failure in getattr(report, "failures", []) or []:
            print(f"[failed] {failure.render()}", file=sys.stderr)
            count += 1
    return count


def _cmd_table1(run_kwargs) -> int:
    from repro.analysis.tables import render_table1

    result = run_suite(["Cactus"], **run_kwargs)
    rows = [c.table1 for c in result.suite("Cactus")]
    print(render_table1(rows))
    _print_failures(result)
    _print_cache_stats(run_kwargs["cache"])
    _print_trace_dir(result)
    return 0


def _cmd_observations(run_kwargs) -> int:
    cactus = run_suite(["Cactus"], **run_kwargs)
    prt = run_suite(["Parboil", "Rodinia", "Tango"], **run_kwargs)
    failed = _print_failures(cactus, prt)
    try:
        report = check_observations(cactus, prt)
    except (KeyError, ValueError) as exc:
        print(
            f"observations skipped: requires the full workload set "
            f"({type(exc).__name__}: {exc})",
            file=sys.stderr,
        )
        _print_cache_stats(run_kwargs["cache"])
        return 1 if failed else 0
    print(report.render())
    _print_cache_stats(run_kwargs["cache"])
    _print_trace_dir(cactus, prt)
    return 0 if report.passed >= 11 else 1


def _cmd_report(output: Optional[str], with_prt: bool, run_kwargs) -> int:
    cactus = run_suite(["Cactus"], **run_kwargs)
    prt = (
        run_suite(["Parboil", "Rodinia", "Tango"], **run_kwargs)
        if with_prt
        else None
    )
    _print_failures(cactus, prt)
    cache = run_kwargs["cache"]
    text = generate_report(
        cactus, prt, cache_stats=cache.stats if cache else None
    )
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)
    _print_trace_dir(cactus, prt)
    return 0


def _cmd_sweep(args, run_kwargs) -> int:
    from repro.analysis.sweep import analyze_sweep, render_sweep_markdown

    if args.all_devices:
        devices = list(DEVICE_ZOO.values())
    else:
        try:
            devices = [
                device_by_name(name)
                for name in args.devices.split(",")
                if name.strip()
            ]
        except KeyError as exc:
            print(f"repro: error: {exc.args[0]}", file=sys.stderr)
            return 2
        if not devices:
            print("repro: error: --devices: empty list", file=sys.stderr)
            return 2
    workloads = (
        [w for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else None
    )
    report = run_sweep(
        devices, suites=[args.suite], workloads=workloads, **run_kwargs
    )
    _print_failures(report)
    analysis = analyze_sweep(
        report.results, report.devices, baseline=args.baseline
    )
    text = render_sweep_markdown(analysis)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    _print_cache_stats(run_kwargs["cache"])
    _print_trace_dir(report)
    return 0


def _cmd_cache(args, cache: Optional[ResultCache]) -> int:
    if cache is None:
        print("repro: error: cache disabled (--no-cache)", file=sys.stderr)
        return 2
    if cache.cache_dir is None:
        print(
            "cache: in-memory only (set --cache-dir or $REPRO_CACHE_DIR "
            "for a persistent tree)"
        )
        return 0
    print(f"cache dir:    {cache.cache_dir}")
    print(f"version dir:  {cache.version_dir}")
    print(f"entries:      {cache.persistent_entries()}")
    if args.prune:
        removed = cache.prune()
        print(f"pruned:       {removed} stale version tree(s)")
    print(f"stats:        {cache.stats.render()}")
    return 0


def _cmd_similar(args, run_kwargs) -> int:
    from repro.analysis.similarity import (
        METRIC_FEATURES,
        KernelIndex,
        metric_features,
    )

    workloads = (
        [w for w in args.workloads.split(",") if w.strip()]
        if args.workloads
        else None
    )
    result = run_suite(
        [args.suite], workloads=workloads, **run_kwargs
    )
    _print_failures(result)

    index = KernelIndex(feature_names=METRIC_FEATURES)
    profiles: dict = {}
    for abbr, char in result.results.items():
        for kernel in char.profile.kernels:
            key = f"{abbr}:{kernel.name}"
            index.add(key, metric_features(kernel.metrics), kernel)
            profiles[key] = kernel
    if not profiles:
        print("repro: error: empty corpus (no kernels)", file=sys.stderr)
        return 1
    print(
        f"index: {len(profiles)} kernels from {len(result.results)} "
        f"workload(s) over {len(METRIC_FEATURES)} metric features"
    )

    if args.query is not None:
        if args.query not in profiles:
            print(
                f"repro: error: unknown kernel key {args.query!r} "
                f"(keys look like ABBR:kernel_name)",
                file=sys.stderr,
            )
            return 2
        if args.k < 1:
            print("repro: error: -k must be >= 1", file=sys.stderr)
            return 2
        vector = metric_features(profiles[args.query].metrics)
        neighbors = index.knn(vector, args.k, exclude=args.query)
        print(f"nearest {len(neighbors)} to {args.query}:")
        for rank, neighbor in enumerate(neighbors, start=1):
            marker = "  (exact)" if neighbor.exact else ""
            print(
                f"  {rank:>2}. {neighbor.key:<52} "
                f"d={neighbor.distance:.4f}{marker}"
            )
        return 0

    if args.representatives is not None:
        if not 1 <= args.representatives <= len(profiles):
            print(
                f"repro: error: --representatives must be in "
                f"[1, {len(profiles)}]",
                file=sys.stderr,
            )
            return 2
        subset = index.representative_subset(args.representatives)
    else:
        if not 0 < args.coverage <= 1:
            print(
                "repro: error: --coverage must be in (0, 1]",
                file=sys.stderr,
            )
            return 2
        subset = index.representatives_for_target(args.coverage)
    print(
        f"representatives ({len(subset.representative_labels)} kernels, "
        f"coverage {subset.coverage:.3f}):"
    )
    for label in subset.representative_labels:
        kernel = profiles[label]
        print(
            f"  {label:<52} {kernel.total_time_s:10.3e} s "
            f"x{kernel.invocations}"
        )
    _print_cache_stats(run_kwargs["cache"])
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import JobManager, QuotaConfig, ReproService

    if args.workers < 1:
        print("repro: error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        quota = QuotaConfig(
            capacity=args.quota_burst, refill_per_s=args.quota_rate
        )
    except ValueError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    manager = JobManager(
        state_dir=args.state_dir,
        workers=args.workers,
        engine_jobs=args.engine_jobs,
        cache_dir=args.cache_dir,  # None → <state-dir>/cache
        quota=quota,
    )

    async def _serve() -> int:
        service = ReproService(
            manager,
            host=args.host,
            port=args.port,
            drain_grace_s=args.drain_grace,
        )
        port = await service.start()
        recovered = manager.stats()["recovered"]
        if recovered:
            print(
                f"[serve] recovered {len(recovered)} unfinished job(s); "
                "re-queued for journal resume",
                file=sys.stderr,
            )
        print(
            f"[serve] listening on http://{args.host}:{port} "
            f"(state: {manager.state_dir}, cache: {manager.cache_dir})",
            file=sys.stderr,
        )
        interrupted = await service.serve_forever()
        if interrupted:
            print(
                f"[serve] drained; {len(interrupted)} job(s) journaled "
                "as interrupted (restart with the same --state-dir to "
                "resume)",
                file=sys.stderr,
            )
        else:
            print("[serve] drained cleanly", file=sys.stderr)
        return 0

    return asyncio.run(_serve())


def _cmd_trace(abbr: str, path: str, scale: float) -> int:
    from repro.profiler import export_trace

    workload = get_workload(abbr, scale=scale)
    count = export_trace(workload.launch_stream(), path)
    print(f"wrote {count} launches from {abbr} to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    preset = _PRESETS[args.preset]
    if args.cache_dir is not None and os.path.exists(args.cache_dir) \
            and not os.path.isdir(args.cache_dir):
        parser.error(f"--cache-dir: not a directory: {args.cache_dir}")
    # Flag > environment; --no-trace silences both (they are mutually
    # exclusive at the argparse level, so --no-trace always means the
    # environment default is being refused).
    trace_dir = args.trace_dir
    if trace_dir is None and not args.no_trace:
        trace_dir = os.environ.get("REPRO_TRACE_DIR") or None
    if trace_dir is not None and os.path.exists(trace_dir) \
            and not os.path.isdir(trace_dir):
        parser.error(f"--trace-dir: not a directory: {trace_dir}")
    if args.timeout is not None and (args.jobs is None or args.jobs in (0, 1)):
        print(
            "repro: warning: --timeout has no effect on the serial path "
            "(pass --jobs > 1)",
            file=sys.stderr,
        )
    cache = (
        None
        if args.no_cache
        else ResultCache(cache_dir=args.cache_dir)
    )
    retries = 2 if args.retries is None else args.retries
    run_kwargs = {
        "preset": preset,
        "jobs": args.jobs,
        "cache": cache,
        "retry_policy": RetryPolicy(
            max_attempts=retries + 1, timeout_s=args.timeout
        ),
        "keep_going": not args.strict,
        "journal_dir": args.journal_dir,
        "trace_dir": trace_dir,
        "proxy_tol": args.proxy_tol,
    }
    if args.command == "list":
        return _cmd_list()
    if args.command == "characterize":
        return _cmd_characterize(args.abbr, args.scale)
    if args.command == "cache":
        return _cmd_cache(args, cache)
    if args.command == "serve":
        return _cmd_serve(args)
    try:
        if args.command == "table1":
            return _cmd_table1(run_kwargs)
        if args.command == "observations":
            return _cmd_observations(run_kwargs)
        if args.command == "report":
            return _cmd_report(args.output, args.with_prt, run_kwargs)
        if args.command == "sweep":
            return _cmd_sweep(args, run_kwargs)
        if args.command == "similar":
            return _cmd_similar(args, run_kwargs)
    except SuiteRunError as exc:
        # --strict: a workload failed terminally.  The partial report
        # (with every completed characterization) rode along on the
        # exception; list the failures and exit non-zero.
        _print_failures(exc.report)
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1
    if args.command == "trace":
        return _cmd_trace(args.abbr, args.path, args.scale)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
