"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``list``
    List registered workloads per suite.
``characterize ABBR``
    Full Section-V treatment for one workload.
``table1``
    The Cactus Table-I statistics.
``observations``
    Run both suites and print the Observation 1-12 scoreboard.
``report``
    Full Markdown characterization report (optionally to a file).
``trace ABBR PATH``
    Export a workload's kernel launch stream as a JSONL trace.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.core import (
    LAPTOP_SCALE,
    OBSERVATION_SCALE,
    PAPER_SCALE,
    ResultCache,
    characterize,
    check_observations,
    run_suite,
)
from repro.core.report import generate_report
from repro.workloads import get_workload, list_workloads

_PRESETS = {
    "laptop": LAPTOP_SCALE,
    "observation": OBSERVATION_SCALE,
    "paper": PAPER_SCALE,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cactus (IISWC 2021) reproduction pipeline",
    )
    parser.add_argument(
        "--preset",
        choices=sorted(_PRESETS),
        default="laptop",
        help="scale preset for suite-level commands (default: laptop)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="characterize N workloads in parallel for suite-level "
        "commands (negative: one worker per CPU; default: serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR"),
        metavar="PATH",
        help="persist characterization results under PATH and reuse "
        "them across runs (default: $REPRO_CACHE_DIR, else "
        "in-memory only)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache entirely",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered workloads")

    one = sub.add_parser("characterize", help="characterize one workload")
    one.add_argument("abbr", help="workload abbreviation, e.g. GMS")
    one.add_argument("--scale", type=float, default=0.25)

    sub.add_parser("table1", help="print the Cactus Table I")

    sub.add_parser(
        "observations", help="evaluate Observations 1-12 on both suites"
    )

    report = sub.add_parser("report", help="full Markdown report")
    report.add_argument("--output", default=None,
                        help="write the report to this file")
    report.add_argument("--with-prt", action="store_true",
                        help="include the PRT comparison sections")

    trace = sub.add_parser("trace", help="export a workload kernel trace")
    trace.add_argument("abbr")
    trace.add_argument("path")
    trace.add_argument("--scale", type=float, default=0.1)

    return parser


def _cmd_list() -> int:
    for suite in ("Cactus", "CactusExt", "Parboil", "Rodinia", "Tango"):
        members = list_workloads(suite)
        print(f"{suite} ({len(members)}):")
        for abbr in members:
            workload = get_workload(abbr, scale=0.01)
            print(f"  {abbr:<14} {workload.name} — {workload.info.description}")
    return 0


def _cmd_characterize(abbr: str, scale: float) -> int:
    result = characterize(get_workload(abbr, scale=scale))
    profile = result.profile
    point = result.aggregate_point
    print(f"{result.abbr}: {profile.workload} at scale {scale}")
    print(f"  kernels: {result.table1.kernels_100} "
          f"(70% of time in {result.table1.kernels_70})")
    print(f"  total warp insts: {result.table1.total_warp_insts:.3e}")
    print(f"  aggregate: II={point.intensity:.2f}, GIPS={point.gips:.2f} "
          f"({point.intensity_class}-intensive)")
    print("  top kernels:")
    for kernel in profile.kernels[:8]:
        share = kernel.total_time_s / profile.total_time_s
        print(f"    {kernel.name:<44} {share:6.1%} "
              f"x{kernel.invocations}")
    return 0


def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    """One-line cache summary on stderr (keeps exhibits clean)."""
    if cache is not None:
        print(f"[cache] {cache.stats.render()}", file=sys.stderr)


def _cmd_table1(preset, jobs, cache) -> int:
    from repro.analysis.tables import render_table1

    result = run_suite(["Cactus"], preset=preset, jobs=jobs, cache=cache)
    rows = [c.table1 for c in result.suite("Cactus")]
    print(render_table1(rows))
    _print_cache_stats(cache)
    return 0


def _cmd_observations(preset, jobs, cache) -> int:
    cactus = run_suite(["Cactus"], preset=preset, jobs=jobs, cache=cache)
    prt = run_suite(
        ["Parboil", "Rodinia", "Tango"], preset=preset, jobs=jobs, cache=cache
    )
    report = check_observations(cactus, prt)
    print(report.render())
    _print_cache_stats(cache)
    return 0 if report.passed >= 11 else 1


def _cmd_report(preset, output: Optional[str], with_prt: bool, jobs, cache) -> int:
    cactus = run_suite(["Cactus"], preset=preset, jobs=jobs, cache=cache)
    prt = (
        run_suite(
            ["Parboil", "Rodinia", "Tango"],
            preset=preset,
            jobs=jobs,
            cache=cache,
        )
        if with_prt
        else None
    )
    text = generate_report(
        cactus, prt, cache_stats=cache.stats if cache else None
    )
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {output}")
    else:
        print(text)
    return 0


def _cmd_trace(abbr: str, path: str, scale: float) -> int:
    from repro.profiler import export_trace

    workload = get_workload(abbr, scale=scale)
    count = export_trace(workload.launch_stream(), path)
    print(f"wrote {count} launches from {abbr} to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    preset = _PRESETS[args.preset]
    if args.cache_dir is not None and os.path.exists(args.cache_dir) \
            and not os.path.isdir(args.cache_dir):
        parser.error(f"--cache-dir: not a directory: {args.cache_dir}")
    cache = (
        None
        if args.no_cache
        else ResultCache(cache_dir=args.cache_dir)
    )
    if args.command == "list":
        return _cmd_list()
    if args.command == "characterize":
        return _cmd_characterize(args.abbr, args.scale)
    if args.command == "table1":
        return _cmd_table1(preset, args.jobs, cache)
    if args.command == "observations":
        return _cmd_observations(preset, args.jobs, cache)
    if args.command == "report":
        return _cmd_report(preset, args.output, args.with_prt, args.jobs, cache)
    if args.command == "trace":
        return _cmd_trace(args.abbr, args.path, args.scale)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
