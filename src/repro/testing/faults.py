"""Deterministic fault injection for the characterization engine.

The robustness test suite (``tests/robustness/``) needs to *prove*
crash isolation, retry-then-succeed, timeout-kill, checkpoint-resume
and cache quarantine — which requires failures that are exactly
reproducible.  A :class:`FaultPlan` is an immutable, picklable value
(it crosses the process-pool boundary with the work item) describing
which workloads misbehave, how, and on which attempt numbers:

``CRASH``
    Raise :class:`InjectedTransientFault` (an ``OSError`` subclass, so
    the retry policy classifies it as transient and retries it).
``CRASH_PERMANENT``
    Raise :class:`InjectedPermanentFault` (a ``ValueError`` subclass —
    classified permanent, never retried).
``HANG``
    Sleep ``hang_s`` seconds before doing the work, long enough to
    trip a per-workload timeout so the engine's kill-and-rebuild path
    is exercised.
``CORRUPT_RESULT``
    Complete the work but return a corrupted characterization (sign
    bit flipped on the headline instruction counts) — models a worker
    that silently produces garbage.
``CORRUPT_CACHE``
    Complete the work, then flip a byte in persistent cache entries on
    disk — models at-rest corruption, exercised against the cache's
    quarantine path.

A fault fires only when its ``attempts`` tuple contains the current
attempt number (default ``(1,)`` — fail once, succeed on retry); an
empty tuple means *every* attempt.  ``FaultPlan.random`` derives a
plan from a seed via ``random.Random(seed)``, so randomized campaigns
are replayable from the seed alone.  An empty plan is a strict no-op:
a fault-free run under the harness is bit-for-bit identical to a run
without it (proved by ``tests/robustness/test_fault_free.py``).
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

#: PID of the process that imported this module first (the test
#: runner / engine parent under fork-based pools) — DIE faults only
#: fire in *other* processes, i.e. pool workers.
_MAIN_PID = os.getpid()

CRASH = "crash"
CRASH_PERMANENT = "crash-permanent"
HANG = "hang"
DIE = "die"  # hard process death (os._exit) → BrokenProcessPool
CORRUPT_RESULT = "corrupt-result"
CORRUPT_CACHE = "corrupt-cache"

FAULT_KINDS = (CRASH, CRASH_PERMANENT, HANG, DIE, CORRUPT_RESULT, CORRUPT_CACHE)


class InjectedFault(Exception):
    """Marker base class for all injected faults."""


class InjectedTransientFault(InjectedFault, OSError):
    """Injected fault classified *transient* by the retry policy."""


class InjectedPermanentFault(InjectedFault, ValueError):
    """Injected fault classified *permanent* by the retry policy."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: which workload, what kind, on which attempts."""

    abbr: str
    kind: str
    attempts: Tuple[int, ...] = (1,)
    hang_s: float = 30.0
    max_files: int = 1  # cache files to corrupt for CORRUPT_CACHE

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )

    def fires(self, abbr: str, attempt: int) -> bool:
        if self.abbr.upper() != abbr.upper():
            return False
        return not self.attempts or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable schedule of injected faults."""

    faults: Tuple[FaultSpec, ...] = ()

    # -- construction ---------------------------------------------------
    @classmethod
    def single(
        cls,
        abbr: str,
        kind: str,
        attempts: Tuple[int, ...] = (1,),
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        return cls(
            faults=(
                FaultSpec(abbr=abbr, kind=kind, attempts=attempts, hang_s=hang_s),
            )
        )

    @classmethod
    def random(
        cls,
        abbrs: Sequence[str],
        seed: int,
        rate: float = 0.3,
        kinds: Sequence[str] = (CRASH, CRASH_PERMANENT, CORRUPT_RESULT),
    ) -> "FaultPlan":
        """Seeded random plan: replayable from ``(abbrs, seed)`` alone."""
        rng = random.Random(seed)
        faults = tuple(
            FaultSpec(abbr=abbr, kind=rng.choice(list(kinds)))
            for abbr in abbrs
            if rng.random() < rate
        )
        return cls(faults=faults)

    # -- queries --------------------------------------------------------
    def for_workload(self, abbr: str) -> Tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.abbr.upper() == abbr.upper())

    def __bool__(self) -> bool:
        return bool(self.faults)

    # -- injection hooks ------------------------------------------------
    def before(self, abbr: str, attempt: int) -> None:
        """Pre-work hook: crash or hang the attempt if scheduled."""
        for fault in self.faults:
            if not fault.fires(abbr, attempt):
                continue
            if fault.kind == HANG:
                time.sleep(fault.hang_s)
            elif fault.kind == DIE:
                # A hard death, invisible to except clauses in the
                # worker — the parent observes a BrokenProcessPool.
                # Only meaningful inside a pool worker; in-process it
                # would kill the test runner, so refuse there.
                if os.getpid() != _MAIN_PID:
                    os._exit(3)
                raise InjectedTransientFault(
                    f"refusing to inject DIE in the main process for "
                    f"{abbr} (attempt {attempt})"
                )
            elif fault.kind == CRASH:
                raise InjectedTransientFault(
                    f"injected transient fault in {abbr} (attempt {attempt})"
                )
            elif fault.kind == CRASH_PERMANENT:
                raise InjectedPermanentFault(
                    f"injected permanent fault in {abbr} (attempt {attempt})"
                )

    def after(self, abbr: str, attempt: int, result: Any, cache: Any) -> Any:
        """Post-work hook: corrupt the result or the on-disk cache."""
        for fault in self.faults:
            if not fault.fires(abbr, attempt):
                continue
            if fault.kind == CORRUPT_RESULT:
                result = corrupt_characterization(result)
            elif fault.kind == CORRUPT_CACHE:
                flip_cache_bytes(cache, max_files=fault.max_files)
        return result


def corrupt_characterization(result: Any) -> Any:
    """A structurally valid but numerically wrong copy of *result*.

    Round-trips through the lossless serializer and flips the sign of
    the headline Table-I instruction count — the smallest corruption a
    differential comparison is guaranteed to catch.
    """
    from repro.core.serialize import (
        characterization_from_dict,
        characterization_to_dict,
    )

    payload = characterization_to_dict(result)
    payload["table1"]["total_warp_insts"] = -payload["table1"][
        "total_warp_insts"
    ]
    return characterization_from_dict(payload)


def flip_cache_bytes(cache: Optional[Any], max_files: int = 1) -> int:
    """Flip one byte in up to *max_files* persistent cache entries.

    Deterministic: entries are taken in sorted path order and the
    middle byte of each file is XOR-flipped (which reliably breaks the
    JSON).  Returns the number of files corrupted; a cache without a
    persistent tier is a no-op.
    """
    root = getattr(cache, "version_dir", None)
    if root is None or not root.is_dir():
        return 0
    flipped = 0
    for path in sorted(root.glob("*/*.json"))[:max_files]:
        data = bytearray(path.read_bytes())
        if not data:
            continue
        mid = len(data) // 2
        data[mid] ^= 0xFF
        path.write_bytes(bytes(data))
        flipped += 1
    return flipped
