"""Deterministic test harnesses for the reproduction pipeline."""

from repro.testing.faults import (
    CORRUPT_CACHE,
    CORRUPT_RESULT,
    CRASH,
    CRASH_PERMANENT,
    DIE,
    HANG,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedPermanentFault,
    InjectedTransientFault,
)

__all__ = [
    "CORRUPT_CACHE",
    "CORRUPT_RESULT",
    "CRASH",
    "CRASH_PERMANENT",
    "DIE",
    "HANG",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InjectedPermanentFault",
    "InjectedTransientFault",
]
