"""Integration test: the paper's Observations 1-12 on a full run.

This is the reproduction's headline check — the qualitative claims of
Section V evaluated end-to-end on both suites.  Observation 9 is a
known partial match (see EXPERIMENTS.md): the Cactus side reproduces
the paper's numbers, but our four-archetype PRT models correlate more
broadly than the 32 real binaries did.
"""

import pytest

from repro.analysis.correlation import correlation_matrix
from repro.core import OBSERVATION_SCALE, check_observations, run_suite


@pytest.fixture(scope="module")
def suite_runs():
    cactus = run_suite(["Cactus"], preset=OBSERVATION_SCALE)
    prt = run_suite(["Parboil", "Rodinia", "Tango"], preset=OBSERVATION_SCALE)
    return cactus, prt


@pytest.fixture(scope="module")
def report(suite_runs):
    return check_observations(*suite_runs)


class TestObservations:
    def test_at_least_eleven_observations_hold(self, report):
        assert report.passed >= 11, report.render()

    @pytest.mark.parametrize("number", [1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12])
    def test_observation_holds(self, report, number):
        observation = next(
            o for o in report.observations if o.number == number
        )
        assert observation.passed, observation.evidence

    def test_observation_9_cactus_side_matches_paper(self, suite_runs):
        """The paper: GIPS correlates (|PCC|>=0.2) with ~7 metrics for
        Cactus.  Our Cactus population reproduces that breadth."""
        cactus, _ = suite_runs
        matrix = correlation_matrix(cactus.profiles("Cactus"))
        assert len(matrix.correlated_columns("gips")) >= 6

    def test_report_renders(self, report):
        text = report.render()
        assert "Observations:" in text
        assert "#12" in text
