"""Integration tests: full pipeline consistency across subsystems."""

import pytest

from repro.analysis.famd import famd
from repro.core import LAPTOP_SCALE, characterize, run_suite
from repro.gpu import RTX_3080
from repro.profiler import Profiler, export_trace, load_trace
from repro.workloads import cactus_workloads, get_workload


class TestCactusEndToEnd:
    @pytest.fixture(scope="class")
    def cactus(self):
        return run_suite(["Cactus"], preset=LAPTOP_SCALE)

    def test_all_ten_characterized(self, cactus):
        assert len(cactus) == 10

    def test_every_profile_consistent(self, cactus):
        for characterization in cactus.suite("Cactus"):
            profile = characterization.profile
            # Kernel totals add up to the application totals.
            assert sum(
                k.total_time_s for k in profile.kernels
            ) == pytest.approx(profile.total_time_s)
            assert sum(
                k.total_warp_insts for k in profile.kernels
            ) == pytest.approx(profile.total_warp_insts)
            # Roofline bounds hold for the aggregate point too.
            point = characterization.aggregate_point
            roof = min(
                RTX_3080.peak_gips,
                point.intensity * RTX_3080.peak_gtxn_per_s,
            )
            assert point.gips <= roof * (1 + 1e-6)

    def test_dominant_kernels_cover_70_percent(self, cactus):
        for characterization in cactus.suite("Cactus"):
            profile = characterization.profile
            covered = sum(
                k.total_time_s for k in profile.dominant_kernels
            )
            assert covered >= 0.70 * profile.total_time_s - 1e-12

    def test_famd_over_real_kernels_is_well_formed(self, cactus):
        gips = []
        intensity = []
        sides = []
        for characterization in cactus.suite("Cactus"):
            for kernel in characterization.profile.kernels:
                gips.append(kernel.gips)
                intensity.append(kernel.instruction_intensity)
                sides.append(
                    "compute"
                    if kernel.instruction_intensity > RTX_3080.roofline_elbow
                    else "memory"
                )
        result = famd({"gips": gips, "ii": intensity}, {"side": sides})
        assert result.coordinates.shape[0] == len(gips)
        assert result.explained_variance_ratio.sum() == pytest.approx(1.0)


class TestTraceRoundTripAcrossWorkloads:
    @pytest.mark.parametrize("abbr", ["GMS", "GRU", "SPT", "SGEMM"])
    def test_trace_replay_preserves_profile(self, tmp_path, abbr):
        workload = get_workload(abbr, scale=0.02)
        stream = workload.launch_stream()
        path = tmp_path / f"{abbr}.jsonl"
        export_trace(stream, path)
        replayed = load_trace(path)

        profiler = Profiler()
        direct = profiler.profile_launches(stream, workload=abbr)
        replay = profiler.profile_launches(replayed, workload=abbr)
        assert direct.num_kernels == replay.num_kernels
        assert direct.total_time_s == pytest.approx(replay.total_time_s)
        assert direct.total_warp_insts == pytest.approx(
            replay.total_warp_insts
        )


class TestDeterminism:
    def test_full_characterization_deterministic(self):
        a = characterize(get_workload("LMC", scale=0.05, seed=3))
        b = characterize(get_workload("LMC", scale=0.05, seed=3))
        assert a.profile.total_time_s == pytest.approx(b.profile.total_time_s)
        assert a.table1.total_warp_insts == pytest.approx(
            b.table1.total_warp_insts
        )

    def test_seed_changes_data_not_structure(self):
        a = characterize(get_workload("LMC", scale=0.05, seed=1))
        b = characterize(get_workload("LMC", scale=0.05, seed=2))
        assert {k.name for k in a.profile.kernels} == {
            k.name for k in b.profile.kernels
        }
        assert a.profile.total_warp_insts != b.profile.total_warp_insts


class TestWorkloadInventory:
    def test_cactus_factory_scales(self):
        for workload in cactus_workloads(scale=0.01):
            assert workload.scale == 0.01
            assert workload.suite == "Cactus"
