"""Tests for the subsetting/redundancy analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.subsetting import (
    coverage,
    redundancy_report,
    representatives_for_coverage,
    select_representatives,
)


def two_blobs(n_per_blob=10, separation=10.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(0.0, 0.5, size=(n_per_blob, 2))
    b = rng.normal(separation, 0.5, size=(n_per_blob, 2))
    points = np.vstack([a, b])
    labels = [f"a{i}" for i in range(n_per_blob)] + [
        f"b{i}" for i in range(n_per_blob)
    ]
    return points, labels


class TestCoverage:
    def test_full_subset_is_perfect(self):
        points, _ = two_blobs()
        assert coverage(points, list(range(len(points)))) == pytest.approx(1.0)

    def test_single_point_covers_little_of_two_blobs(self):
        points, _ = two_blobs()
        assert coverage(points, [0]) < 0.6

    def test_one_per_blob_covers_most(self):
        points, _ = two_blobs()
        assert coverage(points, [0, 10]) > 0.9

    def test_validation(self):
        points, _ = two_blobs()
        with pytest.raises(ValueError):
            coverage(points, [])
        with pytest.raises(ValueError):
            coverage(np.empty((0, 2)), [0])


class TestSelectRepresentatives:
    def test_picks_one_from_each_blob(self):
        points, labels = two_blobs()
        result = select_representatives(points, labels, k=2)
        prefixes = {labels[i][0] for i in result.representative_indices}
        assert prefixes == {"a", "b"}
        assert result.coverage > 0.9

    def test_assignment_partitions_population(self):
        points, labels = two_blobs()
        result = select_representatives(points, labels, k=2)
        assert len(result.assignment) == len(points)
        assert set(result.assignment) == {0, 1}

    def test_more_representatives_never_hurt(self):
        points, labels = two_blobs()
        cov = [
            select_representatives(points, labels, k=k).coverage
            for k in (1, 2, 4, 8)
        ]
        assert all(cov[i] <= cov[i + 1] + 1e-9 for i in range(len(cov) - 1))

    def test_k_validation(self):
        points, labels = two_blobs()
        with pytest.raises(ValueError):
            select_representatives(points, labels, k=0)
        with pytest.raises(ValueError):
            select_representatives(points, labels, k=len(points) + 1)

    def test_deterministic(self):
        points, labels = two_blobs()
        a = select_representatives(points, labels, k=3)
        b = select_representatives(points, labels, k=3)
        assert a.representative_indices == b.representative_indices


class TestCoverageTarget:
    def test_reaches_target(self):
        points, labels = two_blobs()
        result = representatives_for_coverage(points, labels, 0.95)
        assert result.coverage >= 0.95

    def test_every_mode_needs_a_representative(self):
        """The Observation-12 story: a population spanning k
        well-separated behaviour modes needs at least k representatives
        for high coverage, and the selection finds one per mode."""
        rng = np.random.default_rng(1)
        centres = (-8.0, -4.0, 0.0, 4.0, 8.0, 12.0)
        wide = np.vstack(
            [rng.normal(c, 0.2, size=(4, 3)) for c in centres]
        )
        labels = [f"m{m}_{i}" for m in range(len(centres)) for i in range(4)]
        result = representatives_for_coverage(wide, labels, 0.97)
        assert len(result.representative_indices) >= len(centres)
        modes_hit = {
            labels[i].split("_")[0] for i in result.representative_indices
        }
        assert len(modes_hit) == len(centres)

    def test_redundancy_report(self):
        points, labels = two_blobs()
        rows = redundancy_report({"suite": (points, labels)}, target=0.9)
        assert rows[0].kernels == 20
        assert 0.0 <= rows[0].redundancy < 1.0
        assert rows[0].coverage >= 0.9


@given(st.integers(4, 20), st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_coverage_monotone_property(n, seed):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, 2))
    labels = [str(i) for i in range(n)]
    previous = -1.0
    for k in range(1, n + 1, max(1, n // 4)):
        result = select_representatives(points, labels, k)
        assert result.coverage >= previous - 1e-9
        previous = result.coverage
