"""Cross-device sweep analysis: elbows, flips, dominant-kernel shifts."""

import pytest

from repro.analysis.sweep import (
    analyze_sweep,
    dominant_kernel_shifts,
    elbow_table,
    render_sweep_markdown,
)
from repro.core import run_sweep
from repro.gpu import DEVICE_ZOO, H100, RTX_3080, RTX_4090

ZOO = list(DEVICE_ZOO.values())
WLS = ["GST", "DCG", "SPT"]


@pytest.fixture(scope="module")
def analysis():
    report = run_sweep(ZOO, workloads=WLS)
    return analyze_sweep(report.results, report.devices)


class TestElbowTable:
    def test_sorted_by_elbow(self):
        rows = elbow_table(ZOO)
        assert [r.name for r in rows] == [
            r.name for r in sorted(rows, key=lambda r: r.elbow)
        ]
        assert len(rows) == len(ZOO)

    def test_rows_carry_the_device_geometry(self):
        (row,) = elbow_table([RTX_3080])
        assert row.elbow == pytest.approx(RTX_3080.roofline_elbow)
        assert row.peak_gips == pytest.approx(RTX_3080.peak_gips)

    def test_zoo_spans_a_wide_elbow_range(self):
        """The curated zoo must actually exercise the classification
        boundary: elbows from ~7 to ~41 insts/txn."""
        rows = elbow_table(ZOO)
        assert rows[0].elbow < 10 < 40 < rows[-1].elbow
        assert H100.roofline_elbow < RTX_3080.roofline_elbow
        assert RTX_4090.roofline_elbow > RTX_3080.roofline_elbow


class TestAnalyzeSweep:
    def test_classes_follow_each_devices_elbow(self, analysis):
        for row in analysis.classes:
            for name, cls in row.classes:
                assert cls in ("compute", "memory")
                assert row.class_on(name) == cls

    def test_baseline_defaults_to_rtx_3080(self, analysis):
        assert analysis.baseline == "RTX 3080"
        with pytest.raises(KeyError):
            analyze_sweep({}, ZOO, baseline="nonexistent")

    def test_flips_detected_across_the_zoo(self, analysis):
        """DCG and SPT sit near the elbow: the 4090's bandwidth-starved
        balance pushes them memory-side while H100 keeps them compute-
        side — the sweep must surface that."""
        flipped = set(analysis.flipped_workloads)
        assert {"DCG", "SPT"} <= flipped
        assert "GST" not in flipped  # deep memory-side everywhere

    def test_dominant_shifts_reference_swept_devices(self, analysis):
        names = {d.name for d in analysis.devices}
        for abbr, shifts in analysis.dominant_shifts.items():
            assert abbr in WLS
            for device_name, (added, removed) in shifts.items():
                assert device_name in names - {analysis.baseline}
                assert added or removed


class TestDominantShifts:
    def test_identical_sets_mean_no_shift(self, analysis):
        # Self-comparison via a single-device "sweep": trivially empty.
        report = run_sweep([RTX_3080], workloads=["GST"])
        per_device = report.results["GST"]
        assert dominant_kernel_shifts(per_device, "RTX 3080") == {}


class TestRender:
    def test_markdown_has_all_sections(self, analysis):
        text = render_sweep_markdown(analysis)
        assert "### Roofline elbows" in text
        assert "### Aggregate intensity class per device" in text
        assert "### Dominant-kernel shifts vs RTX 3080" in text
        for device in ZOO:
            assert device.name in text
        for abbr in WLS:
            assert abbr in text
