"""Property tests for the kernel-similarity index.

The index's contract has three legs, each driven by Hypothesis over
adversarial corpora (duplicates, ties, degenerate zero-variance
columns):

* a self-query always comes back at distance 0 with the exact flag set;
* the VP-tree and the brute-force reference return **identical**
  answers for every query and every k;
* answers are invariant to the order items were inserted in.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.similarity import (
    METRIC_FEATURES,
    STRUCTURAL_FEATURES,
    KernelIndex,
    kernel_features,
    metric_features,
)

DIM = 4
NAMES = tuple(f"f{i}" for i in range(DIM))

# Coordinates drawn from a small pool plus arbitrary floats: pool
# collisions manufacture duplicate vectors, distance ties, and
# zero-variance columns — exactly the cases the determinism contract
# has to survive.
coord = st.one_of(
    st.sampled_from([-1.0, 0.0, 0.5, 1.0, 2.0]),
    st.floats(
        min_value=-50.0,
        max_value=50.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)
vector = st.lists(coord, min_size=DIM, max_size=DIM).map(
    lambda values: np.array(values, dtype=np.float64)
)
corpus = st.lists(vector, min_size=1, max_size=24)


def _index(vectors, order=None, use_tree=True) -> KernelIndex:
    index = KernelIndex(feature_names=NAMES, use_tree=use_tree)
    rows = order if order is not None else range(len(vectors))
    for row in rows:
        index.add(f"k{row:03d}", vectors[row], payload=row)
    return index


def _answer(neighbors):
    return [(n.key, n.distance) for n in neighbors]


class TestSelfQuery:
    @given(corpus)
    @settings(max_examples=80, deadline=None)
    def test_self_query_is_distance_zero_and_exact(self, vectors):
        index = _index(vectors)
        for row, query in enumerate(vectors):
            found = index.knn(query, len(vectors))
            assert found[0].distance == 0.0
            mine = [n for n in found if n.key == f"k{row:03d}"]
            assert len(mine) == 1
            assert mine[0].distance == 0.0
            # Raw equality, not just standardized distance 0 — this is
            # the bit the zero-tolerance proxy relies on.
            assert mine[0].exact is True

    @given(corpus)
    @settings(max_examples=40, deadline=None)
    def test_exclude_drops_only_the_named_key(self, vectors):
        index = _index(vectors)
        for row, query in enumerate(vectors):
            key = f"k{row:03d}"
            found = index.knn(query, len(vectors), exclude=key)
            assert key not in [n.key for n in found]
            assert len(found) == len(vectors) - 1


class TestTreeEqualsBrute:
    @given(corpus, vector, st.integers(min_value=1, max_value=30))
    @settings(max_examples=120, deadline=None)
    def test_knn_identical_answers(self, vectors, query, k):
        tree = _index(vectors, use_tree=True)
        brute = _index(vectors, use_tree=False)
        assert _answer(tree.knn(query, k)) == _answer(brute.knn(query, k))

    @given(corpus, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_brute_knn_oracle_on_corpus_points(self, vectors, k):
        """The same index object must agree with its own oracle path."""
        index = _index(vectors)
        for query in vectors:
            assert _answer(index.knn(query, k)) == _answer(
                index.brute_knn(query, k)
            )


class TestInsertionOrderInvariance:
    @given(
        corpus.flatmap(
            lambda vectors: st.tuples(
                st.just(vectors),
                st.permutations(range(len(vectors))),
            )
        ),
        vector,
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_permuted_insertion_same_answers(self, vectors_order, query, k):
        vectors, order = vectors_order
        natural = _index(vectors)
        permuted = _index(vectors, order=order)
        assert _answer(natural.knn(query, k)) == _answer(
            permuted.knn(query, k)
        )


class TestIndexMechanics:
    def test_empty_index_answers(self):
        index = KernelIndex(feature_names=NAMES)
        assert index.nearest(np.zeros(DIM)) is None
        assert index.knn(np.zeros(DIM), 3) == []

    def test_add_validates_shape_and_finiteness(self):
        index = KernelIndex(feature_names=NAMES)
        with pytest.raises(ValueError, match="feature vector"):
            index.add("bad", np.zeros(DIM + 1))
        with pytest.raises(ValueError, match="non-finite"):
            index.add("nan", np.array([0.0, np.nan, 0.0, 0.0]))
        assert len(index) == 0

    def test_knn_rejects_nonpositive_k(self):
        index = _index([np.zeros(DIM)])
        with pytest.raises(ValueError, match="k must be"):
            index.knn(np.zeros(DIM), 0)

    def test_lazy_rebuild_only_after_mutation(self):
        index = _index([np.zeros(DIM), np.ones(DIM)])
        index.knn(np.zeros(DIM), 1)
        index.knn(np.ones(DIM), 1)
        assert index.builds == 1
        index.add("extra", np.full(DIM, 2.0))
        index.knn(np.zeros(DIM), 1)
        assert index.builds == 2

    def test_replacing_a_key_keeps_corpus_size(self):
        index = _index([np.zeros(DIM)])
        index.add("k000", np.ones(DIM), payload="new")
        assert len(index) == 1
        assert index.nearest(np.ones(DIM)).payload == "new"

    def test_distance_evals_counts_and_tree_is_sublinear(self):
        rng = np.random.default_rng(7)
        vectors = [
            rng.normal(loc=cluster, scale=0.05, size=DIM)
            for cluster in (-4.0, 0.0, 4.0)
            for _ in range(100)
        ]
        tree = _index(vectors, use_tree=True)
        brute = _index(vectors, use_tree=False)
        queries = vectors[::25]
        for query in queries:
            tree.knn(query, 3)
            brute.knn(query, 3)
        assert brute.distance_evals == len(queries) * len(vectors)
        assert tree.distance_evals < brute.distance_evals / 2

    def test_representative_subset_covers_corpus(self):
        rng = np.random.default_rng(3)
        vectors = [rng.normal(size=DIM) for _ in range(40)]
        index = _index(vectors)
        subset = index.representative_subset(5)
        assert len(subset.representative_labels) == 5
        assert set(subset.representative_labels) <= set(index.keys())
        assert 0.0 < subset.coverage <= 1.0
        target = index.representatives_for_target(subset.coverage)
        assert len(target.representative_labels) <= 5

    def test_representatives_need_nonempty_corpus(self):
        index = KernelIndex(feature_names=NAMES)
        with pytest.raises(ValueError, match="non-empty"):
            index.representative_subset(1)


class TestFeatureVectors:
    def test_structural_vector_matches_names(self):
        from repro.gpu.kernel import KernelCharacteristics, MemoryFootprint

        kernel = KernelCharacteristics(
            name="probe",
            grid_blocks=128,
            threads_per_block=256,
            warp_insts=1.5e6,
            memory=MemoryFootprint(bytes_read=3.25e5),
        )
        vec = kernel_features(kernel)
        assert vec.shape == (len(STRUCTURAL_FEATURES),)
        assert np.isfinite(vec).all()
        # Equal kernels give equal vectors (the proxy's exactness leg).
        assert np.array_equal(vec, kernel_features(kernel))

    def test_metric_vector_matches_names(self):
        from repro.gpu import RTX_3080, GPUSimulator
        from repro.gpu.kernel import KernelCharacteristics, MemoryFootprint

        kernel = KernelCharacteristics(
            name="probe",
            grid_blocks=64,
            threads_per_block=128,
            warp_insts=2e6,
            memory=MemoryFootprint(bytes_read=1e6),
        )
        metrics = GPUSimulator(RTX_3080).run_kernel(kernel)
        vec = metric_features(metrics)
        assert vec.shape == (len(METRIC_FEATURES),)
        assert np.isfinite(vec).all()
