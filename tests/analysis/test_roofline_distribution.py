"""Tests for the roofline and distribution analyses."""

import pytest

from repro.analysis.distribution import (
    cumulative_time_curve,
    dominance_histogram,
    table1_row,
    time_share_table,
)
from repro.analysis.roofline import (
    application_roofline,
    classify_intensity,
    classify_latency,
    kernel_roofline,
    render_roofline_ascii,
)
from repro.gpu import RTX_3080, KernelMetrics
from repro.profiler.records import ApplicationProfile, aggregate_launches


def profile_with(kernel_data, workload="app"):
    """kernel_data: list of (name, duration, insts, txns)."""
    kernels = [
        aggregate_launches(
            name,
            [KernelMetrics(name=name, duration_s=d, warp_insts=i,
                           dram_transactions=t)],
        )
        for name, d, i, t in kernel_data
    ]
    return ApplicationProfile(
        workload=workload, suite="s", domain="d", kernels=kernels
    )


class TestClassification:
    def test_elbow_split(self):
        elbow = RTX_3080.roofline_elbow
        assert classify_intensity(elbow * 1.01) == "compute"
        assert classify_intensity(elbow * 0.99) == "memory"

    def test_latency_threshold_is_one_percent_of_peak(self):
        threshold = 0.01 * RTX_3080.peak_gips
        assert classify_latency(threshold * 1.1) == "bandwidth"
        assert classify_latency(threshold * 0.9) == "latency"


class TestRooflinePoints:
    def test_kernel_points_carry_time_shares(self):
        profile = profile_with(
            [("a", 3.0, 3e9, 1e6), ("b", 1.0, 1e9, 1e8)]
        )
        points = kernel_roofline(profile)
        assert points[0].time_share == pytest.approx(0.75)
        assert sum(p.time_share for p in points) == pytest.approx(1.0)

    def test_aggregate_point_pools_counters(self):
        profile = profile_with(
            [("a", 1.0, 2e9, 1e6), ("b", 1.0, 2e9, 1e6)]
        )
        point = application_roofline(profile)
        assert point.gips == pytest.approx(2.0)
        assert point.intensity == pytest.approx(2000.0)

    def test_distance_to_roof_bounded(self):
        profile = profile_with([("a", 1.0, 1e9, 1e9)])
        point = application_roofline(profile)
        assert 0.0 < point.distance_to_roof() <= 1.0

    def test_dominant_subset(self):
        profile = profile_with(
            [("big", 9.0, 9e9, 1e6), ("small", 1.0, 1e9, 1e6)]
        )
        points = kernel_roofline(profile, profile.dominant_kernels)
        assert [p.label for p in points] == ["big"]

    def test_ascii_render_contains_markers(self):
        profile = profile_with(
            [("c", 1.0, 4e11, 1e6), ("m", 1.0, 1e9, 1e9)]
        )
        art = render_roofline_ascii(kernel_roofline(profile))
        assert "C" in art and "M" in art and "elbow" in art


class TestDistribution:
    def test_cumulative_curve_shape(self):
        profile = profile_with(
            [("a", 0.5, 1e9, 1e6), ("b", 0.3, 1e9, 1e6), ("c", 0.2, 1e9, 1e6)]
        )
        curve = cumulative_time_curve(profile)
        assert curve[0] == (1, pytest.approx(0.5))
        assert curve[-1] == (3, pytest.approx(1.0))

    def test_dominance_histogram(self):
        profiles = [
            profile_with([("a", 0.9, 1e9, 1e6), ("b", 0.1, 1e9, 1e6)], "w1"),
            profile_with([("a", 0.5, 1e9, 1e6), ("b", 0.5, 1e9, 1e6)], "w2"),
        ]
        assert dominance_histogram(profiles) == {1: 1, 2: 1}

    def test_time_share_table_sorted(self):
        profile = profile_with(
            [("a", 0.2, 1e9, 1e6), ("b", 0.8, 1e9, 1e6)]
        )
        table = time_share_table(profile)
        assert table[0][0] == "b"
        assert table[0][1] == pytest.approx(0.8)

    def test_table1_row_fields(self):
        profile = profile_with(
            [("a", 0.7, 7e9, 1e6), ("b", 0.3, 3e9, 1e6)]
        )
        row = table1_row(profile, abbr="X")
        assert row.abbr == "X"
        assert row.kernels_100 == 2
        assert row.kernels_70 == 1
        assert row.total_warp_insts == pytest.approx(1e10)
