"""Tests for the PCA baseline and clustering-stability measurement."""

import numpy as np
import pytest

from repro.analysis.pca import adjusted_rand_index, clustering_stability, pca


class TestPCA:
    def test_matches_variance_structure(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=80)
        data = {
            "a": base.tolist(),
            "b": (3 * base + 0.01 * rng.normal(size=80)).tolist(),
            "c": rng.normal(size=80).tolist(),
        }
        result = pca(data)
        # Two correlated variables + one independent -> first component
        # carries about 2/3 of the variance.
        assert 0.55 < result.explained_variance_ratio[0] < 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            pca({})
        with pytest.raises(ValueError, match="same sample count"):
            pca({"a": [1, 2], "b": [1]})


class TestAdjustedRandIndex:
    def test_identical_clusterings(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_independent_clusterings_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=300).tolist()
        b = rng.integers(0, 3, size=300).tolist()
        assert abs(adjusted_rand_index(a, b)) < 0.1

    def test_partial_agreement_between(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        value = adjusted_rand_index(a, b)
        assert 0.0 < value < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0], [0])
        with pytest.raises(ValueError):
            adjusted_rand_index([0, 1], [0])


class TestClusteringStability:
    def test_separated_blobs_are_stable(self):
        rng = np.random.default_rng(2)
        points = np.vstack(
            [rng.normal(c, 0.2, size=(8, 2)) for c in (0.0, 10.0, 20.0)]
        )
        assert clustering_stability(points, 3) > 0.95

    def test_structureless_cloud_is_unstable(self):
        rng = np.random.default_rng(3)
        cloud = rng.normal(size=(24, 2))
        blobs = np.vstack(
            [rng.normal(c, 0.2, size=(8, 2)) for c in (0.0, 10.0, 20.0)]
        )
        assert clustering_stability(cloud, 3) < clustering_stability(blobs, 3)

    def test_validation(self):
        with pytest.raises(ValueError, match="not enough samples"):
            clustering_stability(np.zeros((4, 2)), 3)

    def test_famd_labels_stabilize_clustering(self):
        """The paper's Section V.D claim, quantified: adding the
        qualitative roofline labels through FAMD yields clusterings at
        least as stable as PCA on the noisy quantitative data alone."""
        from repro.analysis.famd import famd

        rng = np.random.default_rng(4)
        n_per = 10
        # Two behaviour classes whose quantitative signal is noisy...
        quant = {
            "x": np.concatenate(
                [rng.normal(0.0, 1.0, n_per), rng.normal(1.0, 1.0, n_per)]
            ).tolist(),
            "y": rng.normal(size=2 * n_per).tolist(),
        }
        # ...but whose qualitative label is clean.
        qual = {"side": ["memory"] * n_per + ["compute"] * n_per}

        k = 2
        pca_points = pca(quant).coordinates
        famd_points = famd(quant, qual).coordinates
        pca_stability = clustering_stability(pca_points, k)
        famd_stability = clustering_stability(famd_points, k)
        assert famd_stability >= pca_stability
