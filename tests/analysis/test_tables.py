"""Tests for the text-table renderers."""

import pytest

from repro.analysis.distribution import Table1Row, table1_row
from repro.analysis.tables import (
    format_table,
    render_dominance_histogram,
    render_stacked_time,
    render_table1,
)
from repro.core import characterize
from repro.workloads import get_workload


class TestFormatTable:
    def test_alignment_and_padding(self):
        table = format_table(
            ["name", "value"],
            [("a", 1), ("long-name", 22)],
            align_right=[False, True],
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert lines[-1].endswith("22")
        # Right-aligned column: both rows end at the same offset.
        assert len(lines[2]) == len(lines[3])

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            format_table(["a", "b"], [("x",)])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table


class TestPaperRenderers:
    def test_render_table1(self):
        rows = [
            Table1Row(
                workload="Gromacs", abbr="GMS", domain="Molecular",
                total_warp_insts=3.06e11,
                weighted_avg_insts_per_kernel=4.3e7,
                kernels_100=9, kernels_70=3,
            )
        ]
        text = render_table1(rows)
        assert "GMS" in text and "3.060e+11" in text

    def test_stacked_time_bar(self):
        profile = characterize(get_workload("GMS", scale=0.05)).profile
        art = render_stacked_time(profile)
        assert art.startswith("[")
        assert "nbnxn_kernel_ElecEw_VdwLJ_F" in art

    def test_stacked_time_folds_tail(self):
        profile = characterize(get_workload("DCG", scale=0.25)).profile
        art = render_stacked_time(profile, top=5)
        assert "other" in art

    def test_dominance_histogram_prose(self):
        text = render_dominance_histogram({1: 23, 2: 7, 3: 2}, total=32)
        assert "23/32 workloads" in text
        assert "1 kernel" in text and "2 kernels" in text
