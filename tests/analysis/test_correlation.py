"""Tests for the Pearson-correlation analysis (Fig. 8 machinery)."""

import pytest

from repro.analysis.correlation import (
    CorrelationBand,
    correlation_matrix,
    pearson,
)
from repro.gpu import KernelMetrics
from repro.profiler.records import ApplicationProfile, aggregate_launches


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_is_near_zero(self):
        assert abs(pearson([1, 2, 3, 4], [1, -1, 1, -1])) < 0.5

    def test_constant_sample_gives_zero(self):
        assert pearson([1.0, 1.0, 1.0], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            pearson([1, 2], [1])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="two samples"):
            pearson([1], [1])


class TestBanding:
    def test_fig8_colour_bands(self):
        assert CorrelationBand.from_value(0.75) is CorrelationBand.STRONG
        assert CorrelationBand.from_value(-0.6) is CorrelationBand.STRONG
        assert CorrelationBand.from_value(0.3) is CorrelationBand.WEAK
        assert CorrelationBand.from_value(0.1) is CorrelationBand.NONE
        assert CorrelationBand.from_value(0.5) is CorrelationBand.STRONG
        assert CorrelationBand.from_value(0.2) is CorrelationBand.WEAK


def _profile(rows):
    """rows: list of dicts of metric overrides per kernel."""
    kernels = []
    for index, overrides in enumerate(rows):
        metrics = KernelMetrics(
            name=f"k{index}",
            duration_s=overrides.pop("duration_s", 1.0),
            warp_insts=overrides.pop("warp_insts", 1e9),
            dram_transactions=overrides.pop("dram_transactions", 1e6),
            **overrides,
        )
        kernels.append(aggregate_launches(metrics.name, [metrics]))
    return ApplicationProfile(
        workload="w", suite="s", domain="d", kernels=kernels
    )


class TestCorrelationMatrix:
    def test_detects_engineered_correlation(self):
        # occupancy tracks duration-derived gips exactly.
        profile = _profile(
            [
                {"warp_insts": 1e9, "warp_occupancy": 10.0},
                {"warp_insts": 2e9, "warp_occupancy": 20.0},
                {"warp_insts": 3e9, "warp_occupancy": 30.0},
                {"warp_insts": 4e9, "warp_occupancy": 40.0},
            ]
        )
        matrix = correlation_matrix([profile], rows=("gips",),
                                    columns=("warp_occupancy",))
        assert matrix.value("gips", "warp_occupancy") == pytest.approx(1.0)
        assert matrix.band("gips", "warp_occupancy") is CorrelationBand.STRONG

    def test_correlated_columns_filters_none(self):
        profile = _profile(
            [
                {"warp_insts": 1e9, "warp_occupancy": 10.0, "sync_stall": 0.9},
                {"warp_insts": 2e9, "warp_occupancy": 20.0, "sync_stall": 0.1},
                {"warp_insts": 3e9, "warp_occupancy": 30.0, "sync_stall": 0.8},
                {"warp_insts": 4e9, "warp_occupancy": 40.0, "sync_stall": 0.2},
            ]
        )
        matrix = correlation_matrix(
            [profile], rows=("gips",),
            columns=("warp_occupancy", "sync_stall"),
        )
        assert "warp_occupancy" in matrix.correlated_columns("gips")

    def test_requires_two_kernels(self):
        with pytest.raises(ValueError, match="two kernels"):
            correlation_matrix([_profile([{}])])

    def test_render_contains_legend(self):
        profile = _profile([{"warp_insts": 1e9}, {"warp_insts": 2e9}])
        art = correlation_matrix([profile]).render()
        assert "strong" in art and "weak" in art


from hypothesis import given, settings
from hypothesis import strategies as st


_values = st.floats(-1e6, 1e6, allow_nan=False).filter(
    lambda v: v == 0.0 or abs(v) > 1e-3  # keep away from denormals
)


@given(
    st.lists(st.tuples(_values, _values), min_size=2, max_size=64)
)
@settings(max_examples=100, deadline=None)
def test_pearson_properties(pairs):
    """|PCC| <= 1, symmetric, and invariant to affine rescaling."""
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    value = pearson(xs, ys)
    assert -1.0 <= value <= 1.0
    assert pearson(ys, xs) == pytest.approx(value, abs=1e-9)
    if abs(value) > 1e-6:  # affine invariance, away from degeneracy
        rescaled = pearson([2.0 * x + 3.0 for x in xs], ys)
        assert rescaled == pytest.approx(value, abs=1e-3)
