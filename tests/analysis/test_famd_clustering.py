"""Tests for FAMD and Ward clustering (Fig. 9 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import (
    cluster_members,
    cut_tree,
    render_dendrogram,
    ward_clustering,
)
from repro.analysis.famd import famd


class TestFAMD:
    def test_variance_ratios_sum_to_one(self):
        rng = np.random.default_rng(0)
        data = {f"v{i}": rng.normal(size=50).tolist() for i in range(5)}
        result = famd(data)
        assert result.explained_variance_ratio.sum() == pytest.approx(1.0)

    def test_variance_ordering_monotone(self):
        rng = np.random.default_rng(1)
        data = {f"v{i}": rng.normal(size=40).tolist() for i in range(6)}
        ratios = famd(data).explained_variance_ratio
        assert all(ratios[i] >= ratios[i + 1] - 1e-12
                   for i in range(len(ratios) - 1))

    def test_correlated_variables_compress_into_one_factor(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=60)
        data = {
            "a": base.tolist(),
            "b": (2 * base + 0.01 * rng.normal(size=60)).tolist(),
            "c": (-base + 0.01 * rng.normal(size=60)).tolist(),
        }
        result = famd(data)
        assert result.explained_variance_ratio[0] > 0.95

    def test_qualitative_variables_separate_groups(self):
        labels = ["x"] * 20 + ["y"] * 20
        values = [0.0] * 20 + [0.1] * 20
        result = famd({"v": values}, {"cls": labels}, n_components=2)
        xs = result.coordinates[:20, 0]
        ys = result.coordinates[20:, 0]
        # The first factor separates the two categories.
        assert (xs.mean() < ys.mean()) or (xs.mean() > ys.mean())
        assert abs(xs.mean() - ys.mean()) > 1.0

    def test_components_for_variance(self):
        rng = np.random.default_rng(3)
        data = {f"v{i}": rng.normal(size=30).tolist() for i in range(4)}
        result = famd(data)
        k = result.components_for_variance(0.9)
        assert 1 <= k <= result.n_components
        assert result.explained_variance_ratio[:k].sum() >= 0.9 - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            famd({})
        with pytest.raises(ValueError, match="same sample count"):
            famd({"a": [1, 2]}, {"q": ["x"]})
        with pytest.raises(ValueError, match="two samples"):
            famd({"a": [1.0]})


class TestWardClustering:
    def test_two_obvious_groups(self):
        points = np.array(
            [[0.0, 0.0], [0.1, 0.0], [0.0, 0.1], [5.0, 5.0], [5.1, 5.0]]
        )
        result = ward_clustering(points, ["a1", "a2", "a3", "b1", "b2"])
        assignment = cut_tree(result, 2)
        assert assignment[0] == assignment[1] == assignment[2]
        assert assignment[3] == assignment[4]
        assert assignment[0] != assignment[3]

    def test_merge_heights_monotone(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(12, 3))
        result = ward_clustering(points, [f"p{i}" for i in range(12)])
        heights = result.heights()
        assert all(heights[i] <= heights[i + 1] + 1e-9
                   for i in range(len(heights) - 1))

    def test_cut_tree_cluster_counts(self):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(10, 2))
        result = ward_clustering(points, [f"p{i}" for i in range(10)])
        for k in (1, 3, 6, 10):
            assignment = cut_tree(result, k)
            assert len(set(assignment)) == k

    def test_cluster_members_partition(self):
        points = np.array([[0.0], [0.1], [9.0], [9.1]])
        result = ward_clustering(points, ["a", "b", "c", "d"])
        groups = cluster_members(result, 2)
        flat = sorted(x for g in groups for x in g)
        assert flat == ["a", "b", "c", "d"]

    def test_dendrogram_renders_all_clusters(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(8, 2))
        result = ward_clustering(points, [f"k{i}" for i in range(8)])
        art = render_dendrogram(result, n_clusters=3)
        assert "cluster 1" in art and "cluster 3" in art

    def test_validation(self):
        with pytest.raises(ValueError, match="two points"):
            ward_clustering(np.array([[1.0]]), ["a"])
        points = np.array([[0.0], [1.0]])
        result = ward_clustering(points, ["a", "b"])
        with pytest.raises(ValueError, match="n_clusters"):
            cut_tree(result, 5)


@given(
    st.integers(3, 12),
    st.integers(1, 4),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_ward_properties(n_points, n_features, seed):
    """Cut at k always yields k clusters; heights stay monotone."""
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n_points, n_features))
    result = ward_clustering(points, [f"p{i}" for i in range(n_points)])
    heights = result.heights()
    assert all(
        heights[i] <= heights[i + 1] + 1e-6 for i in range(len(heights) - 1)
    )
    for k in range(1, n_points + 1):
        assert len(set(cut_tree(result, k))) == k


class TestSurvey:
    def test_rodinia_most_popular(self):
        from repro.analysis.survey import popularity_ranking

        ranking = popularity_ranking()
        assert ranking[0][0] == "Rodinia"
        assert ranking[1][0] == "Parboil"

    def test_unknown_suite_rejected(self):
        from repro.analysis.survey import total_papers

        with pytest.raises(KeyError):
            total_papers("SPEC")

    def test_table_renders_years(self):
        from repro.analysis.survey import survey_table

        table = survey_table()
        assert "Rodinia" in table and "total" in table
