"""Unit tests for the repro.obs primitives: spans, metrics, sinks."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    HistogramStat,
    JsonlSink,
    MetricsRegistry,
    NullTracer,
    RunProfile,
    Tracer,
    read_events,
    write_chrome_trace,
)


class _ListSink:
    def __init__(self):
        self.records = []
        self.closed = False

    def emit(self, record):
        self.records.append(record)

    def close(self):
        self.closed = True


# -- spans -------------------------------------------------------------
class TestSpans:
    def test_nesting_records_parentage(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = sink.records  # inner closes first
        assert inner_rec["name"] == "inner"
        assert inner_rec["parent_id"] == outer.span_id
        assert outer_rec["parent_id"] is None
        assert inner_rec["trace_id"] == outer_rec["trace_id"]

    def test_sibling_spans_share_parent(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with tracer.span("parent") as parent:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, _ = sink.records
        assert a["parent_id"] == parent.span_id
        assert b["parent_id"] == parent.span_id
        assert a["span_id"] != b["span_id"]

    def test_remote_parent_roots_top_level_spans(self):
        sink = _ListSink()
        tracer = Tracer(
            trace_id="feedfeedfeedfeed", sink=sink, parent_id="cafecafecafecafe"
        )
        with tracer.span("attempt"):
            pass
        (record,) = sink.records
        assert record["parent_id"] == "cafecafecafecafe"
        assert record["trace_id"] == "feedfeedfeedfeed"

    def test_exception_marks_span_error_and_reraises(self):
        sink = _ListSink()
        tracer = Tracer(sink=sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (record,) = sink.records
        assert record["status"] == "error"
        assert record["attrs"]["error"] == "ValueError"
        assert tracer.current_span_id() is None  # stack unwound

    def test_span_durations_feed_metrics(self):
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics)
        with tracer.span("simulate", workload="GMS"):
            pass
        assert metrics.histograms["span.simulate_s"].count == 1
        assert metrics.histograms["workload.GMS.simulate_s"].count == 1

    def test_event_without_sink_is_noop(self):
        tracer = Tracer(metrics=MetricsRegistry())
        tracer.event("retry", workload="GMS")  # must not raise

    def test_null_tracer_is_inert(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", workload="GMS") as handle:
            handle.set_attr("k", "v")
        NULL_TRACER.event("x")
        NULL_TRACER.incr("c")
        NULL_TRACER.observe("h", 1.0)
        assert NULL_TRACER.current_span_id() is None

    def test_null_tracer_span_is_shared_singleton(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        assert a is b  # no per-call allocation


# -- metrics -----------------------------------------------------------
class TestMetrics:
    def test_histogram_observe_and_merge(self):
        a = HistogramStat()
        for value in (1.0, 3.0):
            a.observe(value)
        b = HistogramStat()
        b.observe(2.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == 6.0
        assert a.min == 1.0
        assert a.max == 3.0
        assert a.mean == 2.0

    def test_empty_histogram_merge_and_dict(self):
        stat = HistogramStat()
        stat.merge(HistogramStat())
        assert stat.count == 0
        assert stat.as_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
        }
        assert HistogramStat.from_dict(stat.as_dict()).count == 0

    def test_registry_merge_dict_roundtrip(self):
        worker = MetricsRegistry()
        worker.incr("cache.misses", 4.0)
        worker.set_gauge("g", 7.0)
        worker.observe("queue.wait_s", 0.25)
        parent = MetricsRegistry()
        parent.incr("cache.misses", 1.0)
        parent.merge_dict(worker.snapshot())
        assert parent.counters["cache.misses"] == 5.0
        assert parent.gauges["g"] == 7.0
        assert parent.histograms["queue.wait_s"].count == 1

    def test_run_profile_dict_roundtrip_equal(self):
        registry = MetricsRegistry()
        registry.incr("engine.retries", 2.0)
        registry.incr("cache.memory_hits", 3.0)
        registry.incr("cache.misses", 1.0)
        registry.observe("span.simulate_s", 0.5)
        registry.observe("workload.GMS.simulate_s", 0.5)
        profile = RunProfile.from_registry(registry)
        payload = json.loads(json.dumps(profile.as_dict()))
        assert RunProfile.from_dict(payload) == profile

    def test_run_profile_derived_views(self):
        registry = MetricsRegistry()
        registry.incr("cache.memory_hits", 3.0)
        registry.incr("cache.disk_hits", 1.0)
        registry.incr("cache.misses", 4.0)
        registry.incr("engine.retries", 2.0)
        registry.observe("span.simulate_s", 0.5)
        registry.observe("span.simulate_s", 1.5)
        registry.observe("workload.GMS.stream-gen_s", 0.25)
        profile = RunProfile.from_registry(registry)
        assert profile.cache_lookups == 8.0
        assert profile.cache_hit_rate == pytest.approx(0.5)
        assert profile.retries == 2
        assert profile.phase_seconds("simulate") == pytest.approx(2.0)
        assert profile.workload_phases() == {
            "GMS": {"stream-gen": pytest.approx(0.25)}
        }


# -- sinks -------------------------------------------------------------
class TestSinks:
    def test_jsonl_sink_appends_and_is_lazy(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # lazy open: no record, no file
        sink.emit({"a": 1})
        sink.emit({"b": 2})
        sink.close()
        with JsonlSink(path) as second:
            second.emit({"c": 3})
        records = read_events(path, strict=True)
        assert records == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_read_events_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a":1}\n{"b":2}\n{"torn": tru')
        assert read_events(path) == [{"a": 1}, {"b": 2}]
        with pytest.raises(ValueError):
            read_events(path, strict=True)

    def test_chrome_trace_is_valid_and_complete(self, tmp_path):
        sink = _ListSink()
        tracer = Tracer(sink=sink, metrics=MetricsRegistry())
        with tracer.span("suite-run", category="suite"):
            with tracer.span("simulate", category="phase", workload="GMS"):
                pass
            tracer.event("retry", category="resilience", workload="GMS")
        out = tmp_path / "trace.json"
        count = write_chrome_trace(sink.records, out)
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert count == len(events)
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in spans} == {"suite-run", "simulate"}
        assert all(e["dur"] >= 0.0 for e in spans)
        assert [e["name"] for e in instants] == ["retry"]
        assert meta and meta[0]["name"] == "process_name"
        # Timestamps are microseconds and globally sorted.
        stamps = [e["ts"] for e in events if "ts" in e]
        assert stamps == sorted(stamps)
