"""Suite-run report serialization and the rendered "Run profile" section.

Covers the round-trip contract — ``suite_run_report_from_dict(
suite_run_report_to_dict(r)) == r`` through actual JSON, including the
failure/resilience record — and the report section that renders the run
profile for clean and fault-injected runs alike.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    LAPTOP_SCALE,
    RetryPolicy,
    run_suite,
    suite_run_report_from_dict,
    suite_run_report_to_dict,
)
from repro.core.report import generate_report
from repro.testing.faults import FaultPlan

WORKLOADS = ["GMS", "GST", "GRU"]
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.001, backoff_max_s=0.01
)


def run_slice(**kwargs):
    return run_suite(
        ["Cactus"], preset=LAPTOP_SCALE, workloads=WORKLOADS, **kwargs
    )


@pytest.fixture(scope="module")
def clean_report():
    return run_slice()


@pytest.fixture(scope="module")
def faulted_report():
    """A run that retried once (GMS) and lost a workload (GST)."""
    plan = FaultPlan(
        faults=(
            FaultPlan.single("GMS", "crash", attempts=(1,)).faults
            + FaultPlan.single("GST", "crash-permanent").faults
        )
    )
    return run_slice(
        fault_plan=plan, retry_policy=FAST_RETRY, keep_going=True
    )


class TestRoundTrip:
    def test_clean_report_roundtrips_equal(self, clean_report):
        payload = json.loads(json.dumps(suite_run_report_to_dict(clean_report)))
        assert suite_run_report_from_dict(payload) == clean_report

    def test_faulted_report_roundtrips_equal(self, faulted_report):
        assert faulted_report.failed_workloads == ["GST"]
        payload = json.loads(
            json.dumps(suite_run_report_to_dict(faulted_report))
        )
        back = suite_run_report_from_dict(payload)
        assert back == faulted_report

    def test_failure_record_survives_serialization(self, faulted_report):
        payload = suite_run_report_to_dict(faulted_report)
        # The serialized form itself carries the post-mortem — this is
        # the bug the round-trip exists to prevent: a report that
        # degraded must not serialize as if the run were clean.
        assert payload["failures"], "failures dropped from serialized report"
        failure = payload["failures"][0]
        assert failure["abbr"] == "GST"
        assert failure["error_type"] == "InjectedPermanentFault"
        assert failure["traceback"]
        assert "fallback_reason" in payload
        assert payload["attempts"]["GMS"] == 2  # the retried workload

    def test_run_profile_survives_serialization(self, faulted_report):
        payload = json.loads(
            json.dumps(suite_run_report_to_dict(faulted_report))
        )
        back = suite_run_report_from_dict(payload)
        assert back.run_profile == faulted_report.run_profile
        assert back.run_profile.retries == 1

    def test_fallback_reason_roundtrips(self, clean_report):
        payload = suite_run_report_to_dict(clean_report)
        payload["fallback_reason"] = "process pool unavailable: test"
        back = suite_run_report_from_dict(json.loads(json.dumps(payload)))
        assert back.fallback_reason == "process pool unavailable: test"


class TestRunProfileSection:
    def test_clean_run_renders_profile(self, clean_report):
        text = generate_report(clean_report)
        assert "## Run profile" in text
        section = text[text.index("## Run profile"):]
        for phase in ("stream-gen", "simulate", "analyze"):
            assert f"| {phase} |" in section
        for abbr in WORKLOADS:
            assert f"| {abbr} |" in section
        assert "workloads completed: 3" in section
        assert "retries: 0" in section

    def test_faulted_run_renders_profile(self, faulted_report):
        text = generate_report(faulted_report)
        section = text[text.index("## Run profile"):]
        assert "workloads completed: 2" in section
        assert "failed: 1" in section
        assert "retries: 1" in section
        # The failed workload still shows the wall-clock it burned.
        assert "| GST |" in section

    def test_plain_suite_result_omits_section(self, clean_report):
        from repro.core.suite import SuiteResult

        plain = SuiteResult(
            device=clean_report.device,
            preset=clean_report.preset,
            results=dict(clean_report.results),
        )
        assert "## Run profile" not in generate_report(plain)
