"""Event-log integrity under a hard kill.

The JSONL sink's contract is that a run killed at any moment leaves a
valid parseable prefix: every line flushed before the kill is complete
JSON, and at most the final line is torn.  This test makes that real:
a child process runs a traced suite run whose last workload *hangs*
(via the fault-injection harness), the parent SIGTERMs it mid-run, and
the log left behind must parse strictly line by line.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[2] / "src"

#: Child body: trace a three-workload serial run whose final workload
#: (GRU, last in registration order) hangs forever, so SIGTERM always
#: lands while the run is alive and the log is mid-stream.
CHILD_SCRIPT = """
import sys
from repro.core import LAPTOP_SCALE, run_suite
from repro.testing.faults import FaultPlan

run_suite(
    ["Cactus"],
    preset=LAPTOP_SCALE,
    workloads=["GMS", "GST", "GRU"],
    trace_dir=sys.argv[1],
    fault_plan=FaultPlan.single("GRU", "hang", hang_s=600.0),
    keep_going=True,
)
"""

POLL_S = 0.05
DEADLINE_S = 240.0


def _wait_for_marker(path: Path, deadline: float) -> bool:
    """Wait until the log records GST's finished attempt span."""
    while time.monotonic() < deadline:
        if path.is_file():
            text = path.read_text(encoding="utf-8", errors="replace")
            if '"name":"attempt"' in text and '"workload":"GST"' in text:
                return True
        time.sleep(POLL_S)
    return False


@pytest.mark.slow
def test_sigterm_leaves_parseable_event_log(tmp_path):
    trace_dir = tmp_path / "trace"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(trace_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        log = trace_dir / "events.jsonl"
        deadline = time.monotonic() + DEADLINE_S
        saw_progress = _wait_for_marker(log, deadline)
        assert saw_progress, "child never logged GST's attempt span"
        assert proc.poll() is None, "child finished before the kill"
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        assert rc != 0, "SIGTERM'd child exited 0"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    # Every line except (at most) the torn final one parses strictly.
    lines = log.read_text(encoding="utf-8").splitlines()
    assert len(lines) >= 2
    records = []
    for index, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            assert index == len(lines) - 1, (
                f"unparseable line {index} is not the final line"
            )
    # The prefix is semantically whole: finished spans for the first
    # two workloads are present, and every record is schema-complete.
    span_keys = {"type", "name", "trace_id", "span_id", "pid", "ts_unix"}
    for record in records:
        assert span_keys <= set(record)
    finished = {
        r["attrs"]["workload"]
        for r in records
        if r["type"] == "span" and r["name"] == "attempt"
    }
    assert {"GMS", "GST"} <= finished
    assert "GRU" not in finished  # it was hung when the kill landed
