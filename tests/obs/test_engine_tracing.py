"""Engine-level observability: span forests, run profiles, differentials.

Runs the standard three-workload slice (GMS, GST, GRU — cheapest at
laptop scale) through the real engine, serial and pooled, with tracing
on and off, and checks that

* the emitted event log is a well-formed span *forest* (suite-run root,
  attempt spans under it, phase spans under attempts — across process
  boundaries),
* the run profile aggregates worker metrics correctly, and
* tracing never perturbs results: characterizations are bit-for-bit
  identical with tracing on or off (the observability layer reads the
  pipeline, never feeds it).
"""

from __future__ import annotations

import json

import pytest

from repro.core import LAPTOP_SCALE, RetryPolicy, run_suite
from repro.core.compare import diff_suite_results
from repro.obs import read_events
from repro.obs.metrics import PHASE_ORDER
from repro.testing.faults import FaultPlan

WORKLOADS = ["GMS", "GST", "GRU"]
FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_base_s=0.001, backoff_max_s=0.01
)


def run_slice(**kwargs):
    return run_suite(
        ["Cactus"], preset=LAPTOP_SCALE, workloads=WORKLOADS, **kwargs
    )


@pytest.fixture(scope="module")
def baseline():
    """Fault-free, trace-free serial reference run."""
    return run_slice()


def _span_index(events):
    return {
        e["span_id"]: e for e in events if e.get("type") == "span"
    }


def _assert_forest(events, expected_workloads):
    """The event log reassembles into the expected span hierarchy."""
    spans = _span_index(events)
    roots = [s for s in spans.values() if s["name"] == "suite-run"]
    assert len(roots) == 1
    root = roots[0]
    assert root["parent_id"] is None
    assert root["status"] == "ok"

    attempts = [s for s in spans.values() if s["name"] == "attempt"]
    assert {s["attrs"]["workload"] for s in attempts} == expected_workloads
    for attempt in attempts:
        assert attempt["parent_id"] == root["span_id"]
        assert attempt["trace_id"] == root["trace_id"]

    attempt_ids = {s["span_id"] for s in attempts}
    phases = [s for s in spans.values() if s["name"] in PHASE_ORDER]
    assert phases, "no phase spans recorded"
    for phase in phases:
        assert phase["parent_id"] in attempt_ids
        # Phase spans nest inside their attempt's time window.
        parent = spans[phase["parent_id"]]
        assert phase["ts_unix"] >= parent["ts_unix"] - 1e-3
        assert phase["dur_s"] <= parent["dur_s"] + 1e-3
        assert phase["attrs"]["workload"] == parent["attrs"]["workload"]


class TestSerialTracing:
    def test_span_forest_and_result_equality(self, tmp_path, baseline):
        trace_dir = tmp_path / "trace"
        report = run_slice(trace_dir=str(trace_dir))
        assert diff_suite_results(baseline, report) == []
        assert report.trace_dir == str(trace_dir)
        events = read_events(trace_dir / "events.jsonl", strict=True)
        _assert_forest(events, set(WORKLOADS))
        # Serial path: everything from one process.
        assert len({e["pid"] for e in events}) == 1

    def test_profile_present_without_tracing(self, baseline):
        assert baseline.trace_dir is None
        profile = baseline.run_profile
        assert profile is not None
        assert profile.counter("engine.workloads_completed") == len(WORKLOADS)
        for phase in ("stream-gen", "simulate", "analyze"):
            assert profile.phase_seconds(phase) > 0.0
        assert set(profile.workload_phases()) == set(WORKLOADS)


class TestParallelTracing:
    def test_span_forest_spans_processes(self, tmp_path, baseline):
        trace_dir = tmp_path / "trace"
        report = run_slice(jobs=2, trace_dir=str(trace_dir))
        assert diff_suite_results(baseline, report) == []
        events = read_events(trace_dir / "events.jsonl", strict=True)
        _assert_forest(events, set(WORKLOADS))
        # Pool path: attempt spans come from worker processes; finalize
        # folded their per-pid logs into the single canonical file.
        assert len({e["pid"] for e in events}) > 1
        assert not list(trace_dir.glob("events-*.jsonl"))
        # Worker metrics merged: queue waits observed per workload.
        queue = report.run_profile.histograms["queue.wait_s"]
        assert queue["count"] == len(WORKLOADS)

    def test_attempt_spans_record_mode(self, tmp_path):
        trace_dir = tmp_path / "trace"
        run_slice(jobs=2, trace_dir=str(trace_dir))
        events = read_events(trace_dir / "events.jsonl", strict=True)
        modes = {
            e["attrs"]["mode"]
            for e in events
            if e.get("type") == "span" and e["name"] == "attempt"
        }
        assert modes == {"pool"}


class TestFaultedTracing:
    def test_retry_events_and_counters(self, tmp_path, baseline):
        trace_dir = tmp_path / "trace"
        plan = FaultPlan.single("GST", "crash", attempts=(1,))
        report = run_slice(
            trace_dir=str(trace_dir),
            fault_plan=plan,
            retry_policy=FAST_RETRY,
            keep_going=True,
        )
        assert report.ok  # crash on attempt 1 retried successfully
        assert diff_suite_results(baseline, report) == []
        assert report.run_profile.retries == 1
        events = read_events(trace_dir / "events.jsonl", strict=True)
        retries = [
            e for e in events
            if e.get("type") == "event" and e["name"] == "retry"
        ]
        assert len(retries) == 1
        assert retries[0]["attrs"]["workload"] == "GST"
        errored = [
            e for e in events
            if e.get("type") == "span"
            and e["name"] == "attempt"
            and e["status"] == "error"
        ]
        assert len(errored) == 1
        assert errored[0]["attrs"]["workload"] == "GST"

    def test_terminal_failure_counted(self):
        plan = FaultPlan.single("GST", "crash-permanent")
        report = run_slice(
            fault_plan=plan, retry_policy=FAST_RETRY, keep_going=True
        )
        assert report.failed_workloads == ["GST"]
        profile = report.run_profile
        assert profile.counter("engine.workloads_failed") == 1
        assert profile.counter("engine.workloads_completed") == 2


class TestDifferential:
    def test_tracing_is_observation_only(self, tmp_path, baseline):
        """Serial/parallel x traced/untraced: all four identical."""
        reports = {
            "serial-traced": run_slice(trace_dir=str(tmp_path / "a")),
            "pool-untraced": run_slice(jobs=2),
            "pool-traced": run_slice(jobs=2, trace_dir=str(tmp_path / "b")),
        }
        for label, report in reports.items():
            assert diff_suite_results(baseline, report) == [], label

    def test_chrome_trace_loads_as_json(self, tmp_path):
        trace_dir = tmp_path / "trace"
        run_slice(trace_dir=str(trace_dir))
        payload = json.loads((trace_dir / "trace.json").read_text())
        assert payload["metadata"]["producer"] == "repro.obs"
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "suite-run" in names and "attempt" in names
