"""Tests for the profiler, steady-state selection, and trace export."""

import pytest

from repro.gpu import (
    GPUSimulator,
    KernelCharacteristics,
    KernelLaunch,
    LaunchStream,
    MemoryFootprint,
)
from repro.profiler import (
    Profiler,
    export_trace,
    load_trace,
    select_steady_state,
)
from repro.workloads.base import Workload, WorkloadInfo


def make_kernel(name, insts=1e6):
    return KernelCharacteristics(
        name=name,
        grid_blocks=128,
        threads_per_block=256,
        warp_insts=insts,
        memory=MemoryFootprint(bytes_read=1e6),
    )


class _FakeWorkload(Workload):
    """Deterministic workload: warm-up launches then repeated cycles."""

    repetitive = True

    def __init__(self, cycles=10, scale=1.0, seed=0):
        info = WorkloadInfo(
            name="fake", abbr="FAKE", suite="test", domain="test"
        )
        super().__init__(info, scale=scale, seed=seed)
        self.cycles = cycles

    def launch_stream(self):
        stream = LaunchStream()
        stream.launch(make_kernel("init"))
        for _ in range(self.cycles):
            stream.launch(make_kernel("force", insts=4e6))
            stream.launch(make_kernel("integrate", insts=1e6))
        return stream


class TestProfiler:
    def test_profile_aggregates_by_name(self):
        profile = Profiler().profile(_FakeWorkload(cycles=8))
        names = {k.name for k in profile.kernels}
        assert names <= {"init", "force", "integrate"}
        force = next(k for k in profile.kernels if k.name == "force")
        assert force.invocations >= 2

    def test_steady_state_drops_warmup(self):
        profile = Profiler(steady_state=True).profile(_FakeWorkload(cycles=20))
        assert all(k.name != "init" for k in profile.kernels)

    def test_no_steady_state_keeps_warmup(self):
        profile = Profiler(steady_state=False).profile(_FakeWorkload(cycles=20))
        assert any(k.name == "init" for k in profile.kernels)

    def test_empty_stream_rejected(self):
        class Empty(Workload):
            def __init__(self):
                super().__init__(
                    WorkloadInfo(name="e", abbr="E", suite="s", domain="d")
                )

            def launch_stream(self):
                return LaunchStream()

        with pytest.raises(ValueError, match="empty launch stream"):
            Profiler().profile(Empty())

    def test_profile_metadata(self):
        profile = Profiler().profile(_FakeWorkload())
        assert profile.workload == "fake"
        assert profile.suite == "test"

    def test_shared_simulator_memoizes(self):
        sim = GPUSimulator()
        profiler = Profiler(simulator=sim, steady_state=False)
        profiler.profile(_FakeWorkload(cycles=50))
        # Only three distinct kernels were ever simulated.
        assert len(sim._memo) == 3


class TestSteadyStateSelection:
    def test_detects_period(self):
        launches = [KernelLaunch(kernel=make_kernel("w"))]
        cycle = [
            KernelLaunch(kernel=make_kernel("a")),
            KernelLaunch(kernel=make_kernel("b")),
            KernelLaunch(kernel=make_kernel("c")),
        ]
        for _ in range(10):
            launches.extend(cycle)
        window = select_steady_state(launches, warmup_fraction=0.2)
        names = [launch.name for launch in window]
        assert len(names) % 3 == 0
        assert "w" not in names

    def test_aperiodic_stream_returned_whole(self):
        launches = [
            KernelLaunch(kernel=make_kernel(f"k{i}")) for i in range(30)
        ]
        window = select_steady_state(launches)
        assert len(window) == 30

    def test_short_stream_returned_whole(self):
        launches = [KernelLaunch(kernel=make_kernel("a"))] * 3
        assert len(select_steady_state(launches)) == 3

    def test_invalid_warmup_fraction(self):
        with pytest.raises(ValueError, match="warmup_fraction"):
            select_steady_state([], warmup_fraction=1.0)


class TestTraceExport:
    def test_roundtrip(self, tmp_path):
        stream = _FakeWorkload(cycles=3).launch_stream()
        path = tmp_path / "trace.jsonl"
        count = export_trace(stream, path)
        assert count == len(stream)
        loaded = load_trace(path)
        assert [l.name for l in loaded] == [l.name for l in stream]
        assert loaded[0].kernel == stream[0].kernel

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_version": 99}\n')
        with pytest.raises(ValueError, match="trace version"):
            load_trace(path)

    def test_replay_produces_identical_profile(self, tmp_path):
        workload = _FakeWorkload(cycles=5)
        stream = workload.launch_stream()
        path = tmp_path / "trace.jsonl"
        export_trace(stream, path)
        profiler = Profiler()
        direct = profiler.profile_launches(stream, workload="direct")
        replayed = profiler.profile_launches(load_trace(path), workload="replay")
        assert direct.total_time_s == pytest.approx(replayed.total_time_s)
        assert direct.num_kernels == replayed.num_kernels


from hypothesis import given, settings
from hypothesis import strategies as st


class TestSteadyStateProperties:
    @given(
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
        st.integers(3, 12),
        st.integers(0, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_periodic_streams_crop_to_whole_periods(
        self, cycle, repeats, warmup
    ):
        """Any warm-up + repeated cycle crops to whole cycles only."""
        launches = [
            KernelLaunch(kernel=make_kernel(f"warm{i}"))
            for i in range(warmup)
        ]
        for _ in range(repeats):
            launches.extend(
                KernelLaunch(kernel=make_kernel(name)) for name in cycle
            )
        window = select_steady_state(launches, warmup_fraction=0.25)
        names = [launch.name for launch in window]
        if len(names) != len(launches):  # a crop happened
            # The cropped window contains no warm-up kernels...
            assert not any(n.startswith("warm") for n in names)
            # ...and is a whole number of *fundamental* periods (which
            # divides the declared cycle length, e.g. ["a","a"] -> 1).
            fundamental = next(
                p for p in range(1, len(cycle) + 1)
                if len(cycle) % p == 0
                and cycle == cycle[:p] * (len(cycle) // p)
            )
            assert len(names) % fundamental == 0

    @given(st.integers(2, 40))
    @settings(max_examples=20, deadline=None)
    def test_single_kernel_streams_survive(self, n):
        launches = [KernelLaunch(kernel=make_kernel("only"))] * n
        window = select_steady_state(launches)
        assert 0 < len(window) <= n
        assert all(l.name == "only" for l in window)

