"""Tests for profile diffing."""

import pytest

from repro.gpu import A100, GPUSimulator, RTX_3080
from repro.profiler import Profiler
from repro.profiler.diffing import diff_profiles
from repro.workloads import get_workload


def profile_on(device, abbr="GMS", scale=0.05):
    profiler = Profiler(simulator=GPUSimulator(device))
    return profiler.profile(get_workload(abbr, scale=scale))


class TestDiffProfiles:
    def test_identical_runs_diff_to_unity(self):
        a = profile_on(RTX_3080)
        b = profile_on(RTX_3080)
        diff = diff_profiles(a, b)
        assert diff.total_speedup == pytest.approx(1.0)
        assert not diff.only_in_baseline
        assert not diff.only_in_candidate
        assert all(d.speedup == pytest.approx(1.0) for d in diff.shared)

    def test_faster_device_speeds_everything(self):
        # Large enough that the grids fill the A100's 108 SMs too
        # (tiny grids legitimately regress on wider machines).
        base = profile_on(RTX_3080, scale=0.3)
        fast = profile_on(A100, scale=0.3)
        diff = diff_profiles(base, fast)
        assert diff.total_speedup > 1.0
        assert len(diff.regressions()) == 0

    def test_detects_kernel_set_changes(self):
        lmr = profile_on(RTX_3080, "LMR")
        lmc = profile_on(RTX_3080, "LMC")
        diff = diff_profiles(lmr, lmc)
        assert "pair_lj_charmm_coul_long" in diff.only_in_baseline
        assert "pair_colloid" in diff.only_in_candidate
        shared = {d.name for d in diff.shared}
        assert "nve_integrate_initial" in shared

    def test_render_contains_speedup(self):
        diff = diff_profiles(profile_on(RTX_3080), profile_on(A100))
        text = diff.render()
        assert "total speedup" in text
        assert "x" in text

    def test_regression_detection(self):
        slow_device = RTX_3080.with_overrides(dram_bandwidth_gbs=200.0)
        base = profile_on(RTX_3080)
        slow = profile_on(slow_device)
        diff = diff_profiles(base, slow)
        assert diff.total_speedup < 1.0
        assert len(diff.regressions()) >= 1
