"""Differential tests for the batched stream/profile aggregation.

``GPUSimulator.run_stream``, the dict-ordered ``kernel_names``, the
incremental ``total_warp_insts`` and the matrix-reduction
``aggregate_launches`` all replaced Python generator loops; each must
agree with a faithful reimplementation of the original fold.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.kernel import KernelCharacteristics, LaunchStream
from repro.gpu.metrics import SECONDARY_METRICS, KernelMetrics
from repro.gpu.simulator import GPUSimulator
from repro.profiler.profiler import Profiler
from repro.profiler.records import _weighted_mean, aggregate_launches
from repro.workloads.registry import get_workload


def _kernel(name: str, insts: float = 1e6) -> KernelCharacteristics:
    return KernelCharacteristics(
        name=name, grid_blocks=32, threads_per_block=128, warp_insts=insts
    )


def _legacy_aggregate(name, records):
    """The original generator-loop fold, verbatim."""
    total_time = sum(r.duration_s for r in records)
    total_insts = sum(r.warp_insts for r in records)
    total_txn = sum(r.dram_transactions for r in records)

    def avg(metric):
        return _weighted_mean(
            (getattr(r, metric), r.duration_s) for r in records
        )

    return {
        "total_time_s": total_time,
        "total_warp_insts": total_insts,
        "total_dram_transactions": total_txn,
        **{m: avg(m) for m in SECONDARY_METRICS},
    }


@given(
    num_unique=st.integers(1, 10),
    pattern_seed=st.integers(0, 2**32 - 1),
    length=st.integers(1, 300),
)
@settings(max_examples=40, deadline=None)
def test_aggregate_launches_matches_legacy_fold(
    num_unique, pattern_seed, length
):
    """Batched aggregation agrees with the sequential fold to float
    reassociation tolerance, on record sequences with the simulator's
    repeated-object structure."""
    rng = np.random.default_rng(pattern_seed)
    unique = []
    for i in range(num_unique):
        values = {m: float(rng.random()) for m in SECONDARY_METRICS}
        unique.append(
            KernelMetrics(
                name="k",
                duration_s=float(rng.uniform(1e-7, 1e-2)),
                warp_insts=float(rng.uniform(1e3, 1e9)),
                dram_transactions=float(rng.uniform(0, 1e7)),
                **values,
            )
        )
    records = [unique[i] for i in rng.integers(0, num_unique, size=length)]

    profile = aggregate_launches("k", records)
    expected = _legacy_aggregate("k", records)

    assert profile.invocations == len(records)
    assert profile.total_time_s == pytest.approx(
        expected["total_time_s"], rel=1e-12
    )
    assert profile.total_warp_insts == pytest.approx(
        expected["total_warp_insts"], rel=1e-12
    )
    assert profile.total_dram_transactions == pytest.approx(
        expected["total_dram_transactions"], rel=1e-12, abs=1e-12
    )
    for metric in SECONDARY_METRICS:
        assert getattr(profile.metrics, metric) == pytest.approx(
            expected[metric], rel=1e-9, abs=1e-12
        ), metric


def test_aggregate_launches_rejects_empty():
    with pytest.raises(ValueError):
        aggregate_launches("k", [])


def test_run_stream_matches_per_launch_run():
    workload = get_workload("GRU", scale=0.001, seed=0)
    launches = list(workload.launch_stream())
    batched = GPUSimulator().run_stream(launches)
    reference_sim = GPUSimulator()
    reference = [reference_sim.run_kernel(l.kernel) for l in launches]
    assert len(batched) == len(launches)
    for got, want in zip(batched, reference):
        assert got == want


def test_run_stream_reuses_metrics_for_identical_kernels():
    k = _kernel("same")
    stream = LaunchStream()
    for _ in range(5):
        stream.launch(k)
    results = GPUSimulator().run_stream(stream)
    assert len(results) == 5
    assert all(r is results[0] for r in results)


def test_run_delegates_to_run_stream():
    stream = LaunchStream()
    stream.launch(_kernel("a"))
    stream.launch(_kernel("b", insts=2e6))
    sim = GPUSimulator()
    assert sim.run(stream) == sim.run_stream(stream)


def test_kernel_names_dedups_in_first_launch_order():
    stream = LaunchStream()
    for name in ["c", "a", "c", "b", "a", "c"]:
        stream.launch(_kernel(name))
    assert stream.kernel_names == ["c", "a", "b"]


def test_total_warp_insts_tracks_launch_and_extend():
    stream = LaunchStream()
    assert stream.total_warp_insts == 0.0
    stream.launch(_kernel("a", insts=1.5e6))
    other = LaunchStream([stream[0]])
    other.extend(
        LaunchStream([stream[0]])
    )
    stream.extend(other)
    expected = sum(launch.kernel.warp_insts for launch in stream)
    assert stream.total_warp_insts == expected
    assert other.total_warp_insts == 2 * 1.5e6


def test_profile_launches_equals_seed_shape_on_real_workload():
    """Full profiler pass: per-kernel invocation counts still partition
    the stream and totals match a direct per-launch fold."""
    workload = get_workload("GST", scale=0.001, seed=0)
    profiler = Profiler()
    stream = profiler.prepare_stream(workload)
    profile = profiler.profile_launches(stream, workload=workload.name)
    assert profile.total_invocations == len(stream)
    sim = GPUSimulator()
    direct_time = sum(sim.run_kernel(l.kernel).duration_s for l in stream)
    assert profile.total_time_s == pytest.approx(direct_time, rel=1e-9)
