"""Tests for profile records and Table I statistics."""

import pytest

from repro.gpu import KernelMetrics
from repro.profiler.records import (
    ApplicationProfile,
    aggregate_launches,
)


def metrics(name="k", duration=1.0, insts=1e9, txn=1e6, **kwargs):
    return KernelMetrics(
        name=name,
        duration_s=duration,
        warp_insts=insts,
        dram_transactions=txn,
        **kwargs,
    )


def profile_from(shares, name="app"):
    """Build a profile whose kernels have the given time shares."""
    kernels = [
        aggregate_launches(f"k{i}", [metrics(name=f"k{i}", duration=share)])
        for i, share in enumerate(shares)
    ]
    return ApplicationProfile(
        workload=name, suite="test", domain="test", kernels=kernels
    )


class TestAggregateLaunches:
    def test_counters_add(self):
        records = [
            metrics(duration=1.0, insts=100.0, txn=10.0),
            metrics(duration=3.0, insts=300.0, txn=30.0),
        ]
        profile = aggregate_launches("k", records)
        assert profile.invocations == 2
        assert profile.total_time_s == pytest.approx(4.0)
        assert profile.total_warp_insts == pytest.approx(400.0)
        assert profile.total_dram_transactions == pytest.approx(40.0)

    def test_ratios_time_weighted(self):
        records = [
            metrics(duration=1.0, l1_hit_rate=0.0),
            metrics(duration=3.0, l1_hit_rate=0.8),
        ]
        profile = aggregate_launches("k", records)
        assert profile.metrics.l1_hit_rate == pytest.approx(0.6)

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError, match="no launch records"):
            aggregate_launches("k", [])

    def test_gips_consistent(self):
        profile = aggregate_launches(
            "k", [metrics(duration=2.0, insts=4e9)]
        )
        assert profile.gips == pytest.approx(2.0)


class TestDominantKernels:
    def test_paper_example_dominance(self):
        """The paper's Section II.C example: time shares
        {0.25, 0.2, 0.2, 0.2, 0.15} -> the 0.25 kernel is dominant."""
        profile = profile_from([0.25, 0.2, 0.2, 0.2, 0.15])
        assert profile.dominant_kernel.total_time_s == pytest.approx(0.25)
        # 70% coverage needs 4 kernels: 0.25+0.2+0.2+0.2 = 0.85 >= 0.7
        assert profile.num_kernels_for_fraction(0.70) == 4

    def test_single_kernel_dominates(self):
        profile = profile_from([0.9, 0.05, 0.05])
        assert profile.num_kernels_for_fraction(0.70) == 1

    def test_kernels_sorted_by_time(self):
        profile = profile_from([0.1, 0.5, 0.4])
        times = [k.total_time_s for k in profile.kernels]
        assert times == sorted(times, reverse=True)

    def test_invocation_count_matters_not_single_time(self):
        """A short kernel invoked many times can dominate (r_i x t_i)."""
        frequent = aggregate_launches(
            "frequent", [metrics(name="frequent", duration=0.01)] * 100
        )
        rare = aggregate_launches("rare", [metrics(name="rare", duration=0.5)])
        profile = ApplicationProfile(
            workload="a", suite="s", domain="d", kernels=[rare, frequent]
        )
        assert profile.dominant_kernel.name == "frequent"

    def test_fraction_validation(self):
        profile = profile_from([1.0])
        with pytest.raises(ValueError, match="fraction"):
            profile.kernels_for_time_fraction(0.0)
        with pytest.raises(ValueError, match="fraction"):
            profile.kernels_for_time_fraction(1.5)

    def test_full_fraction_returns_all(self):
        profile = profile_from([0.5, 0.3, 0.2])
        assert profile.num_kernels_for_fraction(1.0) == 3


class TestCumulativeDistribution:
    def test_cumulative_fractions_monotone_to_one(self):
        profile = profile_from([0.4, 0.3, 0.2, 0.1])
        fractions = profile.cumulative_time_fractions()
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_max_kernels_limits_curve(self):
        profile = profile_from([0.4, 0.3, 0.2, 0.1])
        assert len(profile.cumulative_time_fractions(max_kernels=2)) == 2

    def test_time_shares_sum_to_one(self):
        profile = profile_from([0.5, 0.25, 0.25])
        assert sum(profile.time_shares().values()) == pytest.approx(1.0)


class TestTableIStatistics:
    def test_num_kernels(self):
        assert profile_from([0.5, 0.3, 0.2]).num_kernels == 3

    def test_weighted_avg_insts_per_kernel(self):
        k1 = aggregate_launches(
            "k1", [metrics(name="k1", duration=0.8, insts=100.0)]
        )
        k2 = aggregate_launches(
            "k2", [metrics(name="k2", duration=0.2, insts=10.0)]
        )
        profile = ApplicationProfile(
            workload="a", suite="s", domain="d", kernels=[k1, k2]
        )
        expected = 100.0 * 0.8 + 10.0 * 0.2
        assert profile.weighted_avg_insts_per_kernel == pytest.approx(expected)

    def test_aggregate_roofline_coordinates(self):
        k = aggregate_launches(
            "k", [metrics(duration=1.0, insts=2e9, txn=1e8)]
        )
        profile = ApplicationProfile(
            workload="a", suite="s", domain="d", kernels=[k]
        )
        assert profile.gips == pytest.approx(2.0)
        assert profile.instruction_intensity == pytest.approx(20.0)
