"""Unit tests for the deterministic fault-injection harness."""

import pickle

import pytest

from repro.core import ResultCache, diff_characterizations
from repro.testing import (
    CORRUPT_RESULT,
    CRASH,
    CRASH_PERMANENT,
    HANG,
    FaultPlan,
    FaultSpec,
    InjectedPermanentFault,
    InjectedTransientFault,
)
from repro.testing.faults import corrupt_characterization, flip_cache_bytes


class TestFaultSpec:
    def test_fires_on_configured_attempts_only(self):
        spec = FaultSpec(abbr="GMS", kind=CRASH, attempts=(1, 2))
        assert spec.fires("GMS", 1)
        assert spec.fires("gms", 2)  # case-insensitive
        assert not spec.fires("GMS", 3)
        assert not spec.fires("GST", 1)

    def test_empty_attempts_means_every_attempt(self):
        spec = FaultSpec(abbr="GMS", kind=CRASH, attempts=())
        assert all(spec.fires("GMS", n) for n in range(1, 10))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(abbr="GMS", kind="meteor-strike")


class TestFaultPlan:
    def test_before_raises_transient_and_permanent(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("AAA", CRASH),
                FaultSpec("BBB", CRASH_PERMANENT),
            )
        )
        with pytest.raises(InjectedTransientFault):
            plan.before("AAA", 1)
        with pytest.raises(InjectedPermanentFault):
            plan.before("BBB", 1)
        plan.before("AAA", 2)  # beyond the schedule: no-op
        plan.before("CCC", 1)  # unlisted workload: no-op

    def test_transient_fault_is_oserror_permanent_is_valueerror(self):
        # The classification contract the retry policy depends on.
        assert issubclass(InjectedTransientFault, OSError)
        assert issubclass(InjectedPermanentFault, ValueError)

    def test_empty_plan_is_falsy_noop(self):
        plan = FaultPlan()
        assert not plan
        plan.before("GMS", 1)
        assert plan.after("GMS", 1, "result", None) == "result"

    def test_plan_is_picklable(self):
        plan = FaultPlan.single("GMS", HANG, hang_s=12.0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_random_plan_replayable_from_seed(self):
        abbrs = ["GMS", "LMR", "LMC", "GST", "GRU", "DCG"]
        a = FaultPlan.random(abbrs, seed=42)
        b = FaultPlan.random(abbrs, seed=42)
        c = FaultPlan.random(abbrs, seed=43)
        assert a == b
        assert a != c  # overwhelmingly likely for different seeds

    def test_for_workload_filters(self):
        plan = FaultPlan(
            faults=(FaultSpec("GMS", CRASH), FaultSpec("GST", CRASH))
        )
        assert len(plan.for_workload("gms")) == 1
        assert plan.for_workload("GRU") == ()


class TestCorruption:
    def test_corrupt_characterization_is_detectable(self, baseline):
        original = baseline["GMS"]
        corrupted = corrupt_characterization(original)
        assert corrupted != original
        diffs = diff_characterizations(original, corrupted, "GMS")
        assert diffs, "corruption must be visible to the differential"
        # Only the instruction counters were touched, structurally the
        # object is still a valid Characterization.
        assert corrupted.abbr == original.abbr
        assert len(corrupted.profile.kernels) == len(original.profile.kernels)

    def test_corrupt_result_fault_applies(self, baseline):
        plan = FaultPlan.single("GMS", CORRUPT_RESULT)
        original = baseline["GMS"]
        assert plan.after("GMS", 1, original, None) != original
        assert plan.after("GMS", 2, original, None) == original  # off-schedule

    def test_flip_cache_bytes(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put("aa" + "0" * 62, {"v": 1})
        assert flip_cache_bytes(cache) == 1
        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get("aa" + "0" * 62) is None  # corrupt → miss
        assert fresh.stats.corrupt == 1

    def test_flip_cache_bytes_without_disk_tier_is_noop(self):
        assert flip_cache_bytes(ResultCache()) == 0
        assert flip_cache_bytes(None) == 0
