"""Unit tests for the retry/timeout/backoff policy."""

import math
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.resilience import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    WorkloadFailure,
    classify_exception,
)
from repro.testing import InjectedPermanentFault, InjectedTransientFault


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            OSError("io"),
            PermissionError("perm"),
            BrokenPipeError("pipe"),
            ConnectionResetError("conn"),
            EOFError("eof"),
            TimeoutError("slow"),
            FuturesTimeout(),
            BrokenProcessPool("dead"),
            MemoryError(),
            InjectedTransientFault("injected"),
        ],
    )
    def test_transient(self, exc):
        assert classify_exception(exc) == TRANSIENT

    @pytest.mark.parametrize(
        "exc",
        [
            ValueError("bad"),
            TypeError("bad"),
            KeyError("bad"),
            ZeroDivisionError(),
            NotImplementedError(),
            RuntimeError("bad"),
            InjectedPermanentFault("injected"),
        ],
    )
    def test_permanent(self, exc):
        assert classify_exception(exc) == PERMANENT

    def test_should_retry_respects_class_and_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(OSError("x"), 1)
        assert policy.should_retry(OSError("x"), 2)
        assert not policy.should_retry(OSError("x"), 3)  # budget exhausted
        assert not policy.should_retry(ValueError("x"), 1)  # permanent

    def test_no_retries_policy(self):
        policy = RetryPolicy(max_attempts=1)
        assert not policy.should_retry(OSError("x"), 1)


class TestBackoff:
    def test_deterministic_for_same_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        schedule_a = [a.backoff_s("GMS", n) for n in range(1, 6)]
        schedule_b = [b.backoff_s("GMS", n) for n in range(1, 6)]
        assert schedule_a == schedule_b

    def test_jitter_varies_with_seed_and_key(self):
        base = RetryPolicy(seed=0).backoff_s("GMS", 2)
        assert RetryPolicy(seed=1).backoff_s("GMS", 2) != base
        assert RetryPolicy(seed=0).backoff_s("GST", 2) != base

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5, jitter=0.0
        )
        delays = [policy.backoff_s("X", n) for n in range(1, 8)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        assert all(d == pytest.approx(0.5) for d in delays[3:])
        assert delays == sorted(delays)

    def test_jitter_stays_within_band_and_cap(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=1.0, jitter=0.25
        )
        for key in ("A", "B", "C", "D"):
            for attempt in range(1, 5):
                nominal = min(1.0, 0.1 * 2 ** (attempt - 1))
                delay = policy.backoff_s(key, attempt)
                assert 0.0 <= delay <= 1.0
                assert nominal * 0.75 <= delay or delay == 1.0
                assert delay <= nominal * 1.25

    def test_zero_attempt_is_free(self):
        assert RetryPolicy().backoff_s("X", 0) == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"max_attempts": -1},
            {"timeout_s": 0.0},
            {"timeout_s": -5.0},
            {"timeout_s": float("nan")},
            {"timeout_s": float("inf")},
            {"backoff_base_s": -0.1},
            {"backoff_base_s": float("nan")},
            {"backoff_factor": 0.5},
            {"backoff_max_s": 0.0, "backoff_base_s": 1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFromEnv:
    def test_reads_retries_and_timeout(self):
        policy = RetryPolicy.from_env(
            {"REPRO_RETRIES": "4", "REPRO_TIMEOUT": "12.5"}
        )
        assert policy.max_attempts == 5  # N retries = N+1 attempts
        assert policy.timeout_s == 12.5

    def test_empty_env_gives_defaults(self):
        policy = RetryPolicy.from_env({})
        assert policy == RetryPolicy()

    def test_overrides_beat_env(self):
        policy = RetryPolicy.from_env({"REPRO_RETRIES": "4"}, max_attempts=2)
        assert policy.max_attempts == 2

    @pytest.mark.parametrize(
        "env",
        [
            {"REPRO_RETRIES": "many"},
            {"REPRO_TIMEOUT": "soon"},
            {"REPRO_RETRIES": "-3"},
            {"REPRO_TIMEOUT": "nan"},
        ],
    )
    def test_garbage_env_rejected_with_clear_error(self, env):
        with pytest.raises(ValueError) as excinfo:
            RetryPolicy.from_env(env)
        assert "REPRO_" in str(excinfo.value)


class TestWorkloadFailure:
    def test_from_exception_captures_traceback(self):
        try:
            raise ValueError("model exploded")
        except ValueError as exc:
            failure = WorkloadFailure.from_exception(
                "GMS", exc, attempts=2, elapsed_s=1.25
            )
        assert failure.abbr == "GMS"
        assert failure.error_type == "ValueError"
        assert failure.classification == PERMANENT
        assert "Traceback (most recent call last)" in failure.traceback
        assert "model exploded" in failure.traceback
        assert failure.attempts == 2
        rendered = failure.render()
        assert "GMS" in rendered and "ValueError" in rendered
        assert failure.as_dict()["elapsed_s"] == 1.25
