"""CLI flag/env validation happens at parse time, not mid-run.

Satellite (ISSUE 2): bad ``--jobs`` / ``--timeout`` / ``--retries``
values must be rejected by argparse with a clear message, environment
values must pass through the same validators, and the help text must
document the flag-vs-environment precedence.
"""

import pytest

from repro.cli import _build_parser, main


def _parse(argv):
    return _build_parser().parse_args(argv)


class TestFlagValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["--jobs", "four", "list"],
            ["--jobs", "2.5", "list"],
            ["--jobs", "100000", "list"],
            ["--retries", "-1", "list"],
            ["--retries", "many", "list"],
            ["--retries", "101", "list"],
            ["--timeout", "0", "list"],
            ["--timeout", "-5", "list"],
            ["--timeout", "soon", "list"],
            ["--timeout", "inf", "list"],
            ["--timeout", "nan", "list"],
        ],
    )
    def test_bad_values_rejected_at_parse_time(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _parse(argv)
        assert excinfo.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert argv[0].lstrip("-") in err  # names the offending flag

    @pytest.mark.parametrize(
        "argv, attr, expected",
        [
            (["--jobs", "4", "list"], "jobs", 4),
            (["--jobs", "-1", "list"], "jobs", -1),
            (["--retries", "0", "list"], "retries", 0),
            (["--retries", "5", "list"], "retries", 5),
            (["--timeout", "30", "list"], "timeout", 30.0),
            (["--timeout", "0.5", "list"], "timeout", 0.5),
        ],
    )
    def test_good_values_accepted(self, argv, attr, expected):
        assert getattr(_parse(argv), attr) == expected

    def test_strict_and_keep_going_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            _parse(["--strict", "--keep-going", "list"])
        assert excinfo.value.code == 2
        assert "not allowed with" in capsys.readouterr().err


class TestEnvValidation:
    def test_env_provides_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_TIMEOUT", "45")
        args = _parse(["list"])
        assert args.jobs == 3
        assert args.retries == 7
        assert args.timeout == 45.0

    def test_flags_override_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_RETRIES", "7")
        args = _parse(["--jobs", "1", "--retries", "0", "list"])
        assert args.jobs == 1
        assert args.retries == 0

    @pytest.mark.parametrize(
        "name, value",
        [
            ("REPRO_JOBS", "lots"),
            ("REPRO_RETRIES", "-2"),
            ("REPRO_TIMEOUT", "whenever"),
        ],
    )
    def test_garbage_env_fails_fast_naming_the_variable(
        self, monkeypatch, name, value
    ):
        monkeypatch.setenv(name, value)
        with pytest.raises(SystemExit) as excinfo:
            _build_parser()
        assert name in str(excinfo.value.code)

    def test_empty_env_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "")
        monkeypatch.setenv("REPRO_TIMEOUT", "")
        args = _parse(["list"])
        assert args.jobs is None
        assert args.timeout is None


class TestHelpText:
    def test_help_documents_env_precedence_and_failure_semantics(self):
        # argparse re-wraps the epilog, so normalize line breaks first.
        text = " ".join(_build_parser().format_help().split())
        for needle in (
            "REPRO_JOBS",
            "REPRO_RETRIES",
            "REPRO_TIMEOUT",
            "REPRO_JOURNAL_DIR",
            "flag always overrides its",
            "--strict",
        ):
            assert needle in text


class TestMainWiring:
    def test_timeout_without_jobs_warns_on_stderr(self, capsys):
        rc = main(["--timeout", "30", "list"])
        assert rc == 0
        assert "--timeout has no effect on the serial path" in (
            capsys.readouterr().err
        )

    def test_timeout_with_jobs_does_not_warn(self, capsys):
        rc = main(["--jobs", "2", "--timeout", "30", "list"])
        assert rc == 0
        assert "--timeout" not in capsys.readouterr().err
