"""Crash isolation: one failing workload never takes down the suite.

Acceptance criterion (ISSUE 2): with an injected crash in exactly one
workload, a ``keep_going`` run returns a report whose surviving
characterizations are **bit-for-bit equal** to the same workloads from
a fault-free run, and the failed workload appears in the failure list
with a full traceback.
"""

import pytest

from repro.core import RetryPolicy, SuiteRunError, diff_characterizations
from repro.testing import CRASH, CRASH_PERMANENT, FaultPlan

from .conftest import FAST_RETRY, WORKLOADS, run_slice


class TestKeepGoingDifferential:
    @pytest.mark.parametrize("jobs", [None, 3], ids=["serial", "parallel"])
    def test_single_crash_survivors_bit_for_bit(self, baseline, jobs):
        plan = FaultPlan.single("GST", CRASH_PERMANENT, attempts=())
        report = run_slice(jobs=jobs, keep_going=True, fault_plan=plan)

        # Exactly the faulted workload failed; the rest survived.
        assert report.failed_workloads == ["GST"]
        assert sorted(report.results) == ["GMS", "GRU"]
        for abbr in ("GMS", "GRU"):
            assert diff_characterizations(
                baseline[abbr], report[abbr], abbr
            ) == []
            assert report[abbr] == baseline[abbr]

        # The failure record carries the full story.
        failure = report.failure_for("GST")
        assert failure is not None
        assert failure.error_type == "InjectedPermanentFault"
        assert failure.classification == "permanent"
        assert "Traceback (most recent call last)" in failure.traceback
        assert "InjectedPermanentFault" in failure.traceback
        assert failure.attempts == 1  # permanent → never retried

    def test_report_renders_failures(self):
        plan = FaultPlan.single("GST", CRASH_PERMANENT, attempts=())
        report = run_slice(keep_going=True, fault_plan=plan)
        rendered = report.render_failures()
        assert "GST" in rendered and "InjectedPermanentFault" in rendered
        assert not report.ok


class TestStrictMode:
    def test_strict_raises_with_partial_report(self, baseline):
        plan = FaultPlan.single("GST", CRASH_PERMANENT, attempts=())
        with pytest.raises(SuiteRunError) as excinfo:
            run_slice(fault_plan=plan)  # keep_going defaults to False
        err = excinfo.value
        assert [f.abbr for f in err.failures] == ["GST"]
        # Completed work rides along on the exception, bit-for-bit.
        assert err.report["GMS"] == baseline["GMS"]
        assert "GST" in str(err)


class TestRetries:
    @pytest.mark.parametrize("jobs", [None, 3], ids=["serial", "parallel"])
    def test_transient_crash_retried_then_succeeds(self, baseline, jobs):
        # Fails on attempts 1 and 2, succeeds on attempt 3.
        plan = FaultPlan.single("GST", CRASH, attempts=(1, 2))
        report = run_slice(jobs=jobs, retry_policy=FAST_RETRY, fault_plan=plan)
        assert report.ok
        assert report.attempts["GST"] == 3
        assert report.results == baseline.results  # bit-for-bit after retry

    def test_transient_budget_exhaustion_fails(self):
        plan = FaultPlan.single("GST", CRASH, attempts=())  # every attempt
        report = run_slice(
            retry_policy=FAST_RETRY, keep_going=True, fault_plan=plan
        )
        failure = report.failure_for("GST")
        assert failure is not None
        assert failure.classification == "transient"
        assert failure.attempts == FAST_RETRY.max_attempts

    def test_permanent_crash_not_retried(self):
        plan = FaultPlan.single("GST", CRASH_PERMANENT, attempts=())
        report = run_slice(
            retry_policy=FAST_RETRY, keep_going=True, fault_plan=plan
        )
        assert report.failure_for("GST").attempts == 1


class TestOrderingGuarantees:
    @pytest.mark.parametrize("victim", WORKLOADS)
    def test_results_and_failures_keep_registration_order(self, victim):
        plan = FaultPlan.single(victim, CRASH_PERMANENT, attempts=())
        report = run_slice(jobs=3, keep_going=True, fault_plan=plan)
        expected_survivors = [w for w in WORKLOADS if w != victim]
        assert list(report.results) == expected_survivors
        assert report.failed_workloads == [victim]

    def test_multiple_failures_listed_in_registration_order(self):
        from repro.testing import FaultSpec

        plan = FaultPlan(
            faults=(
                FaultSpec("GRU", CRASH_PERMANENT, attempts=()),
                FaultSpec("GMS", CRASH_PERMANENT, attempts=()),
            )
        )
        report = run_slice(jobs=3, keep_going=True, fault_plan=plan)
        assert report.failed_workloads == ["GMS", "GRU"]  # not fault order
        assert list(report.results) == ["GST"]
