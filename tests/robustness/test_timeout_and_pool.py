"""Timeout-kill, broken-pool rebuild, and serial-degradation paths."""

import time

import pytest

from repro.core import RetryPolicy
from repro.core.engine import CharacterizationEngine, _resolve_jobs
from repro.testing import DIE, HANG, FaultPlan

from .conftest import run_slice


class TestTimeoutKill:
    def test_hung_worker_killed_and_bystanders_survive(self, baseline):
        plan = FaultPlan.single("GST", HANG, attempts=(), hang_s=60.0)
        policy = RetryPolicy(max_attempts=1, timeout_s=3.0)
        started = time.monotonic()
        report = run_slice(
            jobs=3, keep_going=True, retry_policy=policy, fault_plan=plan
        )
        elapsed = time.monotonic() - started
        # The 60s hang must not be waited out: the worker is killed at
        # the timeout and the suite completes promptly.
        assert elapsed < 30.0
        failure = report.failure_for("GST")
        assert failure is not None
        assert failure.phase == "timeout"
        assert failure.error_type == "TimeoutError"
        assert "timeout" in failure.message
        assert failure.classification == "transient"
        # Bystanders of the pool kill survive bit-for-bit.
        assert sorted(report.results) == ["GMS", "GRU"]
        assert report["GMS"] == baseline["GMS"]
        assert report["GRU"] == baseline["GRU"]

    def test_hang_once_then_retry_succeeds(self, baseline):
        plan = FaultPlan.single("GST", HANG, attempts=(1,), hang_s=60.0)
        policy = RetryPolicy(
            max_attempts=2, timeout_s=3.0, backoff_base_s=0.001
        )
        report = run_slice(
            jobs=3, keep_going=True, retry_policy=policy, fault_plan=plan
        )
        assert report.ok
        assert report.attempts["GST"] == 2
        assert report.results == baseline.results


class TestBrokenPool:
    def test_hard_worker_death_recovers_everything(self, baseline):
        # GST's worker dies with os._exit on every pool attempt: the
        # pool rebuilds once, breaks again, and the engine degrades to
        # the serial path — where the injected DIE refuses to kill the
        # parent and surfaces as a transient error that the retry
        # budget absorbs.  Every workload still completes bit-for-bit.
        plan = FaultPlan.single("GST", DIE, attempts=(1,))
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.001)
        with pytest.warns(RuntimeWarning, match="serial"):
            report = run_slice(
                jobs=3, keep_going=True, retry_policy=policy, fault_plan=plan
            )
        assert report.fallback_reason is not None
        assert "broke twice" in report.fallback_reason
        assert report.ok
        assert report.results == baseline.results


class TestSerialFallback:
    def test_pool_unavailable_warns_and_records_reason(
        self, baseline, monkeypatch
    ):
        # Satellite: the old engine silently swallowed the reason.
        def refuse(self, jobs, tasks):
            raise PermissionError("sandbox forbids process pools")

        monkeypatch.setattr(CharacterizationEngine, "_new_pool", refuse)
        with pytest.warns(RuntimeWarning, match="sandbox forbids"):
            report = run_slice(jobs=4)
        assert report.fallback_reason is not None
        assert "PermissionError" in report.fallback_reason
        assert "sandbox forbids process pools" in report.fallback_reason
        # The serial fallback still produces the exact same science.
        assert report.results == baseline.results

    def test_no_fallback_reason_on_healthy_runs(self):
        assert run_slice().fallback_reason is None
        assert run_slice(jobs=2).fallback_reason is None


class TestResolveJobs:
    # Satellite: edge-case coverage for the jobs normalization.
    def test_none_and_zero_mean_serial(self):
        assert _resolve_jobs(None) == 1
        assert _resolve_jobs(0) == 1

    def test_positive_passthrough(self):
        assert _resolve_jobs(1) == 1
        assert _resolve_jobs(7) == 7

    def test_negative_means_cpu_count(self, monkeypatch):
        monkeypatch.setattr("repro.core.engine.os.cpu_count", lambda: 6)
        assert _resolve_jobs(-1) == 6
        assert _resolve_jobs(-99) == 6

    def test_cpu_count_none_degrades_to_one(self, monkeypatch):
        monkeypatch.setattr("repro.core.engine.os.cpu_count", lambda: None)
        assert _resolve_jobs(-1) == 1
