"""Shared fixtures for the fault-injection robustness suite.

Every test here runs a small three-workload slice of the Cactus suite
(one molecular, two graph workloads — the cheapest at laptop scale) so
the whole suite stays fast while still covering the serial and pool
paths.  ``baseline`` is the fault-free reference every differential
assertion compares against, computed once per session.
"""

from __future__ import annotations

import pytest

from repro.core import LAPTOP_SCALE, RetryPolicy, run_suite

#: Registration-ordered slice used throughout: GMS < GST < GRU.
WORKLOADS = ["GMS", "GST", "GRU"]

#: Fast-retry policy: keeps backoff sleeps out of the test wall-clock.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.001, backoff_max_s=0.01)


def run_slice(**kwargs):
    """A suite run over the standard three-workload slice."""
    return run_suite(
        ["Cactus"], preset=LAPTOP_SCALE, workloads=WORKLOADS, **kwargs
    )


@pytest.fixture(scope="session")
def baseline():
    """Fault-free serial reference run (bit-for-bit ground truth)."""
    return run_slice()
