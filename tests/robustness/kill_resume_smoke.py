#!/usr/bin/env python3
"""Kill-and-resume smoke: SIGTERM a live suite run, then resume it.

Not a pytest module (the filename keeps it out of collection) — this is
an end-to-end process-level check used by the CI ``robustness`` job:

1. launch ``python -m repro table1`` with a journal dir and no cache,
2. poll the journal's ``done/`` markers and SIGTERM the process once at
   least two workloads have been checkpointed,
3. rerun the identical command and assert it resumes (skipping every
   checkpointed workload) and completes with exit code 0.

Exit code 0 = smoke passed.
"""

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"

KILL_AFTER_MARKERS = 2
POLL_S = 0.05
DEADLINE_S = 300.0


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    # Pin the run shape: serial, journaled, cache-free, no retries env.
    for name in ("REPRO_JOBS", "REPRO_RETRIES", "REPRO_TIMEOUT",
                 "REPRO_CACHE_DIR", "REPRO_JOURNAL_DIR"):
        env.pop(name, None)
    return env


def _command(journal_dir):
    return [
        sys.executable, "-m", "repro",
        "--no-cache", "--journal-dir", str(journal_dir),
        "table1",
    ]


def _markers(journal_dir):
    done = Path(journal_dir) / "done"
    if not done.is_dir():
        return set()
    return {p.stem for p in done.glob("*.json")}


def _cactus_workloads():
    sys.path.insert(0, str(SRC))
    from repro.workloads import list_workloads

    return set(list_workloads("Cactus"))


def main():
    expected = _cactus_workloads()
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as journal_dir:
        # -- phase 1: start and kill mid-run ---------------------------
        proc = subprocess.Popen(
            _command(journal_dir), env=_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + DEADLINE_S
        killed_at = None
        while proc.poll() is None and time.monotonic() < deadline:
            done = _markers(journal_dir)
            if len(done) >= KILL_AFTER_MARKERS:
                killed_at = done
                try:
                    proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
                break
            time.sleep(POLL_S)
        rc = proc.wait(timeout=60)

        if killed_at is None:
            print(
                f"FAIL: run finished (rc={rc}) before "
                f"{KILL_AFTER_MARKERS} journal markers appeared — "
                f"nothing was interrupted", file=sys.stderr,
            )
            return 1
        if rc == 0:
            print("FAIL: SIGTERM'd run still exited 0", file=sys.stderr)
            return 1
        survivors = _markers(journal_dir)
        print(
            f"killed run (rc={rc}) with {len(survivors)} checkpointed "
            f"workload(s): {', '.join(sorted(survivors))}"
        )
        if survivors >= expected:
            print("FAIL: every workload already checkpointed — the kill "
                  "landed too late to exercise resumption", file=sys.stderr)
            return 1

        # -- phase 2: resume -------------------------------------------
        result = subprocess.run(
            _command(journal_dir), env=_env(),
            capture_output=True, text=True, timeout=DEADLINE_S,
        )
        if result.returncode != 0:
            print(f"FAIL: resumed run exited {result.returncode}\n"
                  f"{result.stderr}", file=sys.stderr)
            return 1
        if "[journal] resumed" not in result.stderr:
            print("FAIL: resumed run did not report journal resumption\n"
                  f"{result.stderr}", file=sys.stderr)
            return 1
        final = _markers(journal_dir)
        if final != expected:
            print(f"FAIL: final journal covers {sorted(final)}, "
                  f"expected {sorted(expected)}", file=sys.stderr)
            return 1
        missing = survivors - final
        if missing:
            print(f"FAIL: checkpointed workloads vanished: {missing}",
                  file=sys.stderr)
            return 1
        print(
            f"resumed run skipped {len(survivors)} checkpointed "
            f"workload(s) and completed the remaining "
            f"{len(expected) - len(survivors)} — smoke passed"
        )
        return 0


if __name__ == "__main__":
    sys.exit(main())
