"""Corrupt cache entries are quarantined, counted, and rewritten.

Satellite (ISSUE 2): ``ResultCache`` must treat truncated or bit-rotted
entries as misses, move them aside into ``<cache_dir>/corrupt/`` for
post-mortem inspection, and count them in ``CacheStats`` — so a killed
worker's torn write can never poison later runs.
"""

from repro.core import ResultCache
from repro.testing import CORRUPT_CACHE, FaultPlan
from repro.testing.faults import flip_cache_bytes

from .conftest import run_slice

KEY = "ab" + "0" * 62


def _entry_files(cache):
    return sorted(cache.version_dir.glob("*/*.json"))


class TestQuarantine:
    def test_truncated_entry_is_quarantined_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        path = _entry_files(cache)[0]
        path.write_text('{"v": 1', encoding="utf-8")  # torn write

        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        # The broken file moved aside, preserved for inspection.
        assert not path.exists()
        quarantined = list((tmp_path / "corrupt").iterdir())
        assert [p.name for p in quarantined] == [path.name]
        assert quarantined[0].read_text(encoding="utf-8") == '{"v": 1'

    def test_bit_flipped_entry_is_quarantined_miss(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        assert flip_cache_bytes(cache) == 1

        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 1

    def test_non_dict_entry_is_quarantined(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        path = _entry_files(cache)[0]
        path.write_text("[1, 2, 3]", encoding="utf-8")  # valid JSON, wrong shape

        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 1

    def test_recompute_rewrites_entry_cleanly(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        _entry_files(cache)[0].write_text("garbage", encoding="utf-8")

        fresh = ResultCache(cache_dir=tmp_path)
        assert fresh.get(KEY) is None  # quarantined
        fresh.put(KEY, {"v": 2})  # caller recomputes and rewrites
        assert fresh.get(KEY) == {"v": 2}
        again = ResultCache(cache_dir=tmp_path)
        assert again.get(KEY) == {"v": 2}
        assert again.stats.corrupt == 0

    def test_missing_entry_is_plain_miss_not_corrupt(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.corrupt == 0
        assert cache.stats.misses == 1

    def test_stats_merge_and_render_cover_corrupt(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        _entry_files(cache)[0].write_text("x", encoding="utf-8")
        fresh = ResultCache(cache_dir=tmp_path)
        fresh.get(KEY)
        merged = ResultCache().stats
        merged.merge(fresh.stats)
        assert merged.corrupt == 1
        assert merged.as_dict()["corrupt"] == 1
        assert "1 corrupt entry quarantined" in merged.render()
        # Healthy caches never mention quarantine.
        assert "corrupt" not in ResultCache().stats.render()


class TestEndToEnd:
    def test_suite_survives_cache_corruption_bit_for_bit(
        self, baseline, tmp_path
    ):
        # Warm the cache, flip a byte in *every* persistent entry
        # (kernel-level and characterization-level alike), then rerun:
        # each corrupt entry is a quarantined miss, everything is
        # recomputed, and the results stay bit-for-bit correct.
        warm = run_slice(cache_dir=tmp_path)
        assert warm.results == baseline.results
        total = ResultCache(cache_dir=tmp_path).persistent_entries()
        assert flip_cache_bytes(
            ResultCache(cache_dir=tmp_path), max_files=total
        ) == total

        rerun_cache = ResultCache(cache_dir=tmp_path)
        rerun = run_slice(cache=rerun_cache)
        assert rerun.ok
        assert rerun.results == baseline.results
        assert rerun_cache.stats.corrupt >= len(baseline.results)
        assert (tmp_path / "corrupt").is_dir()

        # Third run: the rewritten entries serve cleanly again.
        third_cache = ResultCache(cache_dir=tmp_path)
        third = run_slice(cache=third_cache)
        assert third.results == baseline.results
        assert third_cache.stats.corrupt == 0

    def test_corrupt_cache_fault_kind_round_trips(self, baseline, tmp_path):
        # The CORRUPT_CACHE fault kind flips bytes *after* the workload
        # completes — the run that planted the corruption is unaffected,
        # and a cold scan of the persistent tier quarantines exactly the
        # corrupted entry.
        plan = FaultPlan.single("GMS", CORRUPT_CACHE)
        first = run_slice(cache=ResultCache(cache_dir=tmp_path), fault_plan=plan)
        assert first.results == baseline.results

        scanner = ResultCache(cache_dir=tmp_path)
        for path in sorted(scanner.version_dir.glob("*/*.json")):
            scanner.get(path.stem)
        assert scanner.stats.corrupt == 1

        rerun = run_slice(cache_dir=tmp_path)
        assert rerun.results == baseline.results

    def test_quarantined_files_do_not_count_as_entries(self, tmp_path):
        cache = ResultCache(cache_dir=tmp_path)
        cache.put(KEY, {"v": 1})
        before = cache.persistent_entries()
        _entry_files(cache)[0].write_text("x", encoding="utf-8")
        fresh = ResultCache(cache_dir=tmp_path)
        fresh.get(KEY)
        # The quarantine dir lives outside the version tree, so the
        # moved file no longer counts as a cache entry.
        assert fresh.persistent_entries() == before - 1
        assert (tmp_path / "corrupt" / f"{KEY}.json").exists()
