"""The resilience machinery must be invisible on healthy runs.

Acceptance criterion (ISSUE 2): the existing differential and golden
suites pass unchanged — here we additionally pin that a run through the
full fault-tolerant engine (retry policy, journal, empty fault plan)
is bit-for-bit identical to the plain path.
"""

import pytest

from repro.core import RetryPolicy
from repro.testing import FaultPlan

from .conftest import WORKLOADS, run_slice


@pytest.mark.parametrize("jobs", [None, 3], ids=["serial", "parallel"])
def test_empty_fault_plan_is_bit_for_bit_noop(baseline, jobs):
    report = run_slice(jobs=jobs, fault_plan=FaultPlan())
    assert report.ok
    assert report.failures == []
    assert report.fallback_reason is None
    assert report.resumed == []
    assert list(report.results) == WORKLOADS
    assert report.results == baseline.results


def test_none_fault_plan_matches_empty_plan(baseline):
    report = run_slice(fault_plan=None)
    assert report.results == baseline.results


@pytest.mark.parametrize("jobs", [None, 3], ids=["serial", "parallel"])
def test_retry_and_timeout_config_do_not_perturb_results(baseline, jobs):
    policy = RetryPolicy(max_attempts=5, timeout_s=120.0, seed=99)
    report = run_slice(jobs=jobs, retry_policy=policy, keep_going=True)
    assert report.ok
    assert report.results == baseline.results
    assert all(n == 1 for n in report.attempts.values())


def test_journal_on_healthy_run_is_bit_for_bit(baseline, tmp_path):
    report = run_slice(journal_dir=tmp_path)
    assert report.ok
    assert report.resumed == []
    assert report.results == baseline.results
