"""Resumable checkpoints: interrupted runs restart where they left off.

Acceptance criterion (ISSUE 2): a suite run interrupted after N
workloads resumes and re-runs only the remaining ones, verified through
the journal — with the result cache disabled.
"""

import json

import pytest

from repro.core import LAPTOP_SCALE, RunJournal, SuiteRunError, run_suite
from repro.core.engine import CharacterizationEngine
from repro.testing import CRASH_PERMANENT, FaultPlan, FaultSpec

from .conftest import WORKLOADS, run_slice


class TestResume:
    def test_interrupted_run_resumes_and_skips_completed(
        self, baseline, tmp_path
    ):
        # First run dies at the last workload (strict mode) — GMS and
        # GST completed and were journaled.  No cache anywhere.
        crash_last = FaultPlan.single("GRU", CRASH_PERMANENT, attempts=())
        with pytest.raises(SuiteRunError):
            run_slice(journal_dir=tmp_path, fault_plan=crash_last)

        journal_files = sorted(p.stem for p in (tmp_path / "done").glob("*.json"))
        assert journal_files == ["GMS", "GST"]

        # Second run: inject faults into the *already-completed*
        # workloads.  If the journal resume works they are skipped, so
        # the faults never fire and the run completes.
        crash_done = FaultPlan(
            faults=(
                FaultSpec("GMS", CRASH_PERMANENT, attempts=()),
                FaultSpec("GST", CRASH_PERMANENT, attempts=()),
            )
        )
        report = run_slice(journal_dir=tmp_path, fault_plan=crash_done)
        assert report.resumed == ["GMS", "GST"]
        assert report.ok
        assert list(report.results) == WORKLOADS
        # Resumed results are the journaled ones — bit-for-bit equal to
        # a fault-free run (lossless serialization).
        assert report.results == baseline.results

    def test_completed_run_resumes_everything(self, baseline, tmp_path):
        first = run_slice(journal_dir=tmp_path)
        again = run_slice(journal_dir=tmp_path)
        assert again.resumed == WORKLOADS
        assert again.results == first.results == baseline.results
        meta = json.loads((tmp_path / "run.json").read_text())
        assert meta["status"] == "complete"

    def test_different_run_identity_does_not_resume(self, tmp_path):
        run_slice(journal_dir=tmp_path)
        # A different workload selection is a different run key: the
        # stale journal must be wiped, not resumed.
        report = run_suite(
            ["Cactus"],
            preset=LAPTOP_SCALE,
            workloads=["GMS", "GST"],
            journal_dir=tmp_path,
        )
        assert report.resumed == []
        assert sorted(report.results) == ["GMS", "GST"]

    def test_corrupt_marker_just_reruns_the_workload(self, baseline, tmp_path):
        run_slice(journal_dir=tmp_path)
        marker = tmp_path / "done" / "GST.json"
        marker.write_text("{ definitely not json", encoding="utf-8")
        report = run_slice(journal_dir=tmp_path)
        assert report.resumed == ["GMS", "GRU"]
        assert report.ok
        assert report.results == baseline.results

    def test_failed_workloads_are_not_marked_done(self, tmp_path):
        plan = FaultPlan.single("GST", CRASH_PERMANENT, attempts=())
        run_slice(journal_dir=tmp_path, keep_going=True, fault_plan=plan)
        done = sorted(p.stem for p in (tmp_path / "done").glob("*.json"))
        assert done == ["GMS", "GRU"]
        meta = json.loads((tmp_path / "run.json").read_text())
        assert meta["status"] == "failed"


class TestRunJournalUnit:
    def test_begin_is_idempotent_for_same_key(self, tmp_path):
        journal = RunJournal(tmp_path, run_key="k1")
        assert journal.begin(["A", "B"]) == {}
        assert journal.begin(["A", "B"]) == {}
        assert json.loads(journal.run_path.read_text())["run_key"] == "k1"

    def test_foreign_marker_ignored(self, baseline, tmp_path):
        ours = RunJournal(tmp_path, run_key="k1")
        ours.begin(["GMS"])
        ours.mark_done("GMS", baseline["GMS"])
        # Same directory, different identity: marker must not leak.
        theirs = RunJournal(tmp_path, run_key="k2")
        assert theirs.begin(["GMS"]) == {}

    def test_mark_done_round_trips_losslessly(self, baseline, tmp_path):
        journal = RunJournal(tmp_path, run_key="k1")
        journal.begin(WORKLOADS)
        journal.mark_done("GMS", baseline["GMS"], attempts=2)
        resumed = journal.begin(WORKLOADS)
        assert resumed["GMS"] == baseline["GMS"]
        assert journal.completed_workloads() == ["GMS"]

    def test_run_key_depends_on_identity(self):
        engine = CharacterizationEngine()
        key_a = engine.run_key(LAPTOP_SCALE, ["GMS", "GST"])
        key_b = engine.run_key(LAPTOP_SCALE, ["GMS", "GRU"])
        assert key_a != key_b
        assert key_a == engine.run_key(LAPTOP_SCALE, ["GMS", "GST"])
