"""Golden coverage and MD digest checks for the launch-stream fixture.

Two guards around ``fixtures/stream_digests.json``:

* **Coverage** — every workload registered in the Cactus suite must
  carry a pinned digest at every preset.  Without this, a newly added
  workload (or a newly added preset) ships unpinned and the
  digest-differential safety net silently never applies to it.
* **MD digests** — the three molecular workloads are recomputed and
  compared against the fixture at *all three* presets.  The MD stream
  generator was vectorized end to end (compiled pair counting, cached
  cell lists, hoisted kernel construction); post-vectorization the full
  paper-scale streams are cheap enough to verify outright in the golden
  job rather than only at the laptop preset.

Run with ``pytest -m golden``.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.core.config import LAPTOP_SCALE, OBSERVATION_SCALE, PAPER_SCALE
from repro.gpu.digest import launch_stream_digest
from repro.profiler.profiler import Profiler
from repro.workloads.registry import get_workload, list_workloads

pytestmark = pytest.mark.golden

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "stream_digests.json"

PRESETS = {
    "laptop": LAPTOP_SCALE,
    "observation": OBSERVATION_SCALE,
    "paper": PAPER_SCALE,
}

MD_WORKLOADS = ("GMS", "LMR", "LMC")


@pytest.fixture(scope="module")
def fixture():
    return json.loads(FIXTURE_PATH.read_text(encoding="utf-8"))


def test_every_cactus_workload_pinned_at_every_preset(fixture):
    """A registered workload without a pinned digest fails loudly here
    instead of silently shipping outside the differential safety net."""
    presets = fixture["presets"]
    assert sorted(presets) == sorted(PRESETS), (
        "fixture presets drifted from the configured scale presets"
    )
    registered = set(list_workloads("Cactus"))
    for preset_name, pinned in presets.items():
        missing = sorted(registered - set(pinned))
        assert not missing, (
            f"Cactus workloads with no pinned stream digest at the "
            f"{preset_name!r} preset: {missing}; regenerate the fixture "
            f"(tests/golden/fixtures/) and review the diff"
        )
        unknown = sorted(set(pinned) - registered)
        assert not unknown, (
            f"fixture pins digests for unregistered workloads at "
            f"{preset_name!r}: {unknown}"
        )


def test_fixture_entries_are_well_formed(fixture):
    for preset_name, pinned in fixture["presets"].items():
        for abbr, entry in pinned.items():
            assert re.fullmatch(r"[0-9a-f]{64}", entry["digest"]), (
                preset_name, abbr,
            )
            assert entry["launches"] > 0, (preset_name, abbr)


@pytest.mark.parametrize("preset_name", sorted(PRESETS))
def test_md_stream_digests_match_fixture(fixture, preset_name):
    preset = PRESETS[preset_name]
    pinned = fixture["presets"][preset_name]
    profiler = Profiler()
    for abbr in MD_WORKLOADS:
        reference = pinned[abbr]
        workload = get_workload(
            abbr, scale=preset.for_workload(abbr), seed=0
        )
        stream = profiler.prepare_stream(workload)
        assert len(stream) == reference["launches"], (preset_name, abbr)
        assert launch_stream_digest(stream) == reference["digest"], (
            preset_name, abbr,
        )
