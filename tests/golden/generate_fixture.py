"""Regenerate the golden fixture pinning the paper's numbers.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_fixture.py

The fixture captures what ``tests/golden/test_paper_numbers.py``
asserts: the RTX 3080 roofline constants (elbow 21.76 insts/txn), the
Table I rows, the 70 %-of-GPU-time dominant-kernel selections, the
aggregate roofline classes, and the dominant-kernel cluster structure —
all at the deterministic ``LAPTOP_SCALE`` preset.

Only regenerate after an *intentional* model change, and review the
resulting diff like science: every changed number is a changed result.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.core import LAPTOP_SCALE, run_suite
from repro.core.compare import cluster_dominant_kernels
from repro.core.serialize import table1_row_to_dict
from repro.gpu.device import RTX_3080

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "paper_numbers.json"


def build_fixture() -> dict:
    cactus = run_suite(["Cactus"], preset=LAPTOP_SCALE)
    prt = run_suite(["Parboil", "Rodinia", "Tango"], preset=LAPTOP_SCALE)

    labels, owners, assignment, suite_of, _ = cluster_dominant_kernels(
        cactus, prt
    )
    per_cluster = Counter()
    cactus_per_cluster = Counter()
    for owner, cluster in zip(owners, assignment):
        per_cluster[int(cluster)] += 1
        if suite_of[owner] == "Cactus":
            cactus_per_cluster[int(cluster)] += 1
    dominated = sorted(
        cluster
        for cluster in per_cluster
        if cactus_per_cluster[cluster] / per_cluster[cluster] > 0.6
    )

    return {
        "preset": LAPTOP_SCALE.name,
        "device": {
            "name": RTX_3080.name,
            "peak_gips": RTX_3080.peak_gips,
            "peak_gtxn_per_s": RTX_3080.peak_gtxn_per_s,
            "roofline_elbow": RTX_3080.roofline_elbow,
        },
        "table1": {
            abbr: table1_row_to_dict(cactus[abbr].table1)
            for abbr in cactus.results
        },
        "dominant_kernels": {
            abbr: [k.name for k in cactus[abbr].profile.dominant_kernels]
            for abbr in cactus.results
        },
        "aggregate_roofline": {
            abbr: {
                "intensity": cactus[abbr].aggregate_point.intensity,
                "gips": cactus[abbr].aggregate_point.gips,
                "intensity_class": cactus[abbr].aggregate_point.intensity_class,
            }
            for abbr in cactus.results
        },
        "clustering": {
            "requested_clusters": 6,
            "distinct_clusters": len(per_cluster),
            "total_dominant_kernels": len(labels),
            "cactus_dominated_clusters": dominated,
        },
    }


def main() -> None:
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    fixture = build_fixture()
    FIXTURE_PATH.write_text(
        json.dumps(fixture, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":
    main()
