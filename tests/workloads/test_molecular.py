"""Tests for the molecular-dynamics workload substrate."""

import numpy as np
import pytest

from repro.profiler import Profiler
from repro.workloads.molecular import (
    CellList,
    GromacsNPT,
    LammpsColloid,
    LammpsRhodopsin,
    ParticleSystem,
    SystemSpec,
)
from repro.workloads.molecular.system import COLLOID, RHODOPSIN, T4_LYSOZYME

SMALL = 0.05  # test scale: a few thousand atoms


class TestSystemSpec:
    def test_box_from_density(self):
        spec = SystemSpec(name="s", n_atoms=1000, number_density=100.0, cutoff_nm=1.0)
        assert spec.box_nm == pytest.approx((1000 / 100.0) ** (1 / 3))

    def test_scaled_preserves_density(self):
        half = RHODOPSIN.scaled(0.5)
        assert half.n_atoms == 16_000
        assert half.number_density == RHODOPSIN.number_density
        assert half.cutoff_nm == RHODOPSIN.cutoff_nm

    def test_scaled_floors_atom_count(self):
        tiny = RHODOPSIN.scaled(0.0001)
        assert tiny.n_atoms >= 256

    def test_validation(self):
        with pytest.raises(ValueError, match="n_atoms"):
            SystemSpec(name="s", n_atoms=0, number_density=1.0, cutoff_nm=1.0)
        with pytest.raises(ValueError, match="cutoff"):
            SystemSpec(name="s", n_atoms=10, number_density=1.0, cutoff_nm=0.0)
        with pytest.raises(ValueError, match="scale"):
            RHODOPSIN.scaled(0.0)


class TestParticleSystem:
    def test_positions_inside_box(self):
        system = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=1)
        assert system.positions.shape == (system.n_atoms, 3)
        assert np.all(system.positions >= 0.0)
        assert np.all(system.positions < system.box)

    def test_deterministic_given_seed(self):
        a = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=7)
        b = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=7)
        assert np.array_equal(a.positions, b.positions)

    def test_different_seed_different_positions(self):
        a = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=1)
        b = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_perturb_keeps_atoms_in_box(self):
        system = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=1)
        system.perturb(0.5)
        assert np.all(system.positions >= 0.0)
        assert np.all(system.positions < system.box)

    def test_perturb_rejects_negative(self):
        system = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=1)
        with pytest.raises(ValueError):
            system.perturb(-1.0)


class TestCellList:
    def test_pair_count_matches_density_estimate(self):
        """Uniform system: avg neighbours ~ rho * 4/3 pi r^3."""
        spec = SystemSpec(
            name="uniform", n_atoms=4000, number_density=50.0, cutoff_nm=1.0
        )
        stats = CellList(ParticleSystem(spec, seed=3)).build()
        expected = 50.0 * (4.0 / 3.0) * np.pi * 1.0 ** 3
        assert stats.avg_neighbors_per_atom == pytest.approx(expected, rel=0.15)

    def test_pairs_consistent_with_average(self):
        stats = CellList(ParticleSystem(COLLOID.scaled(SMALL), seed=0)).build()
        assert stats.avg_neighbors_per_atom == pytest.approx(
            2.0 * stats.total_pairs / stats.n_atoms
        )

    def test_clustered_system_more_imbalanced(self):
        uniform = SystemSpec(
            name="u", n_atoms=4000, number_density=50.0, cutoff_nm=1.0
        )
        clustered = SystemSpec(
            name="c", n_atoms=4000, number_density=50.0, cutoff_nm=1.0,
            solute_fraction=0.5,
        )
        cv_uniform = CellList(ParticleSystem(uniform, seed=0)).build().imbalance_cv
        cv_clustered = CellList(ParticleSystem(clustered, seed=0)).build().imbalance_cv
        assert cv_clustered > cv_uniform

    def test_sample_size_validation(self):
        system = ParticleSystem(RHODOPSIN.scaled(SMALL), seed=0)
        with pytest.raises(ValueError, match="sample_size"):
            CellList(system, sample_size=0)


class TestImbalanceDegenerateCases:
    """The ``std / mean if mean > 0 else 0.0`` division guard, pinned.

    Degenerate geometries must yield well-defined statistics — never a
    ZeroDivisionError, never a NaN leaking into kernel ILP."""

    def test_single_atom(self):
        spec = SystemSpec(
            name="one", n_atoms=1, number_density=1.0, cutoff_nm=0.5
        )
        stats = CellList(ParticleSystem(spec, seed=0)).build()
        assert stats.total_pairs == 0
        assert stats.avg_neighbors_per_atom == 0.0
        assert stats.imbalance_cv == 0.0

    def test_zero_neighbors(self):
        # Mean inter-particle spacing ~10 nm at this density; a 0.3 nm
        # cutoff leaves every sampled atom with zero neighbours, so the
        # mean hits the guard exactly.
        spec = SystemSpec(
            name="sparse", n_atoms=64, number_density=0.001, cutoff_nm=0.3
        )
        stats = CellList(ParticleSystem(spec, seed=1)).build()
        assert stats.total_pairs == 0
        assert stats.imbalance_cv == 0.0
        assert np.isfinite(stats.imbalance_cv)

    def test_sample_larger_than_n_atoms(self):
        # sample_size far above n_atoms clamps to n_atoms and must draw
        # the identical sample (same rng.choice call) as an exact-size
        # request — the oversized configuration is not a separate path.
        spec = SystemSpec(
            name="tiny", n_atoms=300, number_density=50.0, cutoff_nm=0.6
        )
        oversized = CellList(
            ParticleSystem(spec, seed=3), sample_size=10_000
        ).build()
        exact = CellList(
            ParticleSystem(spec, seed=3), sample_size=300
        ).build()
        assert oversized == exact
        assert oversized.imbalance_cv >= 0.0
        assert np.isfinite(oversized.imbalance_cv)


@pytest.fixture(scope="module")
def profiles():
    profiler = Profiler()
    return {
        w.abbr: profiler.profile(w)
        for w in (
            GromacsNPT(scale=SMALL, steps=12),
            LammpsRhodopsin(scale=SMALL, steps=12),
            LammpsColloid(scale=SMALL, steps=12),
        )
    }


class TestKernelMenus:
    """Table I structure: the distinct-kernel counts per workload."""

    def test_gms_runs_nine_kernels(self, profiles):
        assert profiles["GMS"].num_kernels == 9

    def test_lmr_runs_fifteen_kernels(self, profiles):
        assert profiles["LMR"].num_kernels == 15

    def test_lmc_runs_nine_kernels(self, profiles):
        assert profiles["LMC"].num_kernels == 9

    def test_input_sensitivity_different_kernels(self, profiles):
        """Observation #3: same code base, different kernels per input."""
        lmr = {k.name for k in profiles["LMR"].kernels}
        lmc = {k.name for k in profiles["LMC"].kernels}
        assert "pair_lj_charmm_coul_long" in lmr
        assert "pair_colloid" in lmc
        assert "pppm_make_rho" in lmr and "pppm_make_rho" not in lmc
        assert "fix_langevin" in lmc and "fix_langevin" not in lmr

    def test_shared_engine_kernels_overlap(self, profiles):
        lmr = {k.name for k in profiles["LMR"].kernels}
        lmc = {k.name for k in profiles["LMC"].kernels}
        assert "nve_integrate_initial" in lmr & lmc

    def test_gms_dominated_by_nonbonded(self, profiles):
        assert (
            profiles["GMS"].dominant_kernel.name
            == "nbnxn_kernel_ElecEw_VdwLJ_F"
        )

    def test_time_shares_normalized(self, profiles):
        for profile in profiles.values():
            assert sum(profile.time_shares().values()) == pytest.approx(1.0)


class TestScaleInvariance:
    def test_kernel_menu_stable_under_scale(self):
        small = Profiler().profile(GromacsNPT(scale=0.03, steps=8))
        larger = Profiler().profile(GromacsNPT(scale=0.08, steps=8))
        assert {k.name for k in small.kernels} == {k.name for k in larger.kernels}

    def test_more_atoms_more_instructions(self):
        small = Profiler().profile(LammpsColloid(scale=0.03, steps=8))
        larger = Profiler().profile(LammpsColloid(scale=0.08, steps=8))
        assert larger.total_warp_insts > small.total_warp_insts

    def test_steps_validation(self):
        with pytest.raises(ValueError, match="steps"):
            GromacsNPT(scale=SMALL, steps=0)
