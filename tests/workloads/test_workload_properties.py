"""Property-based tests over the whole workload inventory.

Invariants every workload model must satisfy regardless of scale and
seed: non-empty launch streams, valid kernel characteristics, a stable
kernel menu for the structured workloads, and instruction totals that
grow with scale.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiler import Profiler
from repro.workloads import get_workload, list_workloads

#: One representative per workload family (keeps the property runs
#: fast while touching every substrate).
FAMILY_REPS = ["GMS", "LMC", "GRU", "SPT", "LGT", "SGEMM", "KMEANS", "PGR"]

#: Workloads whose kernel menu must not depend on the RNG seed.
MENU_STABLE = ["GMS", "LMR", "LMC", "DCG", "NST", "RFL", "SPT", "LGT",
               "SGEMM", "LUD", "AN"]


@pytest.mark.parametrize("abbr", FAMILY_REPS)
def test_stream_is_nonempty_and_valid(abbr):
    stream = get_workload(abbr, scale=0.01, seed=0).launch_stream()
    assert len(stream) > 0
    for launch in stream:
        kernel = launch.kernel
        assert kernel.warp_insts > 0
        assert kernel.grid_blocks > 0
        assert 0 < kernel.threads_per_block <= 1024
        assert kernel.memory.unique_bytes >= 0


@pytest.mark.parametrize("abbr", MENU_STABLE)
def test_kernel_menu_seed_invariant(abbr):
    menu = lambda seed: set(  # noqa: E731
        get_workload(abbr, scale=0.02, seed=seed).launch_stream().kernel_names
    )
    assert menu(0) == menu(7)


@given(st.sampled_from(FAMILY_REPS), st.integers(0, 50))
@settings(max_examples=16, deadline=None)
def test_profiles_are_internally_consistent(abbr, seed):
    profile = Profiler().profile(get_workload(abbr, scale=0.01, seed=seed))
    assert profile.total_time_s > 0
    assert profile.num_kernels >= 1
    shares = profile.time_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    # Dominant prefix is genuinely sorted by time.
    times = [k.total_time_s for k in profile.kernels]
    assert times == sorted(times, reverse=True)


@pytest.mark.parametrize("abbr", ["GMS", "SPT", "SGEMM"])
def test_instruction_totals_grow_with_scale(abbr):
    small = get_workload(abbr, scale=0.02).launch_stream().total_warp_insts
    large = get_workload(abbr, scale=0.1).launch_stream().total_warp_insts
    assert large > 1.5 * small


def test_every_registered_workload_profiles_cleanly():
    """Smoke: all 45 registered workloads run end-to-end at tiny scale."""
    profiler = Profiler()
    count = 0
    for suite in ("Cactus", "CactusExt", "Parboil", "Rodinia", "Tango"):
        for abbr in list_workloads(suite):
            profile = profiler.profile(get_workload(abbr, scale=0.003))
            assert profile.num_kernels >= 1, abbr
            count += 1
    assert count == 45
