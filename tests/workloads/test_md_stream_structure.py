"""Structural tests on the MD launch streams (cadence and phases).

The Table-I kernel counts are covered elsewhere; these tests pin the
*temporal* structure of the streams: per-step kernel cadence, the
pruning/re-neighbouring intervals, and the phase labels the trace
export carries.
"""

from collections import Counter

import pytest

from repro.workloads.molecular import (
    GromacsNPT,
    LammpsColloid,
    LammpsRhodopsin,
)

SCALE = 0.05


class TestGromacsCadence:
    @pytest.fixture(scope="class")
    def stream(self):
        return GromacsNPT(scale=SCALE, steps=16).launch_stream()

    def test_nonbonded_runs_every_step(self, stream):
        counts = Counter(l.name for l in stream)
        assert counts["nbnxn_kernel_ElecEw_VdwLJ_F"] == 16

    def test_prune_runs_every_fourth_step(self, stream):
        counts = Counter(l.name for l in stream)
        assert counts["nbnxn_kernel_prune_rolling"] == 4  # steps 0,4,8,12

    def test_fft_runs_twice_per_step(self, stream):
        counts = Counter(l.name for l in stream)
        assert counts["pme_cufft_radix4"] == 32  # forward + inverse

    def test_phases_partition_the_step(self, stream):
        phases = {l.phase for l in stream}
        assert phases == {"force", "pme", "update"}

    def test_launches_per_step_constant_modulo_prune(self, stream):
        # 9 kernels + the extra prune on every 4th step.
        assert len(stream) == 16 * 9 + 4


class TestLammpsCadence:
    def test_lmr_reneighbors_on_interval(self):
        stream = LammpsRhodopsin(
            scale=SCALE, steps=20, reneighbor_interval=5
        ).launch_stream()
        counts = Counter(l.name for l in stream)
        # Re-neighbouring at steps 5, 10, 15.
        assert counts["neighbor_bin_atoms"] == 3
        assert counts["neighbor_build_full"] == 3

    def test_lmc_reneighbors_every_step(self):
        stream = LammpsColloid(scale=SCALE, steps=10).launch_stream()
        counts = Counter(l.name for l in stream)
        assert counts["neighbor_build_full"] == 9  # steps 1..9

    def test_lmr_bonded_terms_every_step(self):
        stream = LammpsRhodopsin(scale=SCALE, steps=8).launch_stream()
        counts = Counter(l.name for l in stream)
        for name in ("bond_harmonic", "angle_charmm",
                     "dihedral_charmm", "improper_harmonic"):
            assert counts[name] == 8

    def test_reneighboring_changes_pair_counts(self):
        """After a re-neighbour event the pair kernel's instruction
        budget reflects the perturbed geometry."""
        workload = LammpsColloid(scale=SCALE, steps=6,
                                 reneighbor_interval=2)
        stream = workload.launch_stream()
        pair_insts = [
            l.kernel.warp_insts
            for l in stream
            if l.name == "pair_colloid"
        ]
        assert len(set(round(x) for x in pair_insts)) > 1

    def test_validation(self):
        with pytest.raises(ValueError, match="steps"):
            LammpsRhodopsin(scale=SCALE, steps=0)
