"""Differential tests for the vectorized MD stream-generation hot path.

``CellList.build`` was rewritten around a compiled cell-list pair
counter with position-version caching, ``ParticleSystem.perturb`` went
in-place, the kernel builders are memoized, and the three MD workload
loops hoist stream-invariant kernels — all under the same bit-for-bit
contract PR 3 established for the graph engine: every launch stream,
and therefore every pinned digest, must be identical to the original
implementation.  Enforced three ways:

1. ``_legacy_build`` / ``_legacy_perturb`` — the pre-vectorization
   ``CellList.build`` and ``ParticleSystem.perturb`` verbatim — compared
   against the production path for every MD system at every preset
   scale, including the RNG end state (the digests pin the
   ``rng.choice`` consumption order);
2. end-to-end legacy stream drivers (``_legacy_step_*`` replayed by
   ``_legacy_stream``) — the original per-step loops with per-step
   kernel construction — compared by stream digest across cadences;
3. hypothesis property tests of the pair counts themselves (brute-force
   periodic min-image agreement, symmetry, permutation invariance)
   which hold on the compiled path and the scipy fallback alike.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial import cKDTree

from repro.core.config import LAPTOP_SCALE, OBSERVATION_SCALE, PAPER_SCALE
from repro.gpu.digest import launch_stream_digest
from repro.gpu.kernel import LaunchStream
from repro.workloads.molecular import (
    CellList,
    GromacsNPT,
    LammpsColloid,
    LammpsRhodopsin,
    NeighborStats,
    ParticleSystem,
    SystemSpec,
    cellkernel,
    forces,
)
from repro.workloads.molecular.gromacs import _PME_SPACING_NM
from repro.workloads.molecular.system import COLLOID, RHODOPSIN, T4_LYSOZYME

#: The MD scales the three presets actually use (deduplicated —
#: observation and paper share the full-size molecular systems).
PRESET_SCALES = sorted(
    {
        preset.for_workload("GMS")
        for preset in (LAPTOP_SCALE, OBSERVATION_SCALE, PAPER_SCALE)
    }
)


# ---------------------------------------------------------------------------
# Legacy reference implementations (the pre-vectorization code, verbatim
# modulo variable names).  These define what "unchanged behaviour" means.
# ---------------------------------------------------------------------------

def _legacy_build(system, sample_size=512):
    """The original ``CellList.build``: fresh KD-tree + per-atom loop."""
    cutoff = system.spec.cutoff_nm
    tree = cKDTree(system.positions, boxsize=system.box)
    ordered = tree.count_neighbors(tree, cutoff)
    total_pairs = int((ordered - system.n_atoms) // 2)
    avg = 2.0 * total_pairs / system.n_atoms

    n_sample = min(sample_size, system.n_atoms)
    sample_idx = system.rng.choice(
        system.n_atoms, size=n_sample, replace=False
    )
    per_atom = np.array(
        [
            len(tree.query_ball_point(system.positions[i], cutoff)) - 1
            for i in sample_idx
        ],
        dtype=np.float64,
    )
    mean = float(per_atom.mean()) if per_atom.size else 0.0
    std = float(per_atom.std()) if per_atom.size else 0.0
    cv = std / mean if mean > 0 else 0.0

    return NeighborStats(
        n_atoms=system.n_atoms,
        total_pairs=total_pairs,
        avg_neighbors_per_atom=avg,
        imbalance_cv=cv,
    )


def _legacy_perturb(system, displacement_nm):
    """The original ``ParticleSystem.perturb``: rebinding, no version."""
    step = system.rng.normal(0.0, displacement_nm, size=system.positions.shape)
    system.positions = np.mod(system.positions + step, system.box)


def _legacy_stream(workload, step_fn, displacement_nm):
    """The original workload loop shape: rebuild stats via the legacy
    path on re-neighbour steps, then emit one step's launches."""
    system = ParticleSystem(workload.spec, seed=workload.seed)
    stats = _legacy_build(system)
    stream = LaunchStream()
    for step in range(workload.steps):
        if step > 0 and step % workload.reneighbor_interval == 0:
            _legacy_perturb(system, displacement_nm)
            stats = _legacy_build(system)
        step_fn(workload, stream, system, stats, step)
    return stream


def _legacy_step_gms(workload, stream, system, stats, step):
    """One GMS step, verbatim: per-step kernel construction."""
    n_atoms = workload.spec.n_atoms
    grid_dim = max(16, math.ceil(system.box / _PME_SPACING_NM))
    grid_points = grid_dim ** 3
    n_bonded = int(n_atoms * workload.spec.bonded_terms_per_atom)
    n_constraints = int(n_atoms * 0.6)

    stream.launch(
        forces.nonbonded_pair_kernel(
            "nbnxn_kernel_ElecEw_VdwLJ_F",
            n_atoms,
            stats.total_pairs,
            thread_insts_per_pair=145.0,
            imbalance_cv=stats.imbalance_cv,
        ),
        phase="force",
    )
    if step % 4 == 0:
        stream.launch(
            forces.pairlist_prune_kernel(
                "nbnxn_kernel_prune_rolling",
                n_atoms,
                stats.total_pairs * 3,
                thread_insts_per_pair=40.0,
            ),
            phase="force",
        )
    stream.launch(
        forces.charge_spread_kernel(
            "pme_spline_and_spread", n_atoms, grid_points
        ),
        phase="pme",
    )
    stream.launch(
        forces.fft_3d_kernel("pme_cufft_radix4", grid_points), phase="pme"
    )
    stream.launch(
        forces.poisson_solve_kernel("pme_solve", grid_points), phase="pme"
    )
    stream.launch(
        forces.fft_3d_kernel("pme_cufft_radix4", grid_points), phase="pme"
    )
    stream.launch(
        forces.force_gather_kernel("pme_gather", n_atoms, grid_points),
        phase="pme",
    )
    stream.launch(
        forces.bonded_kernel("bonded_forces", n_bonded, n_atoms),
        phase="force",
    )
    stream.launch(
        forces.integrate_kernel(
            "leapfrog_integrator_npt", n_atoms, thread_insts_per_atom=45.0
        ),
        phase="update",
    )
    stream.launch(
        forces.constraint_kernel("lincs_constraints", n_constraints),
        phase="update",
    )


def _legacy_step_lmr(workload, stream, system, stats, step):
    """One LMR step, verbatim: per-step kernel construction."""
    n_atoms = workload.spec.n_atoms
    grid_dim = max(12, math.ceil(system.box / 0.22))
    grid_points = grid_dim ** 3
    n_bonds = int(n_atoms * 0.72)
    n_angles = int(n_atoms * 0.55)
    n_dihedrals = int(n_atoms * 0.62)
    n_impropers = int(n_atoms * 0.12)
    n_halo = int(n_atoms * 0.10)
    reneighbor = step > 0 and step % workload.reneighbor_interval == 0

    stream.launch(
        forces.integrate_kernel(
            "nve_integrate_initial",
            n_atoms,
            thread_insts_per_atom=20.0,
            bytes_read_per_atom=28.0,
            bytes_written_per_atom=16.0,
        ),
        phase="update",
    )
    stream.launch(
        forces.halo_exchange_kernel("comm_forward_comm", n_halo),
        phase="comm",
    )
    if reneighbor:
        stream.launch(
            forces.neighbor_bin_kernel("neighbor_bin_atoms", n_atoms),
            phase="neighbor",
        )
        stream.launch(
            forces.neighbor_build_kernel(
                "neighbor_build_full",
                n_atoms,
                stats.total_pairs,
                candidate_ratio=4.4,
            ),
            phase="neighbor",
        )
    stream.launch(
        forces.nonbonded_pair_kernel(
            "pair_lj_charmm_coul_long",
            n_atoms,
            stats.total_pairs,
            thread_insts_per_pair=200.0,
            imbalance_cv=stats.imbalance_cv,
            pairlist_bytes_per_pair=4.0,
        ),
        phase="force",
    )
    stream.launch(
        forces.charge_spread_kernel(
            "pppm_make_rho", n_atoms, grid_points, spline_order=5
        ),
        phase="pppm",
    )
    stream.launch(
        forces.fft_3d_kernel("pppm_fft_forward", grid_points), phase="pppm"
    )
    stream.launch(
        forces.poisson_solve_kernel("pppm_poisson_solve", grid_points),
        phase="pppm",
    )
    stream.launch(
        forces.fft_3d_kernel("pppm_fft_back", grid_points), phase="pppm"
    )
    stream.launch(
        forces.force_gather_kernel(
            "pppm_fieldforce", n_atoms, grid_points, spline_order=5
        ),
        phase="pppm",
    )
    stream.launch(
        forces.bonded_kernel(
            "bond_harmonic", n_bonds, n_atoms, thread_insts_per_term=60.0
        ),
        phase="force",
    )
    stream.launch(
        forces.bonded_kernel(
            "angle_charmm", n_angles, n_atoms, thread_insts_per_term=110.0
        ),
        phase="force",
    )
    stream.launch(
        forces.bonded_kernel(
            "dihedral_charmm", n_dihedrals, n_atoms,
            thread_insts_per_term=160.0,
        ),
        phase="force",
    )
    stream.launch(
        forces.bonded_kernel(
            "improper_harmonic", n_impropers, n_atoms,
            thread_insts_per_term=120.0,
        ),
        phase="force",
    )
    stream.launch(
        forces.integrate_kernel(
            "nve_integrate_final",
            n_atoms,
            thread_insts_per_atom=14.0,
            bytes_read_per_atom=20.0,
            bytes_written_per_atom=12.0,
        ),
        phase="update",
    )


def _legacy_step_lmc(workload, stream, system, stats, step):
    """One LMC step, verbatim: per-step kernel construction."""
    n_atoms = workload.spec.n_atoms
    n_halo = int(n_atoms * 0.08)
    reneighbor = step > 0 and step % workload.reneighbor_interval == 0

    stream.launch(
        forces.integrate_kernel(
            "nve_integrate_initial",
            n_atoms,
            thread_insts_per_atom=20.0,
            bytes_read_per_atom=28.0,
            bytes_written_per_atom=16.0,
        ),
        phase="update",
    )
    stream.launch(
        forces.halo_exchange_kernel("comm_forward_comm", n_halo),
        phase="comm",
    )
    if reneighbor:
        stream.launch(
            forces.neighbor_bin_kernel("neighbor_bin_atoms", n_atoms),
            phase="neighbor",
        )
        stream.launch(
            forces.neighbor_build_kernel(
                "neighbor_build_full",
                n_atoms,
                stats.total_pairs,
                candidate_ratio=4.4,
            ),
            phase="neighbor",
        )
    stream.launch(
        forces.nonbonded_pair_kernel(
            "pair_colloid",
            n_atoms,
            stats.total_pairs,
            thread_insts_per_pair=900.0,
            imbalance_cv=stats.imbalance_cv,
            pairlist_bytes_per_pair=4.0,
        ),
        phase="force",
    )
    stream.launch(
        forces.integrate_kernel(
            "fix_langevin",
            n_atoms,
            thread_insts_per_atom=90.0,
            bytes_read_per_atom=76.0,
            bytes_written_per_atom=40.0,
        ),
        phase="update",
    )
    stream.launch(
        forces.integrate_kernel(
            "nve_integrate_final",
            n_atoms,
            thread_insts_per_atom=14.0,
            bytes_read_per_atom=20.0,
            bytes_written_per_atom=12.0,
        ),
        phase="update",
    )
    stream.launch(
        forces.halo_exchange_kernel("comm_reverse_comm", n_halo),
        phase="comm",
    )
    if step % 5 == 0:
        stream.launch(
            forces.reduction_kernel("thermo_temp_compute", n_atoms),
            phase="output",
        )


_LEGACY = {
    GromacsNPT: (_legacy_step_gms, 0.01),
    LammpsRhodopsin: (_legacy_step_lmr, 0.01),
    LammpsColloid: (_legacy_step_lmc, 0.05),
}


def _brute_force_counts(positions, box, cutoff):
    """O(n^2) periodic min-image reference: (total pairs, per-atom)."""
    delta = positions[:, None, :] - positions[None, :, :]
    delta -= box * np.round(delta / box)
    d2 = np.einsum("ijk,ijk->ij", delta, delta)
    within = d2 <= cutoff * cutoff
    np.fill_diagonal(within, False)
    per_atom = within.sum(axis=1)
    return int(per_atom.sum()) // 2, per_atom


# ---------------------------------------------------------------------------
# CellList differentials vs the legacy build, at every preset scale
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scale", PRESET_SCALES)
@pytest.mark.parametrize(
    "spec", [T4_LYSOZYME, RHODOPSIN, COLLOID], ids=["GMS", "LMR", "LMC"]
)
def test_cell_list_build_matches_legacy(spec, scale):
    """Identical stats AND identical RNG consumption for every MD system
    at every preset scale (laptop 0.1; observation == paper at 1.0)."""
    scaled = spec.scaled(scale)
    new_system = ParticleSystem(scaled, seed=2)
    old_system = ParticleSystem(scaled, seed=2)
    assert CellList(new_system).build() == _legacy_build(old_system)
    # The digests pin the rng.choice consumption order: both paths must
    # leave the generator in the same state.
    assert new_system.rng.integers(2**63) == old_system.rng.integers(2**63)


@pytest.mark.parametrize(
    "spec", [T4_LYSOZYME, RHODOPSIN, COLLOID], ids=["GMS", "LMR", "LMC"]
)
def test_cached_rebuilds_replay_rng_like_legacy(spec):
    """Repeated builds between perturbations serve counts from the cache
    but must still redraw the imbalance sample — the exact scenario the
    position-version cache could silently break."""
    scaled = spec.scaled(0.05)
    new_system = ParticleSystem(scaled, seed=7)
    old_system = ParticleSystem(scaled, seed=7)
    cell_list = CellList(new_system)
    for _ in range(3):  # same geometry: cache hits after the first
        assert cell_list.build() == _legacy_build(old_system)
    new_system.perturb(0.02)
    _legacy_perturb(old_system, 0.02)
    np.testing.assert_array_equal(new_system.positions, old_system.positions)
    assert cell_list.build() == _legacy_build(old_system)
    assert new_system.rng.integers(2**63) == old_system.rng.integers(2**63)


def test_scipy_fallback_matches_compiled_path():
    """With the compiled kernel disabled, the KD-tree fallback (with its
    vectorized sampling) produces identical stats and RNG state."""
    scaled = T4_LYSOZYME.scaled(0.05)
    fast_system = ParticleSystem(scaled, seed=5)
    fast = CellList(fast_system).build()

    previous = os.environ.get(cellkernel.ENV_DISABLE)
    os.environ[cellkernel.ENV_DISABLE] = "1"
    cellkernel.reset_kernel_cache()
    try:
        slow_system = ParticleSystem(scaled, seed=5)
        slow = CellList(slow_system).build()
    finally:
        if previous is None:
            os.environ.pop(cellkernel.ENV_DISABLE, None)
        else:
            os.environ[cellkernel.ENV_DISABLE] = previous
        cellkernel.reset_kernel_cache()

    assert fast == slow
    assert fast_system.rng.integers(2**63) == slow_system.rng.integers(2**63)


def test_cutoff_band_pair_falls_back_to_reference():
    """A pair at exactly the cutoff lands in the ambiguity band: the
    compiled sweep must report it and CellList must re-count via the
    KD-tree, agreeing with the legacy build."""
    spec = SystemSpec(
        name="band", n_atoms=4, number_density=0.0625, cutoff_nm=1.0
    )  # box = 4 nm
    positions = np.array(
        [
            [0.5, 0.5, 0.5],
            [1.5, 0.5, 0.5],  # exactly cutoff from atom 0
            [3.2, 3.2, 3.2],
            [3.2, 3.2, 2.6],  # 0.6 nm from atom 2: unambiguous pair
        ]
    )
    counts = cellkernel.count_pairs_exact(positions, spec.box_nm, 1.0)
    if counts is not None:
        assert counts.band_pairs == 1
        assert counts.total_pairs == 1  # only the unambiguous pair

    new_system = ParticleSystem(spec, seed=0)
    new_system.set_positions(positions)
    old_system = ParticleSystem(spec, seed=0)
    old_system.set_positions(positions)
    assert CellList(new_system).build() == _legacy_build(old_system)


# ---------------------------------------------------------------------------
# End-to-end stream differentials: hoisted loops vs the original drivers
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "kwargs",
    [
        {},  # default cadence (the pinned-digest configuration)
        {"steps": 13, "reneighbor_interval": 3},
        {"steps": 6, "reneighbor_interval": 1},
    ],
    ids=["default", "interval3", "interval1"],
)
@pytest.mark.parametrize(
    "cls", [GromacsNPT, LammpsRhodopsin, LammpsColloid],
    ids=["GMS", "LMR", "LMC"],
)
def test_stream_digest_matches_legacy_driver(cls, kwargs):
    scale = LAPTOP_SCALE.for_workload("GMS")
    workload = cls(scale=scale, seed=3, **kwargs)
    step_fn, displacement = _LEGACY[cls]
    legacy = _legacy_stream(workload, step_fn, displacement)
    current = cls(scale=scale, seed=3, **kwargs).launch_stream()
    assert len(current) == len(legacy)
    assert launch_stream_digest(current) == launch_stream_digest(legacy)


# ---------------------------------------------------------------------------
# Property tests: the pair counts themselves
# ---------------------------------------------------------------------------

@st.composite
def _small_systems(draw):
    n = draw(st.integers(4, 180))
    density = draw(st.floats(0.5, 60.0))
    cutoff = draw(st.floats(0.2, 1.5))
    solute = draw(st.sampled_from([0.0, 0.4]))
    seed = draw(st.integers(0, 2**31 - 1))
    spec = SystemSpec(
        name="prop",
        n_atoms=n,
        number_density=density,
        cutoff_nm=cutoff,
        solute_fraction=solute,
    )
    return ParticleSystem(spec, seed=seed)


@given(system=_small_systems())
@settings(max_examples=40, deadline=None)
def test_pair_count_matches_brute_force(system):
    """Exact agreement with an O(n^2) periodic min-image count — on
    whichever path (compiled or KD-tree) the geometry selects."""
    expected, _ = _brute_force_counts(
        system.positions, system.box, system.spec.cutoff_nm
    )
    stats = CellList(system).build()
    assert stats.total_pairs == expected
    assert stats.total_pairs >= 0
    assert stats.avg_neighbors_per_atom == pytest.approx(
        2.0 * expected / system.n_atoms
    )


@given(system=_small_systems())
@settings(max_examples=40, deadline=None)
def test_compiled_per_atom_counts_symmetric_and_exact(system):
    """Compiled sweep: per-atom counts are non-negative, sum to twice
    the pair count (every pair has two ends), and match brute force."""
    counts = cellkernel.count_pairs_exact(
        system.positions, system.box, system.spec.cutoff_nm
    )
    if counts is None:
        return  # geometry unsupported (box too small) or no compiler
    assert np.all(counts.per_atom >= 0)
    assert int(counts.per_atom.sum()) == 2 * counts.total_pairs
    if counts.band_pairs == 0:
        expected_pairs, expected_per_atom = _brute_force_counts(
            system.positions, system.box, system.spec.cutoff_nm
        )
        assert counts.total_pairs == expected_pairs
        np.testing.assert_array_equal(counts.per_atom, expected_per_atom)


@given(system=_small_systems(), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_pair_count_invariant_under_atom_permutation(system, seed):
    """Relabelling atoms permutes the per-atom counts and leaves the
    pair count unchanged."""
    perm = np.random.default_rng(seed).permutation(system.n_atoms)
    cutoff = system.spec.cutoff_nm
    base = cellkernel.count_pairs_exact(system.positions, system.box, cutoff)
    permuted = cellkernel.count_pairs_exact(
        np.ascontiguousarray(system.positions[perm]), system.box, cutoff
    )
    if base is not None and permuted is not None:
        assert permuted.total_pairs == base.total_pairs
        np.testing.assert_array_equal(permuted.per_atom, base.per_atom[perm])

    # The full build agrees on the permutation-invariant statistics
    # through either path (the imbalance sample depends on labels).
    twin = ParticleSystem(system.spec, seed=0)
    twin.set_positions(system.positions[perm])
    original = ParticleSystem(system.spec, seed=0)
    original.set_positions(system.positions)
    a = CellList(original).build()
    b = CellList(twin).build()
    assert a.total_pairs == b.total_pairs
    assert a.avg_neighbors_per_atom == b.avg_neighbors_per_atom


# ---------------------------------------------------------------------------
# Satellites: position versioning and grid selection
# ---------------------------------------------------------------------------

def test_position_version_tracks_mutations():
    system = ParticleSystem(RHODOPSIN.scaled(0.01), seed=1)
    assert system.position_version == 0
    system.perturb(0.01)
    assert system.position_version == 1
    system.set_positions(system.positions[::-1])
    assert system.position_version == 2
    with pytest.raises(ValueError, match="shape"):
        system.set_positions(np.zeros((3, 3)))
    with pytest.raises(ValueError, match="box"):
        system.set_positions(np.full((system.n_atoms, 3), system.box * 2))


def test_cache_invalidated_by_perturbation():
    system = ParticleSystem(T4_LYSOZYME.scaled(0.02), seed=4)
    cell_list = CellList(system)
    before = cell_list.build()
    system.perturb(0.5)  # large kick: geometry genuinely changes
    after = cell_list.build()
    assert after.total_pairs != before.total_pairs


def test_grid_selection_bounds():
    # Box below three cells per edge: unsupported, fall back.
    assert cellkernel._choose_grid(box=1.0, cutoff=0.5, n_atoms=100) is None
    grid = cellkernel._choose_grid(box=10.0, cutoff=1.0, n_atoms=10_000)
    assert grid is not None
    srad, nc = grid
    assert nc >= 2 * srad + 1
    # The cell edge never drops below cutoff/srad (no missed pairs).
    assert 10.0 / nc >= 1.0 / srad
