"""Tests for the ML workload substrate (framework + the five models)."""

import pytest

from repro.gpu import RTX_3080
from repro.profiler import Profiler
from repro.workloads.ml import (
    DCGANTraining,
    LanguageTranslationTraining,
    NeuralStyleTraining,
    ReinforcementLearningTraining,
    SpatialTransformerTraining,
    TensorSpec,
    Trace,
)
from repro.gpu.kernel import LaunchStream
from repro.workloads.ml import kernels as K
from repro.workloads.ml.layers import (
    LSTM,
    Activation,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    Sequential,
)
from repro.workloads.ml.optimizers import SGD, Adam


class TestTensorSpec:
    def test_numel_and_bytes(self):
        t = TensorSpec((2, 3, 4))
        assert t.numel == 24
        assert t.bytes == 96

    def test_reshape_with_wildcard(self):
        t = TensorSpec((2, 3, 4)).reshape(2, -1)
        assert t.shape == (2, 12)

    def test_reshape_rejects_mismatch(self):
        with pytest.raises(ValueError):
            TensorSpec((2, 3)).reshape(4, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TensorSpec((0, 3))
        with pytest.raises(ValueError):
            TensorSpec(())


class TestKernelLowering:
    def test_gemm_tile_names_shape_dependent(self):
        small = K.gemm_kernel(16, 16, 64)
        large = K.gemm_kernel(4096, 4096, 4096)
        assert small.name != large.name
        assert small.name.startswith("ampere_sgemm_")

    def test_gemm_flops_counted(self):
        kernel = K.gemm_kernel(128, 128, 128)
        fmas = 128 ** 3
        assert kernel.warp_insts == pytest.approx(fmas * 1.25 / 32)

    def test_gemm_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            K.gemm_kernel(0, 4, 4)

    def test_conv_algorithm_selection(self):
        winograd = K.conv2d_forward_kernel(32, 64, 32, 32, 64, 3, 1)
        assert "winograd" in winograd.name
        implicit = K.conv2d_forward_kernel(32, 64, 32, 32, 64, 4, 2)
        assert "convolve_sgemm" in implicit.name
        pointwise = K.conv2d_forward_kernel(32, 64, 32, 32, 64, 1, 1)
        assert pointwise.name.startswith("ampere_sgemm")

    def test_conv_names_encode_channels(self):
        a = K.conv2d_forward_kernel(32, 64, 32, 32, 64, 4, 2)
        b = K.conv2d_forward_kernel(32, 128, 32, 32, 64, 4, 2)
        assert a.name != b.name

    def test_tiny_conv_uses_explicit_engine(self):
        tiny = K.conv2d_forward_kernel(1, 4, 20, 20, 32, 8, 4)
        assert tiny.name.startswith("explicit_convolve_sgemm")

    def test_compute_kernels_are_compute_intensive(self):
        from repro.gpu import GPUSimulator

        metrics = GPUSimulator().run_kernel(K.gemm_kernel(2048, 2048, 2048))
        assert metrics.instruction_intensity > RTX_3080.roofline_elbow

    def test_streaming_kernels_are_memory_intensive(self):
        from repro.gpu import GPUSimulator

        metrics = GPUSimulator().run_kernel(
            K.elementwise_kernel("relu", 64e6)
        )
        assert metrics.instruction_intensity < RTX_3080.roofline_elbow

    def test_small_working_sets_carry_in_l2(self):
        assert K._carry_in(100_000.0) > K._carry_in(100_000_000.0)


class TestLayersAndAutograd:
    def _run(self, module, shape):
        stream = LaunchStream()
        trace = Trace(stream)
        out = module(trace, TensorSpec(shape))
        trace.backward()
        return out, stream

    def test_conv_shapes_and_backward(self):
        out, stream = self._run(Conv2d(3, 16, 4, stride=2), (8, 3, 32, 32))
        assert out.shape == (8, 16, 16, 16)
        names = " ".join(stream.kernel_names)
        assert "dgrad" in names and "wgrad" in names

    def test_conv_channel_mismatch_rejected(self):
        with pytest.raises(ValueError, match="channels"):
            self._run(Conv2d(3, 16, 3), (8, 4, 32, 32))

    def test_linear_backward_emits_two_gemms(self):
        _, stream = self._run(Linear(64, 32), (16, 64))
        gemms = [n for n in (l.name for l in stream) if "sgemm" in n]
        assert len(gemms) == 3  # forward + dX + dW

    def test_sequential_parameter_count(self):
        net = Sequential(Conv2d(3, 8, 3), BatchNorm2d(8), Linear(8, 4))
        assert net.parameter_count == (8 * 3 * 9 + 8) + 16 + (8 * 4 + 4)

    def test_no_grad_suppresses_backward(self):
        stream = LaunchStream()
        trace = Trace(stream)
        layer = Activation("relu")
        with trace.no_grad():
            layer(trace, TensorSpec((4, 8)))
        before = len(stream)
        trace.backward()
        assert len(stream) == before

    def test_maxpool_halves_spatial(self):
        out, _ = self._run(MaxPool2d(2), (4, 8, 16, 16))
        assert out.shape == (4, 8, 8, 8)

    def test_lstm_emits_per_step_kernels(self):
        _, stream = self._run(LSTM(32, 64), (5, 8, 32))
        pointwise = [l for l in stream if "lstm_cell" in l.name]
        assert len(pointwise) == 10  # 5 forward + 5 backward steps

    def test_activation_validation(self):
        with pytest.raises(ValueError):
            Activation("swish")


class TestOptimizers:
    def test_adam_six_kernel_sequence(self):
        stream = LaunchStream()
        Adam(1000).step(Trace(stream))
        assert len(stream) == 6

    def test_sgd_three_kernel_sequence(self):
        stream = LaunchStream()
        SGD(1000).step(Trace(stream))
        assert len(stream) == 3

    def test_zero_grad(self):
        stream = LaunchStream()
        SGD(1000).zero_grad(Trace(stream))
        assert stream[0].name == "tensor_apply_zero"

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam(0)


@pytest.fixture(scope="module")
def ml_profiles():
    profiler = Profiler()
    return {
        w.abbr: profiler.profile(w)
        for w in (
            DCGANTraining(scale=1.0, iterations=6),
            NeuralStyleTraining(scale=1.0, iterations=6),
            ReinforcementLearningTraining(scale=1.0, iterations=6),
            SpatialTransformerTraining(scale=1.0, iterations=6),
            LanguageTranslationTraining(scale=1.0, iterations=4),
        )
    }


class TestTableIKernelCounts:
    """The distinct-kernel counts of Table I, matched exactly."""

    @pytest.mark.parametrize(
        "abbr,expected",
        [("DCG", 50), ("NST", 44), ("RFL", 50), ("SPT", 37), ("LGT", 66)],
    )
    def test_kernel_count(self, ml_profiles, abbr, expected):
        assert ml_profiles[abbr].num_kernels == expected

    def test_ml_needs_many_kernels_for_70_percent(self, ml_profiles):
        """Observation #1: a dozen-ish kernels cover 70% for ML apps."""
        for profile in ml_profiles.values():
            assert profile.num_kernels_for_fraction(0.70) >= 6

    def test_lgt_has_largest_menu(self, ml_profiles):
        lgt = ml_profiles["LGT"].num_kernels
        assert all(
            lgt >= p.num_kernels for p in ml_profiles.values()
        )


class TestRooflineShape:
    def test_ml_mostly_memory_intensive(self, ml_profiles):
        """Observation #5: ML apps are memory-side in aggregate, with SPT
        the only exception (close to the boundary)."""
        elbow = RTX_3080.roofline_elbow
        for abbr, profile in ml_profiles.items():
            if abbr == "SPT":
                assert profile.instruction_intensity > elbow * 0.8
            else:
                assert profile.instruction_intensity < elbow

    def test_kernels_span_both_sides(self, ml_profiles):
        """Observation #7: every ML app mixes compute- and
        memory-intensive kernels."""
        elbow = RTX_3080.roofline_elbow
        for profile in ml_profiles.values():
            sides = {
                k.instruction_intensity > elbow for k in profile.kernels
            }
            assert sides == {True, False}

    def test_lgt_dominant_kernel_memory_bound(self, ml_profiles):
        """Observation #7: only LGT's top kernel is memory-intensive."""
        elbow = RTX_3080.roofline_elbow
        assert (
            ml_profiles["LGT"].dominant_kernel.metrics.instruction_intensity
            < elbow
        )

    def test_dominant_kernels_near_memory_roof(self, ml_profiles):
        """Observation #8: several ML dominant kernels are pinned to the
        DRAM-bandwidth roof."""
        near_roof = 0
        for profile in ml_profiles.values():
            for kernel in profile.dominant_kernels:
                roof = (
                    kernel.instruction_intensity * RTX_3080.peak_gtxn_per_s
                )
                if (
                    kernel.instruction_intensity < RTX_3080.roofline_elbow
                    and kernel.gips > 0.6 * roof
                ):
                    near_roof += 1
        assert near_roof >= 3


class TestDeterminismAndScaling:
    def test_same_seed_same_stream(self):
        a = DCGANTraining(scale=0.25, iterations=2).launch_stream()
        b = DCGANTraining(scale=0.25, iterations=2).launch_stream()
        assert [l.name for l in a] == [l.name for l in b]
        assert a.total_warp_insts == b.total_warp_insts

    def test_scale_shrinks_batch_and_work(self):
        full = DCGANTraining(scale=1.0, iterations=2)
        half = DCGANTraining(scale=0.5, iterations=2)
        assert half.batch == full.batch // 2
        assert (
            half.launch_stream().total_warp_insts
            < full.launch_stream().total_warp_insts
        )

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            DCGANTraining(iterations=0)
