"""Tests for the benchmark suites and the registry (Tables I & III)."""

import pytest

from repro.gpu import RTX_3080
from repro.profiler import Profiler
from repro.workloads import (
    cactus_workloads,
    get_workload,
    list_workloads,
    prt_workloads,
)
from repro.workloads.base import WorkloadInfo
from repro.workloads.suites import BottomUpBenchmark, KernelSpec


class TestRegistry:
    def test_cactus_has_ten_workloads(self):
        assert len(list_workloads("Cactus")) == 10

    def test_prt_suite_sizes_match_table3(self):
        assert len(list_workloads("Parboil")) == 11
        assert len(list_workloads("Rodinia")) == 18
        assert len(list_workloads("Tango")) == 3

    def test_get_workload_by_abbr(self):
        workload = get_workload("GMS", scale=0.05)
        assert workload.abbr == "GMS"
        assert workload.suite == "Cactus"

    def test_get_workload_case_insensitive(self):
        assert get_workload("gms", scale=0.05).abbr == "GMS"

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("NOPE")

    def test_unknown_suite_rejected(self):
        with pytest.raises(KeyError, match="unknown suite"):
            list_workloads("SPEC")

    def test_cactus_order_matches_table1(self):
        abbrs = [w.abbr for w in cactus_workloads(scale=0.01)]
        assert abbrs == [
            "GMS", "LMR", "LMC", "GST", "GRU",
            "DCG", "NST", "RFL", "SPT", "LGT",
        ]


class TestKernelSpecValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            KernelSpec("k", "weird")

    def test_bad_costs_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("k", "stream", elems=0.0)
        with pytest.raises(ValueError):
            KernelSpec("k", "stream", repeats=0)

    def test_benchmark_needs_kernels(self):
        info = WorkloadInfo(name="x", abbr="X", suite="s", domain="d")
        with pytest.raises(ValueError, match="at least one kernel"):
            BottomUpBenchmark(info, problem_size=1000, kernels=[])


@pytest.fixture(scope="module")
def prt_profiles():
    profiler = Profiler()
    return {w.abbr: profiler.profile(w) for w in prt_workloads(scale=0.5)}


class TestFig2TimeDistribution:
    """Fig. 2: the bottom-up suites' dominance structure."""

    def test_dominance_split_matches_paper(self, prt_profiles):
        counts = {1: 0, 2: 0, 3: 0}
        for profile in prt_profiles.values():
            k70 = min(3, profile.num_kernels_for_fraction(0.70))
            counts[k70] += 1
        assert counts[1] == 23
        assert counts[2] == 7
        assert counts[3] == 2

    def test_three_kernel_workloads_are_lud_and_an(self, prt_profiles):
        three = {
            abbr
            for abbr, p in prt_profiles.items()
            if p.num_kernels_for_fraction(0.70) >= 3
        }
        assert three == {"LUD", "AN"}

    def test_kernel_counts_small(self, prt_profiles):
        """Bottom-up benchmarks run one to three kernels."""
        for profile in prt_profiles.values():
            assert 1 <= profile.num_kernels <= 3


class TestFig4Roofline:
    """Fig. 4: unambiguous behaviour, with two named exceptions."""

    def test_only_lud_and_an_mixed(self, prt_profiles):
        elbow = RTX_3080.roofline_elbow
        mixed = {
            abbr
            for abbr, p in prt_profiles.items()
            if len({k.instruction_intensity > elbow for k in p.kernels}) > 1
        }
        assert mixed == {"LUD", "AN"}

    @pytest.mark.parametrize(
        "abbr", ["SGEMM", "CUTCP", "TPACF", "BTREE", "RN", "SN", "LAVAMD"]
    )
    def test_compute_side_benchmarks(self, prt_profiles, abbr):
        elbow = RTX_3080.roofline_elbow
        assert prt_profiles[abbr].instruction_intensity > elbow

    @pytest.mark.parametrize(
        "abbr", ["P-BFS", "HISTO", "LBM", "SPMV", "KMEANS", "SRAD", "STENCIL"]
    )
    def test_memory_side_benchmarks(self, prt_profiles, abbr):
        elbow = RTX_3080.roofline_elbow
        assert prt_profiles[abbr].instruction_intensity < elbow

    def test_an_is_two_compute_one_memory(self, prt_profiles):
        elbow = RTX_3080.roofline_elbow
        sides = sorted(
            k.instruction_intensity > elbow
            for k in prt_profiles["AN"].kernels
        )
        assert sides == [False, True, True]
