"""Tests for the MD kernel builders (cost-model sanity)."""

import pytest

from repro.gpu import GPUSimulator, RTX_3080
from repro.workloads.molecular import forces


SIM = GPUSimulator()
ELBOW = RTX_3080.roofline_elbow


class TestNonbondedKernel:
    def test_instructions_scale_with_pairs(self):
        small = forces.nonbonded_pair_kernel("nb", 1000, 10_000)
        large = forces.nonbonded_pair_kernel("nb", 1000, 100_000)
        assert large.warp_insts == pytest.approx(10 * small.warp_insts)

    def test_compute_intensive_at_md_densities(self):
        kernel = forces.nonbonded_pair_kernel(
            "nb", 32_000, 32_000 * 200, thread_insts_per_pair=100.0
        )
        metrics = SIM.run_kernel(kernel)
        assert metrics.instruction_intensity > ELBOW

    def test_imbalance_lowers_ilp(self):
        balanced = forces.nonbonded_pair_kernel("nb", 1000, 10_000,
                                                imbalance_cv=0.0)
        skewed = forces.nonbonded_pair_kernel("nb", 1000, 10_000,
                                              imbalance_cv=1.0)
        assert skewed.ilp < balanced.ilp


class TestPMEPipeline:
    def test_spread_is_memory_intensive(self):
        kernel = forces.charge_spread_kernel("spread", 32_000, 64 ** 3)
        metrics = SIM.run_kernel(kernel)
        assert metrics.instruction_intensity < ELBOW

    def test_solve_is_streaming(self):
        kernel = forces.poisson_solve_kernel("solve", 64 ** 3)
        metrics = SIM.run_kernel(kernel)
        assert metrics.instruction_intensity < ELBOW
        assert metrics.memory_stall > metrics.sync_stall

    def test_fft_work_superlinear_in_grid(self):
        small = forces.fft_3d_kernel("fft", 32 ** 3)
        large = forces.fft_3d_kernel("fft", 64 ** 3)
        # N log N: 8x the points -> more than 8x the instructions.
        assert large.warp_insts > 8 * small.warp_insts


class TestHousekeepingKernels:
    def test_integrate_is_bandwidth_bound(self):
        kernel = forces.integrate_kernel("nve", 200_000)
        metrics = SIM.run_kernel(kernel)
        roof = metrics.instruction_intensity * RTX_3080.peak_gtxn_per_s
        assert metrics.gips > 0.6 * roof

    def test_constraint_kernel_has_sync_pressure(self):
        kernel = forces.constraint_kernel("lincs", 50_000)
        assert kernel.mix.sync >= 0.05

    def test_neighbor_build_tests_more_candidates_than_pairs(self):
        kernel = forces.neighbor_build_kernel("build", 10_000, 100_000,
                                              candidate_ratio=3.0)
        per_candidate = 14.0 / 32.0
        assert kernel.warp_insts == pytest.approx(
            300_000 * per_candidate
        )

    def test_halo_kernel_floor_at_one_atom(self):
        kernel = forces.halo_exchange_kernel("comm", 0)
        assert kernel.warp_insts >= 1.0
