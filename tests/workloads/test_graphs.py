"""Tests for the graph-analytics workload substrate."""

import numpy as np
import pytest

from repro.profiler import Profiler
from repro.workloads.graphs import (
    CSRGraph,
    RoadBFS,
    SocialBFS,
    road_network,
    social_network,
)


class TestCSRGraph:
    def test_from_edges_roundtrip(self):
        src = np.array([0, 0, 1, 2, 2, 2])
        dst = np.array([1, 2, 2, 0, 1, 3])
        graph = CSRGraph.from_edges(4, src, dst)
        assert graph.num_vertices == 4
        assert graph.num_edges == 6
        assert sorted(graph.neighbors(0).tolist()) == [1, 2]
        assert sorted(graph.neighbors(2).tolist()) == [0, 1, 3]
        assert graph.neighbors(3).tolist() == []

    def test_out_degrees(self):
        graph = CSRGraph.from_edges(3, np.array([0, 0, 1]), np.array([1, 2, 0]))
        assert graph.out_degrees().tolist() == [2, 1, 0]

    def test_frontier_edges(self):
        graph = CSRGraph.from_edges(3, np.array([0, 0, 1]), np.array([1, 2, 0]))
        assert graph.frontier_edges(np.array([0, 1])) == 3

    def test_expand_keeps_duplicates(self):
        graph = CSRGraph.from_edges(
            3, np.array([0, 1, 1]), np.array([2, 2, 2])
        )
        out = graph.expand(np.array([0, 1]))
        assert sorted(out.tolist()) == [2, 2, 2]

    def test_expand_empty_frontier(self):
        graph = CSRGraph.from_edges(2, np.array([0]), np.array([1]))
        assert graph.expand(np.array([], dtype=np.int64)).size == 0

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1]), np.array([0]))

    def test_validation_rejects_out_of_range_indices(self):
        with pytest.raises(ValueError, match="out-of-range"):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestGenerators:
    def test_social_has_power_law_skew(self):
        graph = social_network(20_000, seed=1)
        degrees = graph.out_degrees()
        assert degrees.max() > 40 * degrees.mean()

    def test_social_average_degree(self):
        graph = social_network(20_000, avg_degree=12.6, seed=1)
        assert graph.avg_degree == pytest.approx(12.6, rel=0.1)

    def test_road_is_low_degree_uniform(self):
        graph = road_network(20_000, seed=1)
        degrees = graph.out_degrees()
        assert degrees.max() <= 4
        assert 2.0 < graph.avg_degree < 2.8

    def test_generators_deterministic(self):
        a = social_network(5_000, seed=3)
        b = social_network(5_000, seed=3)
        assert np.array_equal(a.indices, b.indices)

    def test_social_validation(self):
        with pytest.raises(ValueError):
            social_network(1)
        with pytest.raises(ValueError):
            social_network(100, avg_degree=0)
        with pytest.raises(ValueError):
            social_network(100, power_law_exponent=1.0)

    def test_road_validation(self):
        with pytest.raises(ValueError):
            road_network(2)
        with pytest.raises(ValueError):
            road_network(100, edge_keep_probability=0.0)


class TestBFSCorrectness:
    def test_road_bfs_reaches_whole_graph(self):
        workload = RoadBFS(scale=0.0001, seed=2)
        levels = workload.reference_levels()
        assert np.all(levels >= 0)  # the backbone keeps it connected

    def test_social_bfs_levels_shallow(self):
        workload = SocialBFS(scale=0.001, seed=2)
        levels = workload.reference_levels()
        reached = levels[levels >= 0]
        assert reached.max() <= 12  # small-world diameter

    def test_road_bfs_levels_deep(self):
        workload = RoadBFS(scale=0.0001, seed=2)
        levels = workload.reference_levels()
        # Lattice diameter ~ 2*sqrt(n); far deeper than the social graph.
        assert levels.max() > 50

    def test_launch_stream_levels_match_reference(self):
        """The instrumented BFS and the plain reference agree."""
        workload = RoadBFS(scale=0.0001, seed=2)
        levels = workload.reference_levels()
        stream = workload.launch_stream()
        bfs_levels = {
            int(launch.phase[5:])
            for launch in stream
            if launch.phase.startswith("level")
        }
        # The instrumented loop runs one final advance over the deepest
        # frontier to discover termination, hence the +1.
        assert max(bfs_levels) == levels.max() + 1


@pytest.fixture(scope="module")
def graph_profiles():
    profiler = Profiler()
    return {
        "GST": profiler.profile(SocialBFS(scale=0.002, seed=0)),
        "GRU": profiler.profile(RoadBFS(scale=0.005, seed=0)),
    }


class TestKernelStructure:
    def test_gst_runs_twelve_kernels(self, graph_profiles):
        assert graph_profiles["GST"].num_kernels == 12

    def test_gru_runs_eight_kernels(self, graph_profiles):
        assert graph_profiles["GRU"].num_kernels == 8

    def test_input_dependent_kernels(self, graph_profiles):
        """Observation #3: pull/uniquify only trigger on the social graph."""
        gst = {k.name for k in graph_profiles["GST"].kernels}
        gru = {k.name for k in graph_profiles["GRU"].kernels}
        assert "advance_kernel_pull" in gst
        assert "advance_kernel_pull" not in gru
        assert "uniquify_filter" in gst
        assert "uniquify_filter" not in gru

    def test_social_dominated_by_pull_advance(self, graph_profiles):
        assert graph_profiles["GST"].dominant_kernel.name == "advance_kernel_pull"

    def test_road_has_thousands_of_launches(self, graph_profiles):
        assert graph_profiles["GRU"].total_invocations > 2_000

    def test_social_has_few_fat_launches(self, graph_profiles):
        gst = graph_profiles["GST"]
        gru = graph_profiles["GRU"]
        assert gst.total_invocations < gru.total_invocations / 10
        # Table I: GST's weighted insts/kernel dwarf GRU's.
        assert (
            gst.weighted_avg_insts_per_kernel
            > 50 * gru.weighted_avg_insts_per_kernel
        )

    def test_both_graph_workloads_memory_intensive(self, graph_profiles):
        from repro.gpu import RTX_3080

        for profile in graph_profiles.values():
            assert profile.instruction_intensity < RTX_3080.roofline_elbow

    def test_graph_performance_is_low(self, graph_profiles):
        """Fig. 5: graph workloads achieve the lowest GIPS."""
        for profile in graph_profiles.values():
            assert profile.gips < 30.0
