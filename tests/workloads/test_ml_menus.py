"""Kernel-menu regression fingerprints for the five ML models.

The exact kernel menus are the reproduction's Table-I anchor; these
tests freeze the *structural* parts of each menu (family membership
and signature kernels) so a refactor of the lowering layer cannot
silently change what the models launch.
"""

import pytest

from repro.profiler import Profiler
from repro.workloads.ml import (
    DCGANTraining,
    LanguageTranslationTraining,
    NeuralStyleTraining,
    ReinforcementLearningTraining,
    SpatialTransformerTraining,
)


@pytest.fixture(scope="module")
def menus():
    profiler = Profiler()
    workloads = {
        "DCG": DCGANTraining(scale=1.0, iterations=6),
        "NST": NeuralStyleTraining(scale=1.0, iterations=6),
        "RFL": ReinforcementLearningTraining(scale=1.0, iterations=6),
        "SPT": SpatialTransformerTraining(scale=1.0, iterations=6),
        "LGT": LanguageTranslationTraining(scale=1.0, iterations=4),
    }
    return {
        abbr: {k.name for k in profiler.profile(w).kernels}
        for abbr, w in workloads.items()
    }


def _family(menu, prefix):
    return {name for name in menu if name.startswith(prefix)}


class TestSignatureKernels:
    def test_dcg_signature(self, menus):
        menu = menus["DCG"]
        assert _family(menu, "dgrad2d_alg1")  # ConvTranspose forward
        assert _family(menu, "implicit_convolve_sgemm")
        assert _family(menu, "wgrad_alg0_engine")
        assert _family(menu, "bn_fw_tr_1C11")
        assert "bce_loss_forward" in menu
        assert "vectorized_elementwise_tanh" in menu  # generator output
        assert "vectorized_elementwise_addcdiv" in menu  # unfused Adam

    def test_nst_signature(self, menus):
        menu = menus["NST"]
        assert _family(menu, "ampere_scudnn_winograd")  # 3x3 VGG convs
        assert _family(menu, "winograd_input_transform")
        assert _family(menu, "gram_sgemm")  # style losses
        assert "mse_loss_forward" in menu
        assert "vectorized_elementwise_lbfgs_direction" in menu

    def test_rfl_signature(self, menus):
        menu = menus["RFL"]
        assert _family(menu, "explicit_convolve_sgemm")  # batch-1 acting
        assert "cat_array_batched_replay_gather" in menu
        assert "reduce_argmax" in menu
        assert "cat_array_batched_param_sync" in menu  # target net
        assert "vectorized_elementwise_td_target" in menu

    def test_spt_signature(self, menus):
        menu = menus["SPT"]
        assert "grid_sampler_2d_kernel" in menu
        assert "grid_sampler_2d_backward" in menu
        assert "vectorized_elementwise_affine_grid_generator" in menu
        assert "fused_dropout_kernel" in menu
        assert "vectorized_elementwise_axpy" in menu  # SGD, not Adam

    def test_lgt_signature(self, menus):
        menu = menus["LGT"]
        assert "indexSelectLargeIndex" in menu  # embeddings
        assert "embedding_backward_feature_kernel" in menu
        assert _family(menu, "gemv2T_kernel")  # attention v-dot
        assert _family(menu, "vectorized_elementwise_gru_")  # unfused GRU
        assert "log_softmax_warp_forward" in menu
        assert "vectorized_elementwise_clip_grad_scale" in menu


class TestMenuDisjointness:
    def test_models_have_distinct_identities(self, menus):
        """Each model's menu contains kernels no other model launches."""
        for abbr, menu in menus.items():
            others = set().union(
                *(m for other, m in menus.items() if other != abbr)
            )
            assert menu - others, f"{abbr} has no unique kernels"

    def test_shared_framework_kernels_exist(self, menus):
        """The Adam models share the unfused optimizer kernels."""
        adam_models = [menus[a] for a in ("DCG", "RFL", "LGT")]
        shared = set.intersection(*adam_models)
        assert "vectorized_elementwise_addcmul" in shared

    def test_optimizer_split_matches_models(self, menus):
        # SGD-trained SPT must not launch Adam kernels.
        assert "vectorized_elementwise_addcdiv" not in menus["SPT"]
        assert "vectorized_elementwise_axpy" not in menus["DCG"]
