"""Differential tests for the vectorized graph hot paths.

The BFS driver, graph generators and CSR builder were rewritten for
speed under a strict contract: the launch streams — and therefore every
``launch_stream_digest``, cache key and downstream figure — must be
**bit-for-bit identical** to the original implementations.  These tests
enforce the contract three ways:

1. component differentials against faithful reimplementations of the
   original (argsort ``from_edges``, double-``repeat`` ``expand``,
   ``rng.choice`` endpoint draws) on adversarial random inputs;
2. an end-to-end differential: a legacy BFS driver built from the legacy
   components, compared by stream digest against the production path
   over ``(scale, seed, source)``;
3. pinned digests: every Cactus workload's stream digest at the laptop
   preset against the checked-in fixture captured from the
   pre-vectorization code.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.digest import launch_stream_digest
from repro.gpu.kernel import LaunchStream
from repro.profiler.profiler import Profiler
from repro.workloads.graphs import frontier as ops
from repro.workloads.graphs.bfs import (
    TRACTABLE_VERTICES,
    GunrockBFS,
    RoadBFS,
    SocialBFS,
)
from repro.workloads.graphs.csr import CSRGraph
from repro.workloads.graphs.generator import road_network, social_network
from repro.workloads.graphs.sampling import AliasTable, CdfSampler
from repro.workloads.registry import get_workload

DIGEST_FIXTURE = (
    Path(__file__).parent.parent / "golden" / "fixtures" / "stream_digests.json"
)


# ---------------------------------------------------------------------------
# Legacy reference implementations (the pre-vectorization code, verbatim
# modulo variable names).  These define what "unchanged behaviour" means.
# ---------------------------------------------------------------------------

def legacy_from_edges(num_vertices, src, dst):
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    order = np.argsort(src, kind="stable")
    dst_sorted = dst[order]
    counts = np.bincount(src[order], minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst_sorted


def legacy_expand(graph, frontier):
    starts = graph.indptr[frontier]
    ends = graph.indptr[frontier + 1]
    lengths = ends - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(starts, lengths)
    within = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(lengths) - lengths, lengths
    )
    return graph.indices[offsets + within]


def legacy_social_network(num_vertices, avg_degree=12.6,
                          power_law_exponent=2.1, seed=0):
    rng = np.random.default_rng(seed)
    num_edges = int(num_vertices * avg_degree)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (power_law_exponent - 1.0))
    weights = np.minimum(weights, weights.sum() * 0.02 / avg_degree)
    probabilities = weights / weights.sum()
    src = rng.choice(num_vertices, size=num_edges, p=probabilities)
    dst = rng.choice(num_vertices, size=num_edges, p=probabilities)
    keep = src != dst
    indptr, indices = legacy_from_edges(num_vertices, src[keep], dst[keep])
    return CSRGraph(indptr, indices)


def legacy_launch_stream(workload, graph):
    """The original per-level scan BFS driver, on a prebuilt graph."""
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    source = int(workload.source) % n
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)

    stream = LaunchStream()
    stream.launch(ops.init_distances_kernel(n), phase="init")

    total_edges = max(1, graph.num_edges)
    explored_edges = 0
    level = 0
    while frontier.size > 0:
        level += 1
        edges = graph.frontier_edges(frontier)
        unvisited = int(n - visited.sum())
        unexplored_edges = max(1, total_edges - explored_edges)
        explored_edges += edges
        use_pull = (
            workload.direction_optimizing
            and edges > unexplored_edges / workload.beamer_alpha
            and frontier.size > n / workload.beamer_beta
        )
        degrees = graph.indptr[frontier + 1] - graph.indptr[frontier]
        avg_deg = max(1.0, float(degrees.mean()))
        sqrt_n = float(np.sqrt(n))
        use_lb = frontier.size > 32 and (
            float(degrees.max()) > workload.lb_skew * avg_deg
            or frontier.size > workload.lb_size_sqrt * sqrt_n
        )

        unvisited_vertices = np.flatnonzero(~visited)

        raw_neighbors = legacy_expand(graph, frontier)
        raw_out = raw_neighbors.size
        candidates = np.unique(raw_neighbors)
        new_mask = ~visited[candidates]
        next_frontier = candidates[new_mask]
        visited[next_frontier] = True

        phase = f"level{level}"
        if use_pull:
            scanned = int(graph.frontier_edges(unvisited_vertices) * 0.6)
            stream.launch(ops.bitmap_convert_kernel(n), phase=phase)
            stream.launch(
                ops.advance_pull_kernel(unvisited, scanned), phase=phase
            )
        else:
            if use_lb:
                stream.launch(
                    ops.output_offsets_kernel(frontier.size), phase=phase
                )
                stream.launch(
                    ops.advance_lb_kernel(frontier.size, edges), phase=phase
                )
            else:
                stream.launch(
                    ops.advance_twc_kernel(frontier.size, edges), phase=phase
                )
            stream.launch(ops.filter_cull_kernel(raw_out), phase=phase)
            duplication = raw_out / max(1, next_frontier.size)
            if (
                duplication > workload.uniquify_duplication
                and raw_out > 0.001 * total_edges
            ):
                stream.launch(ops.uniquify_kernel(raw_out), phase=phase)
            if raw_out > workload.compact_sqrt * sqrt_n:
                stream.launch(ops.compact_scan_kernel(raw_out), phase=phase)
                stream.launch(ops.compact_scatter_kernel(raw_out), phase=phase)

        if next_frontier.size > workload.bitmask_threshold * n:
            stream.launch(
                ops.bitmask_update_kernel(next_frontier.size), phase=phase
            )
        stream.launch(
            ops.length_reduce_kernel(max(1, next_frontier.size)), phase=phase
        )
        frontier = next_frontier
    return stream


# ---------------------------------------------------------------------------
# Component differentials
# ---------------------------------------------------------------------------

@given(
    n=st.integers(2, 5000),
    seed=st.integers(0, 2**32 - 1),
    size=st.integers(1, 20000),
)
@settings(max_examples=25, deadline=None)
def test_cdf_sampler_replays_rng_choice_exactly(n, seed, size):
    """CdfSampler consumes the same uniforms and returns the same draws."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = np.minimum(ranks**-0.9, ranks.sum() * 0.002)
    p = weights / weights.sum()
    expected = np.random.default_rng(seed).choice(n, size=size, p=p)
    actual = CdfSampler(p).sample(np.random.default_rng(seed), size)
    np.testing.assert_array_equal(actual, expected)


@given(weights=st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=200),
       seed=st.integers(0, 2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_cdf_sampler_replays_arbitrary_weights(weights, seed):
    p = np.asarray(weights) / np.sum(weights)
    n = p.size
    expected = np.random.default_rng(seed).choice(n, size=500, p=p)
    actual = CdfSampler(p).sample(np.random.default_rng(seed), 500)
    np.testing.assert_array_equal(actual, expected)


@given(
    num_vertices=st.integers(1, 300),
    num_edges=st.integers(0, 2000),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_from_edges_matches_legacy_argsort_build(num_vertices, num_edges, seed):
    """Counting-sort CSR build: same indptr, same (stable) indices order,
    duplicates preserved."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    graph = CSRGraph.from_edges(num_vertices, src, dst)
    indptr, indices = legacy_from_edges(num_vertices, src, dst)
    np.testing.assert_array_equal(graph.indptr, indptr)
    np.testing.assert_array_equal(graph.indices, indices)


def test_from_edges_rejects_out_of_range_endpoints():
    with pytest.raises(ValueError):
        CSRGraph.from_edges(3, np.array([0, 3]), np.array([1, 2]))
    with pytest.raises(ValueError):
        CSRGraph.from_edges(3, np.array([0, 1]), np.array([1, -1]))


@given(
    num_vertices=st.integers(1, 200),
    num_edges=st.integers(0, 1500),
    frontier_size=st.integers(1, 60),
    seed=st.integers(0, 2**32 - 1),
)
@settings(max_examples=50, deadline=None)
def test_expand_matches_legacy_repeat_gather(
    num_vertices, num_edges, frontier_size, seed
):
    """The cumsum-trick expand returns the identical neighbour sequence —
    including through zero-degree frontier vertices."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    graph = CSRGraph.from_edges(num_vertices, src, dst)
    frontier = np.unique(
        rng.integers(0, num_vertices, size=min(frontier_size, num_vertices))
    )
    np.testing.assert_array_equal(
        graph.expand(frontier), legacy_expand(graph, frontier)
    )


def test_expand_zero_degree_frontier_vertices():
    # Vertex 1 has no out-edges; the slice-jump scatter must not collide.
    graph = CSRGraph.from_edges(
        4, np.array([0, 0, 2, 3, 3]), np.array([1, 2, 3, 0, 1])
    )
    frontier = np.array([0, 1, 2, 3], dtype=np.int64)
    np.testing.assert_array_equal(
        graph.expand(frontier), legacy_expand(graph, frontier)
    )
    np.testing.assert_array_equal(
        graph.expand(np.array([1])), np.empty(0, dtype=np.int64)
    )


@given(n=st.integers(2000, 60000), seed=st.integers(0, 1000))
@settings(max_examples=8, deadline=None)
def test_social_network_matches_legacy_generator(n, seed):
    """Generator + CSR build end to end: identical graph arrays."""
    new = social_network(n, seed=seed)
    old = legacy_social_network(n, seed=seed)
    np.testing.assert_array_equal(new.indptr, old.indptr)
    np.testing.assert_array_equal(new.indices, old.indices)


# ---------------------------------------------------------------------------
# End-to-end stream differentials over (scale, seed, source)
# ---------------------------------------------------------------------------

@given(
    workload_cls=st.sampled_from([SocialBFS, RoadBFS]),
    scale=st.sampled_from([0.0005, 0.001, 0.002]),
    seed=st.integers(0, 100),
    source=st.integers(0, 10**6),
)
@settings(max_examples=10, deadline=None)
def test_bfs_stream_digest_matches_legacy_driver(
    workload_cls, scale, seed, source
):
    """Scan-free BFS emits a bit-identical launch stream to the original
    per-level-scan driver running on the legacy-built graph."""
    workload = workload_cls(scale=scale, seed=seed, source=source)
    if workload_cls is SocialBFS:
        graph = legacy_social_network(workload._num_vertices(), seed=seed)
    else:
        # The road generator only changed its CSR build; rebuilding via
        # the production path plus legacy_from_edges would duplicate the
        # generator, and test_from_edges_* already proves that build is
        # identical — so reuse the production graph here.
        graph = workload._build_graph()
    legacy = legacy_launch_stream(workload, graph)
    current = workload.launch_stream()
    assert len(current) == len(legacy)
    assert launch_stream_digest(current) == launch_stream_digest(legacy)


def test_all_cactus_stream_digests_match_pinned_fixture():
    """Every Cactus workload, laptop preset: digest unchanged vs the
    fixture captured from the pre-vectorization implementation."""
    from repro.core.config import LAPTOP_SCALE

    pinned = json.loads(DIGEST_FIXTURE.read_text())["presets"]["laptop"]
    profiler = Profiler()
    for abbr, reference in sorted(pinned.items()):
        workload = get_workload(
            abbr, scale=LAPTOP_SCALE.for_workload(abbr), seed=0
        )
        stream = profiler.prepare_stream(workload)
        assert len(stream) == reference["launches"], abbr
        assert launch_stream_digest(stream) == reference["digest"], abbr


# ---------------------------------------------------------------------------
# Alias sampler (public API; distribution-equivalent, not stream-compatible)
# ---------------------------------------------------------------------------

def test_alias_table_matches_distribution():
    rng = np.random.default_rng(3)
    p = rng.random(50)
    p /= p.sum()
    draws = AliasTable(p).sample(np.random.default_rng(7), 200_000)
    empirical = np.bincount(draws, minlength=50) / draws.size
    # Total-variation distance shrinks as 1/sqrt(samples); 0.01 is ~10x
    # the expected statistical noise here.
    assert 0.5 * np.abs(empirical - p).sum() < 0.01


def test_alias_table_is_seed_deterministic():
    p = np.arange(1, 20, dtype=np.float64)
    a = AliasTable(p).sample(np.random.default_rng(11), 1000)
    b = AliasTable(p).sample(np.random.default_rng(11), 1000)
    np.testing.assert_array_equal(a, b)


def test_samplers_reject_bad_probabilities():
    for cls in (CdfSampler, AliasTable):
        with pytest.raises(ValueError):
            cls(np.array([]))
        with pytest.raises(ValueError):
            cls(np.array([0.5, -0.1]))
        with pytest.raises(ValueError):
            cls(np.array([0.0, 0.0]))


def test_social_network_alias_sampler_option():
    alias_graph = social_network(5000, seed=1, endpoint_sampler="alias")
    guide_graph = social_network(5000, seed=1)
    assert alias_graph.num_vertices == guide_graph.num_vertices
    # Same edge budget and broadly the same degree mass, but a different
    # uniform->vertex mapping: the graphs must differ.
    assert abs(alias_graph.num_edges - guide_graph.num_edges) < 0.02 * guide_graph.num_edges
    assert not (
        alias_graph.num_edges == guide_graph.num_edges
        and np.array_equal(alias_graph.indices, guide_graph.indices)
    )
    with pytest.raises(ValueError):
        social_network(100, endpoint_sampler="bogus")


# ---------------------------------------------------------------------------
# Satellites: registry TypeError, tractability warning
# ---------------------------------------------------------------------------

def test_get_workload_rejects_workload_instances():
    workload = get_workload("GST", scale=0.001)
    with pytest.raises(TypeError, match="abbreviation string"):
        get_workload(workload)
    with pytest.raises(TypeError, match="abbreviation string"):
        get_workload(42)


def test_graph_workload_warns_above_tractability_threshold():
    # The implicit scale=1.0 default builds the full 21M-vertex paper
    # graph; instantiation (not traversal) must warn.
    with pytest.warns(UserWarning, match="tractability threshold"):
        SocialBFS()
    with pytest.warns(UserWarning, match="tractability threshold"):
        RoadBFS(scale=1.0)


def test_graph_workload_silent_below_threshold():
    import warnings as _warnings

    for cls in (SocialBFS, RoadBFS):
        # PAPER_SCALE graph scale and the CLI's characterize default are
        # both routine surfaces; neither may warn.
        for scale in (0.05, 0.25):
            workload = cls(scale=scale)
            assert workload._num_vertices() <= TRACTABLE_VERTICES
            with _warnings.catch_warnings():
                _warnings.simplefilter("error")
                cls(scale=scale)


def test_tractability_threshold_above_paper_scale_graphs():
    from repro.core.config import PAPER_SCALE

    for cls in (SocialBFS, RoadBFS):
        abbr = cls(scale=0.001).abbr
        scaled = cls(scale=PAPER_SCALE.for_workload(abbr))
        assert scaled._num_vertices() <= TRACTABLE_VERTICES


def test_gunrock_bfs_base_hooks_are_abstract():
    with pytest.raises(NotImplementedError):
        GunrockBFS(scale=0.001)
