"""Tests for the future-work extension workloads (TRF, PGR, GCN)."""

import numpy as np
import pytest

from repro.gpu import RTX_3080
from repro.profiler import Profiler
from repro.workloads import get_workload, list_workloads
from repro.workloads.extensions import (
    GCNTraining,
    PageRankWorkload,
    TransformerTraining,
)

ELBOW = RTX_3080.roofline_elbow


class TestRegistration:
    def test_extension_suite_registered(self):
        assert set(list_workloads("CactusExt")) == {"TRF", "PGR", "GCN"}

    def test_factories_resolve(self):
        for abbr in ("TRF", "PGR", "GCN"):
            workload = get_workload(abbr, scale=0.002)
            assert workload.suite == "CactusExt"


class TestTransformer:
    @pytest.fixture(scope="class")
    def profile(self):
        return Profiler().profile(TransformerTraining(scale=1.0, iterations=4))

    def test_modern_ml_kernel_menu(self, profile):
        """Transformers launch a Cactus-ML-sized kernel menu."""
        assert profile.num_kernels >= 35

    def test_attention_kernels_present(self, profile):
        names = {k.name for k in profile.kernels}
        assert any(n.startswith("bmm_sgemm") for n in names)
        assert "layer_norm_forward" in names
        assert "layer_norm_backward" in names
        assert "vectorized_elementwise_gelu" in names

    def test_mixed_intensity(self, profile):
        sides = {
            k.instruction_intensity > ELBOW for k in profile.kernels
        }
        assert sides == {True, False}

    def test_spread_dominance(self, profile):
        assert profile.num_kernels_for_fraction(0.70) >= 6


class TestPageRank:
    def test_rank_vector_is_probability(self):
        workload = PageRankWorkload(scale=0.001, seed=1)
        ranks = workload.reference_ranks()
        assert ranks.sum() == pytest.approx(1.0)
        assert np.all(ranks > 0)

    def test_hubs_rank_highest(self):
        workload = PageRankWorkload(scale=0.001, seed=1)
        graph = workload._build_graph()
        ranks = workload.reference_ranks()
        # In-degree hubs collect rank mass: the top-ranked vertex is
        # among the most linked-to vertices.
        in_degree = np.bincount(graph.indices, minlength=graph.num_vertices)
        top_rank = int(np.argmax(ranks))
        assert in_degree[top_rank] > 10 * in_degree.mean()

    def test_three_kernel_iteration_structure(self):
        profile = Profiler().profile(PageRankWorkload(scale=0.001))
        assert profile.num_kernels == 3
        assert profile.dominant_kernel.name == "pagerank_spmv_advance"

    def test_memory_intensive(self):
        profile = Profiler().profile(PageRankWorkload(scale=0.001))
        assert profile.instruction_intensity < ELBOW

    def test_converges_before_iteration_cap(self):
        workload = PageRankWorkload(scale=0.001)
        stream = workload.launch_stream()
        iterations = len(
            {l.phase for l in stream if l.phase.startswith("iter")}
        )
        assert iterations < workload.max_iterations


class TestGCN:
    @pytest.fixture(scope="class")
    def profile(self):
        return Profiler().profile(GCNTraining(scale=0.002, epochs=4))

    def test_mixes_graph_and_ml_kernels(self, profile):
        names = {k.name for k in profile.kernels}
        assert "gcn_spmm_aggregate_forward" in names
        assert any(n.startswith("ampere_sgemm") for n in names)

    def test_spmm_dominates_on_sparse_graphs(self, profile):
        assert profile.dominant_kernel.name.startswith("gcn_spmm")

    def test_epochs_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            GCNTraining(epochs=0)
