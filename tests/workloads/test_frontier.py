"""Tests for the Gunrock-style frontier kernel builders."""

import pytest

from repro.gpu import GPUSimulator, RTX_3080
from repro.workloads.graphs import frontier as ops

SIM = GPUSimulator()
ELBOW = RTX_3080.roofline_elbow


class TestAdvanceKernels:
    def test_work_scales_with_frontier_edges(self):
        small = ops.advance_twc_kernel(100, 1_000)
        large = ops.advance_twc_kernel(100, 100_000)
        assert large.warp_insts > 50 * small.warp_insts

    def test_advance_is_memory_intensive(self):
        for builder in (ops.advance_twc_kernel, ops.advance_lb_kernel):
            metrics = SIM.run_kernel(builder(100_000, 1_500_000))
            assert metrics.instruction_intensity < ELBOW

    def test_pull_is_memory_intensive_and_heavy(self):
        metrics = SIM.run_kernel(ops.advance_pull_kernel(300_000, 2_000_000))
        assert metrics.instruction_intensity < ELBOW
        # Pull over millions of scanned edges takes real time (it is
        # the GST-dominating kernel).
        assert metrics.duration_s > 20e-6

    def test_lb_strategy_coalesces_better_than_twc(self):
        twc = ops.advance_twc_kernel(100_000, 1_000_000)
        lb = ops.advance_lb_kernel(100_000, 1_000_000)
        assert lb.memory.coalescence > twc.memory.coalescence

    def test_zero_sized_inputs_floored(self):
        kernel = ops.advance_twc_kernel(0, 0)
        assert kernel.warp_insts >= 1.0
        assert kernel.grid_blocks >= 1


class TestUtilityKernels:
    def test_init_writes_every_vertex(self):
        kernel = ops.init_distances_kernel(1_000_000)
        assert kernel.memory.bytes_written == pytest.approx(4e6)

    def test_compaction_pair_is_streaming(self):
        for builder in (ops.compact_scan_kernel, ops.compact_scatter_kernel):
            kernel = builder(1_000_000)
            assert kernel.memory.coalescence >= 0.7

    def test_bitmask_update_is_scattered(self):
        kernel = ops.bitmask_update_kernel(100_000)
        assert kernel.memory.coalescence <= 0.3

    def test_length_reduce_has_fixed_output(self):
        kernel = ops.length_reduce_kernel(500_000)
        assert kernel.memory.bytes_written == pytest.approx(64.0)

    def test_every_builder_is_simulatable(self):
        kernels = [
            ops.init_distances_kernel(10_000),
            ops.output_offsets_kernel(1_000),
            ops.advance_twc_kernel(1_000, 10_000),
            ops.advance_lb_kernel(1_000, 10_000),
            ops.advance_pull_kernel(5_000, 50_000),
            ops.filter_cull_kernel(10_000),
            ops.compact_scan_kernel(10_000),
            ops.compact_scatter_kernel(10_000),
            ops.bitmap_convert_kernel(10_000),
            ops.bitmask_update_kernel(1_000),
            ops.length_reduce_kernel(1_000),
            ops.uniquify_kernel(10_000),
        ]
        names = {k.name for k in kernels}
        assert len(names) == 12  # the full GST menu
        for kernel in kernels:
            metrics = SIM.run_kernel(kernel)
            assert metrics.duration_s > 0
